//! Eigenvalue estimation via the power method and Rayleigh quotients — the
//! paper's other motivating SpMV consumer ("the approximation of eigenvalues
//! of large sparse matrices", Section I). Like the linear solvers, every
//! iteration is one SpMV, so the amortization analysis applies unchanged.

use crate::blas::{dot, norm2, scale};
use sparseopt_core::kernels::SparseLinOp;

/// Result of an eigenvalue iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EigenOutcome {
    /// Estimated dominant eigenvalue (Rayleigh quotient at the last iterate).
    pub eigenvalue: f64,
    /// Iterations performed (= SpMV calls).
    pub iterations: usize,
    /// Final residual `‖A v − λ v‖ / |λ|`.
    pub residual: f64,
    /// True when the residual dropped below the tolerance.
    pub converged: bool,
}

/// Power iteration for the dominant eigenpair of a square operator.
/// `v` holds the start vector on entry (must be nonzero) and the estimated
/// eigenvector on exit.
///
/// # Panics
/// Panics if the operator is not square, `v` has the wrong length, or the
/// start vector is numerically zero.
pub fn power_method(
    a: &dyn SparseLinOp,
    v: &mut [f64],
    tol: f64,
    max_iters: usize,
) -> EigenOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "power method needs a square operator");
    assert_eq!(v.len(), nrows, "start vector length mismatch");
    let n = nrows;

    let nv = norm2(v);
    assert!(nv > 0.0, "start vector must be nonzero");
    scale(1.0 / nv, v);

    let mut av = vec![0.0f64; n];
    let mut lambda;
    for iter in 1..=max_iters {
        a.spmv(v, &mut av);
        lambda = dot(v, &av); // Rayleigh quotient (v is unit length)

        // Residual ‖A v − λ v‖.
        let mut res = 0.0f64;
        for i in 0..n {
            let r = av[i] - lambda * v[i];
            res += r * r;
        }
        let res = res.sqrt();

        // Normalize A v into the next iterate.
        let nav = norm2(&av);
        if nav == 0.0 {
            // v is in the null space: eigenvalue 0, exactly converged.
            return EigenOutcome {
                eigenvalue: 0.0,
                iterations: iter,
                residual: 0.0,
                converged: true,
            };
        }
        for i in 0..n {
            v[i] = av[i] / nav;
        }

        if res <= tol * lambda.abs().max(f64::MIN_POSITIVE) {
            return EigenOutcome {
                eigenvalue: lambda,
                iterations: iter,
                residual: res,
                converged: true,
            };
        }
    }
    // Final residual at the returned iterate.
    a.spmv(v, &mut av);
    lambda = dot(v, &av);
    let mut res = 0.0f64;
    for i in 0..n {
        let r = av[i] - lambda * v[i];
        res += r * r;
    }
    EigenOutcome {
        eigenvalue: lambda,
        iterations: max_iters,
        residual: res.sqrt(),
        converged: false,
    }
}

/// Crude 2-norm condition estimate for SPD operators: dominant eigenvalue of
/// `A` over the dominant eigenvalue of the Jacobi-preconditioned inverse
/// iteration surrogate `λ_max / λ_min`, with `λ_min` estimated by the power
/// method on `σI − A` (spectral shift). Useful for predicting CG iteration
/// counts in the amortization analysis.
pub fn spd_condition_estimate(
    a: &dyn SparseLinOp,
    tol: f64,
    max_iters: usize,
) -> Option<(f64, f64)> {
    let (n, m) = a.shape();
    if n != m || n == 0 {
        return None;
    }
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    let top = power_method(a, &mut v, tol, max_iters);
    if !top.converged || top.eigenvalue <= 0.0 {
        return None;
    }
    let sigma = top.eigenvalue * 1.0001;

    // Shifted operator σI − A without materializing it. Implementing the
    // full operator trait keeps it composable: (σI − A)ᵀ = σI − Aᵀ for the
    // square operators this estimate applies to.
    struct Shifted<'k> {
        inner: &'k dyn SparseLinOp,
        sigma: f64,
    }
    impl SparseLinOp for Shifted<'_> {
        fn name(&self) -> String {
            format!("shifted({})", self.inner.name())
        }
        fn shape(&self) -> (usize, usize) {
            self.inner.shape()
        }
        fn nnz(&self) -> usize {
            self.inner.nnz()
        }
        fn capabilities(&self) -> sparseopt_core::kernels::OpCapabilities {
            self.inner.capabilities()
        }
        fn apply(&self, op: sparseopt_core::kernels::Apply, x: &[f64], y: &mut [f64]) {
            self.inner.apply(op, x, y);
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = self.sigma * xi - *yi;
            }
        }
        fn apply_multi(
            &self,
            op: sparseopt_core::kernels::Apply,
            x: &sparseopt_core::MultiVec,
            y: &mut sparseopt_core::MultiVec,
        ) {
            self.inner.apply_multi(op, x, y);
            for (yi, xi) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
                *yi = self.sigma * xi - *yi;
            }
        }
        fn footprint_bytes(&self) -> usize {
            self.inner.footprint_bytes()
        }
    }

    let shifted = Shifted { inner: a, sigma };
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 - (i % 5) as f64 * 0.2).collect();
    let bottom = power_method(&shifted, &mut w, tol, max_iters);
    if !bottom.converged {
        return None;
    }
    let lambda_min = sigma - bottom.eigenvalue;
    if lambda_min <= 0.0 {
        return None;
    }
    Some((top.eigenvalue, lambda_min))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::coo::CooMatrix;
    use sparseopt_core::csr::CsrMatrix;
    use sparseopt_core::kernels::SerialCsr;
    use std::sync::Arc;

    fn diag(values: &[f64]) -> SerialCsr {
        let n = values.len();
        let mut coo = CooMatrix::new(n, n);
        for (i, &v) in values.iter().enumerate() {
            coo.push(i, i, v);
        }
        SerialCsr::new(Arc::new(CsrMatrix::from_coo(&coo)))
    }

    #[test]
    fn finds_dominant_eigenvalue_of_diagonal() {
        let a = diag(&[1.0, 5.0, 3.0, -2.0]);
        let mut v = vec![1.0; 4];
        let out = power_method(&a, &mut v, 1e-10, 2000);
        assert!(out.converged, "{out:?}");
        assert!(
            (out.eigenvalue - 5.0).abs() < 1e-6,
            "λ = {}",
            out.eigenvalue
        );
        // Eigenvector concentrates on index 1.
        assert!(v[1].abs() > 0.999);
    }

    #[test]
    fn tridiagonal_toeplitz_matches_analytic() {
        // A = tridiag(-1, 2, -1): λ_max = 2 + 2 cos(π/(n+1)).
        let n = 50;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a = SerialCsr::new(Arc::new(CsrMatrix::from_coo(&coo)));
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let out = power_method(&a, &mut v, 1e-9, 20_000);
        let analytic = 2.0 + 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!(out.converged);
        assert!(
            (out.eigenvalue - analytic).abs() < 1e-4,
            "λ = {} vs analytic {analytic}",
            out.eigenvalue
        );
    }

    #[test]
    fn condition_estimate_of_diagonal() {
        let a = diag(&[10.0, 2.0, 7.0, 4.0]);
        let (hi, lo) = spd_condition_estimate(&a, 1e-10, 5000).expect("SPD estimate");
        assert!((hi - 10.0).abs() < 1e-4, "λ_max {hi}");
        assert!((lo - 2.0).abs() < 1e-3, "λ_min {lo}");
    }

    #[test]
    fn symmetric_storage_operator_finds_the_same_eigenpair() {
        // The power method over SymCsr: eigensolvers consume symmetric
        // matrices by definition, so the SSS operator is their natural
        // kernel. Same dominant eigenvalue as the full-CSR operator.
        use sparseopt_core::pool::ExecCtx;
        use sparseopt_core::sss::SssCsr;
        use sparseopt_core::SymCsr;
        use sparseopt_matrix::generators as g;

        let csr = Arc::new(CsrMatrix::from_coo(&g::symmetric_power_law(600, 3, 5)));
        let sss = Arc::new(SssCsr::try_from_csr(&csr).expect("generator is symmetric"));
        let sym = SymCsr::baseline(sss, ExecCtx::new(2));

        let mut v: Vec<f64> = (0..600).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect();
        let out_sym = power_method(&sym, &mut v, 1e-9, 20_000);
        assert!(out_sym.converged, "{out_sym:?}");

        let full = SerialCsr::new(csr);
        let mut w: Vec<f64> = (0..600).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect();
        let out_full = power_method(&full, &mut w, 1e-9, 20_000);
        assert!(out_full.converged);
        assert!(
            (out_sym.eigenvalue - out_full.eigenvalue).abs()
                < 1e-6 * out_full.eigenvalue.abs().max(1.0),
            "λ_sym {} vs λ_csr {}",
            out_sym.eigenvalue,
            out_full.eigenvalue
        );
    }

    #[test]
    fn nonconvergence_is_reported() {
        // Two equal dominant eigenvalues of opposite sign never converge.
        let a = diag(&[3.0, -3.0, 1.0]);
        let mut v = vec![1.0, 1.0, 1.0];
        let out = power_method(&a, &mut v, 1e-12, 50);
        assert!(!out.converged);
        assert_eq!(out.iterations, 50);
    }
}
