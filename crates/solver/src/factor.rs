//! Incomplete factorizations: IC(0) and ILU(0) on the zero-fill (level-0)
//! pattern, exposed as [`Preconditioner`]s backed by the level-scheduled
//! triangular-solve kernels from `sparseopt-core`.
//!
//! Zero-fill means the factors live on the sparsity pattern of `A` itself —
//! no new nonzeros are admitted, so the factorization costs one pass over
//! the matrix and the factors stream exactly like `A` does. On matrices
//! whose exact factors happen to have no fill (e.g. tridiagonal/banded SPD
//! systems), IC(0) *is* the exact Cholesky factor — a property the test
//! suite pins. Each preconditioner application is two sparse triangular
//! solves, which is where the dependency-bound SpTRSV kernel shape
//! (level count × width, modeled in `sparseopt-sim`) enters the
//! preconditioned-solver scenario the paper motivates in §IV-D.

use crate::precond::{PrecondError, Preconditioner};
use sparseopt_core::coo::CooMatrix;
use sparseopt_core::csr::CsrMatrix;
use sparseopt_core::kernels::{TrsvAlgo, TrsvDirection, TrsvError, TrsvKernel};
use sparseopt_core::multivec::MultiVec;
use sparseopt_core::pool::ExecCtx;
use sparseopt_core::sss::is_symmetric;
use std::sync::Arc;

fn map_trsv(e: TrsvError) -> PrecondError {
    match e {
        TrsvError::ZeroDiagonal { row } => PrecondError::ZeroDiagonal { row },
        // The factorizations hand the solver well-formed triangles; a shape
        // failure here means the factor itself is malformed, which zero
        // diagonals are the only reachable cause of.
        TrsvError::NotSquare | TrsvError::NotTriangular { .. } => {
            PrecondError::ZeroDiagonal { row: 0 }
        }
    }
}

fn transpose(m: &CsrMatrix) -> CsrMatrix {
    let mut coo = CooMatrix::new(m.ncols(), m.nrows());
    for (i, c, v) in m.iter() {
        coo.push(c, i, v);
    }
    CsrMatrix::from_coo(&coo)
}

/// Incomplete Cholesky factorization IC(0): computes a lower-triangular `L`
/// on the pattern of `lower(A)` with `L Lᵀ ≈ A`, dropping all fill.
///
/// Row `i` is computed left-to-right:
/// `l_ij = (a_ij − Σ_{k<j} l_ik l_jk) / l_jj` over stored positions only,
/// then `l_ii = √(a_ii − Σ_{k<i} l_ik²)`. The inner sums are two-pointer
/// sparse dot products over already-finished row prefixes.
///
/// # Errors
/// - [`PrecondError::NotSymmetric`] unless `A` is numerically symmetric.
/// - [`PrecondError::ZeroDiagonal`] when a row has no stored diagonal.
/// - [`PrecondError::NotPositiveDefinite`] when a pivot `a_ii − Σ l_ik²`
///   comes out non-positive (the matrix is not SPD, or the dropped fill made
///   the incomplete process break down).
pub fn ic0(a: &CsrMatrix) -> Result<CsrMatrix, PrecondError> {
    if !is_symmetric(a) {
        return Err(PrecondError::NotSymmetric);
    }
    let lower = a.lower_triangle(true);
    let n = lower.nrows();
    let rowptr = lower.rowptr().to_vec();
    let colind = lower.colind().to_vec();
    let mut vals = lower.values().to_vec();

    // Each row must close with its structural diagonal (columns ascending).
    for i in 0..n {
        if rowptr[i + 1] == rowptr[i] || colind[rowptr[i + 1] - 1] as usize != i {
            return Err(PrecondError::ZeroDiagonal { row: i });
        }
    }

    for i in 0..n {
        let ri0 = rowptr[i];
        let ri1 = rowptr[i + 1];
        for idx in ri0..ri1 {
            let j = colind[idx] as usize;
            // Two-pointer dot of row i's and row j's prefixes (columns < j).
            let mut s = 0.0;
            let mut p = ri0;
            let mut q = rowptr[j];
            let qend = rowptr[j + 1] - 1; // excludes l_jj
            while p < idx && q < qend {
                match colind[p].cmp(&colind[q]) {
                    std::cmp::Ordering::Equal => {
                        s += vals[p] * vals[q];
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
            if j < i {
                let ljj = vals[rowptr[j + 1] - 1];
                vals[idx] = (vals[idx] - s) / ljj;
            } else {
                // j == i: the dot above was Σ l_ik² (row i against itself).
                let pivot = vals[idx] - s;
                if pivot <= 0.0 {
                    return Err(PrecondError::NotPositiveDefinite { row: i });
                }
                vals[idx] = pivot.sqrt();
            }
        }
    }
    Ok(CsrMatrix::from_raw(n, n, rowptr, colind, vals))
}

/// Incomplete LU factorization ILU(0), IKJ variant on a value copy of `A`:
/// `L U ≈ A` on `A`'s own pattern, `L` unit-lower (unit diagonal implied,
/// strict lower part returned), `U` upper including the diagonal.
///
/// # Errors
/// [`PrecondError::ZeroDiagonal`] when a row has no stored diagonal or a
/// pivot `u_kk` is exactly zero.
///
/// # Panics
/// Panics if `A` is not square.
pub fn ilu0(a: &CsrMatrix) -> Result<(CsrMatrix, CsrMatrix), PrecondError> {
    assert_eq!(a.nrows(), a.ncols(), "ILU(0) needs a square matrix");
    let n = a.nrows();
    let rowptr = a.rowptr();
    let colind = a.colind();
    let mut vals = a.values().to_vec();

    let mut diag_pos = vec![usize::MAX; n];
    for i in 0..n {
        let range = rowptr[i]..rowptr[i + 1];
        for (p, &c) in range.clone().zip(&colind[range]) {
            if c as usize == i {
                diag_pos[i] = p;
            }
        }
        if diag_pos[i] == usize::MAX {
            return Err(PrecondError::ZeroDiagonal { row: i });
        }
    }

    for i in 0..n {
        let ri1 = rowptr[i + 1];
        for kk in rowptr[i]..ri1 {
            let k = colind[kk] as usize;
            if k >= i {
                break;
            }
            let ukk = vals[diag_pos[k]];
            if ukk == 0.0 {
                return Err(PrecondError::ZeroDiagonal { row: k });
            }
            let lik = vals[kk] / ukk;
            vals[kk] = lik;
            // Eliminate: row_i[j] -= l_ik · row_k[j] for shared columns j > k.
            let mut p = kk + 1;
            let mut q = diag_pos[k] + 1;
            let rk1 = rowptr[k + 1];
            while p < ri1 && q < rk1 {
                match colind[p].cmp(&colind[q]) {
                    std::cmp::Ordering::Equal => {
                        vals[p] -= lik * vals[q];
                        p += 1;
                        q += 1;
                    }
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                }
            }
        }
    }

    // Split the in-place factor into strict-lower L and upper-with-diag U.
    let mut l_rowptr = vec![0usize; n + 1];
    let mut u_rowptr = vec![0usize; n + 1];
    for i in 0..n {
        for &c in &colind[rowptr[i]..rowptr[i + 1]] {
            if (c as usize) < i {
                l_rowptr[i + 1] += 1;
            } else {
                u_rowptr[i + 1] += 1;
            }
        }
    }
    for i in 0..n {
        l_rowptr[i + 1] += l_rowptr[i];
        u_rowptr[i + 1] += u_rowptr[i];
    }
    let mut l_cols = Vec::with_capacity(l_rowptr[n]);
    let mut l_vals = Vec::with_capacity(l_rowptr[n]);
    let mut u_cols = Vec::with_capacity(u_rowptr[n]);
    let mut u_vals = Vec::with_capacity(u_rowptr[n]);
    for i in 0..n {
        for p in rowptr[i]..rowptr[i + 1] {
            if (colind[p] as usize) < i {
                l_cols.push(colind[p]);
                l_vals.push(vals[p]);
            } else {
                u_cols.push(colind[p]);
                u_vals.push(vals[p]);
            }
        }
    }
    Ok((
        CsrMatrix::from_raw(n, n, l_rowptr, l_cols, l_vals),
        CsrMatrix::from_raw(n, n, u_rowptr, u_cols, u_vals),
    ))
}

/// IC(0) preconditioner `M = L Lᵀ`: each application is a forward solve
/// with `L` and a backward solve with `Lᵀ`, both through [`TrsvKernel`]
/// (level-scheduled when the context and DAG shape warrant, serial
/// otherwise).
pub struct Ic0Precond {
    forward: TrsvKernel,
    backward: TrsvKernel,
}

impl Ic0Precond {
    /// Factorizes and builds serial solvers — the right default for the
    /// narrow-level triangles typical of banded/stencil SPD systems.
    ///
    /// # Errors
    /// Propagates [`ic0`] failures.
    pub fn new(a: &CsrMatrix) -> Result<Self, PrecondError> {
        Self::with_ctx(a, ExecCtx::new(1))
    }

    /// Factorizes and lets each triangular solve pick serial vs
    /// level-scheduled per its DAG shape on `ctx` ([`TrsvAlgo::Auto`]).
    ///
    /// # Errors
    /// Propagates [`ic0`] failures.
    pub fn with_ctx(a: &CsrMatrix, ctx: Arc<ExecCtx>) -> Result<Self, PrecondError> {
        let l = Arc::new(ic0(a)?);
        let lt = Arc::new(transpose(&l));
        let forward =
            TrsvKernel::try_new(l, TrsvDirection::Lower, false, TrsvAlgo::Auto, ctx.clone())
                .map_err(map_trsv)?;
        let backward = TrsvKernel::try_new(lt, TrsvDirection::Upper, false, TrsvAlgo::Auto, ctx)
            .map_err(map_trsv)?;
        Ok(Self { forward, backward })
    }

    /// The incomplete Cholesky factor `L`.
    pub fn factor(&self) -> &Arc<CsrMatrix> {
        self.forward.matrix()
    }
}

impl Preconditioner for Ic0Precond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let mut y = vec![0.0; r.len()];
        self.forward.solve(r, &mut y);
        self.backward.solve(&y, z);
    }

    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        // Native multi-RHS path: both solves stream the factor once for all
        // k columns instead of k gather/apply/scatter round-trips.
        let mut y = MultiVec::zeros(r.nrows(), r.width());
        self.forward.solve_multi(r, &mut y);
        self.backward.solve_multi(&y, z);
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

/// ILU(0) preconditioner `M = L U`: a unit-lower forward solve and an upper
/// backward solve per application, both through [`TrsvKernel`].
pub struct Ilu0Precond {
    forward: TrsvKernel,
    backward: TrsvKernel,
}

impl Ilu0Precond {
    /// Factorizes and builds serial solvers.
    ///
    /// # Errors
    /// Propagates [`ilu0`] failures.
    pub fn new(a: &CsrMatrix) -> Result<Self, PrecondError> {
        Self::with_ctx(a, ExecCtx::new(1))
    }

    /// Factorizes with per-triangle [`TrsvAlgo::Auto`] selection on `ctx`.
    ///
    /// # Errors
    /// Propagates [`ilu0`] failures.
    pub fn with_ctx(a: &CsrMatrix, ctx: Arc<ExecCtx>) -> Result<Self, PrecondError> {
        let (l, u) = ilu0(a)?;
        let forward = TrsvKernel::try_new(
            Arc::new(l),
            TrsvDirection::Lower,
            true,
            TrsvAlgo::Auto,
            ctx.clone(),
        )
        .map_err(map_trsv)?;
        let backward = TrsvKernel::try_new(
            Arc::new(u),
            TrsvDirection::Upper,
            false,
            TrsvAlgo::Auto,
            ctx,
        )
        .map_err(map_trsv)?;
        Ok(Self { forward, backward })
    }

    /// The strict-lower part of the unit-lower factor `L`.
    pub fn l_factor(&self) -> &Arc<CsrMatrix> {
        self.forward.matrix()
    }

    /// The upper factor `U` (diagonal included).
    pub fn u_factor(&self) -> &Arc<CsrMatrix> {
        self.backward.matrix()
    }
}

impl Preconditioner for Ilu0Precond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let mut y = vec![0.0; r.len()];
        self.forward.solve(r, &mut y);
        self.backward.solve(&y, z);
    }

    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        let mut y = MultiVec::zeros(r.nrows(), r.width());
        self.forward.solve_multi(r, &mut y);
        self.backward.solve_multi(&y, z);
    }

    fn name(&self) -> &'static str {
        "ilu0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SPD tridiagonal: 2·diag-dominant band, whose exact Cholesky factor
    /// has no fill — so IC(0) must reproduce it to rounding.
    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + (i % 3) as f64);
            if i > 0 {
                coo.push(i, i - 1, -1.0 - (i % 2) as f64 * 0.5);
                coo.push(i - 1, i, -1.0 - (i % 2) as f64 * 0.5);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn dense_of(a: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; a.ncols()]; a.nrows()];
        for (i, j, v) in a.iter() {
            d[i][j] += v;
        }
        d
    }

    #[test]
    fn ic0_on_tridiagonal_is_exact_cholesky() {
        let n = 40;
        let a = spd_tridiag(n);
        let l = ic0(&a).expect("SPD");
        // Dense Cholesky reference.
        let ad = dense_of(&a);
        let mut ld = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = ad[i][j];
                for (lik, ljk) in ld[i].iter().zip(&ld[j]).take(j) {
                    s -= lik * ljk;
                }
                if i == j {
                    ld[i][i] = s.sqrt();
                } else {
                    ld[i][j] = s / ld[j][j];
                }
            }
        }
        // Pattern: exactly lower(A); values: the exact factor.
        assert_eq!(l.nnz(), a.lower_triangle(true).nnz());
        for (i, j, v) in l.iter() {
            assert!(
                (v - ld[i][j]).abs() < 1e-12 * (1.0 + ld[i][j].abs()),
                "L[{i}][{j}] = {v} vs exact {}",
                ld[i][j]
            );
        }
    }

    #[test]
    fn ic0_rejects_bad_input() {
        // Unsymmetric.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 2.0);
        coo.push(0, 1, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(ic0(&m).err(), Some(PrecondError::NotSymmetric));
        // Symmetric but indefinite.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 1, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(
            ic0(&m).err(),
            Some(PrecondError::NotPositiveDefinite { row: 1 })
        );
        // Missing structural diagonal.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 0.5);
        coo.push(1, 0, 0.5);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(ic0(&m).err(), Some(PrecondError::ZeroDiagonal { row: 1 }));
    }

    #[test]
    fn ilu0_with_full_pattern_reproduces_lu() {
        // A dense-pattern 4×4 matrix has no dropped fill, so ILU(0) is exact:
        // L·U must equal A to rounding.
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        let entries = [
            [10.0, 2.0, 3.0, 1.0],
            [4.0, 12.0, 1.0, 2.0],
            [2.0, 1.0, 9.0, 3.0],
            [1.0, 3.0, 2.0, 11.0],
        ];
        for (i, row) in entries.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                coo.push(i, j, v);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let (l, u) = ilu0(&a).expect("nonzero pivots");
        let ld = dense_of(&l);
        let ud = dense_of(&u);
        for i in 0..n {
            for j in 0..n {
                // (L + I) · U
                let mut s = ud[i][j];
                for k in 0..n {
                    s += ld[i][k] * ud[k][j];
                }
                assert!(
                    (s - entries[i][j]).abs() < 1e-12 * (1.0 + entries[i][j].abs()),
                    "(LU)[{i}][{j}] = {s} vs {}",
                    entries[i][j]
                );
            }
        }
    }

    #[test]
    fn ilu0_requires_structural_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(ilu0(&a).err(), Some(PrecondError::ZeroDiagonal { row: 1 }));
    }

    #[test]
    fn ic0_precond_solves_its_own_factorization() {
        // On a no-fill matrix M = L·Lᵀ = A exactly, so apply() must invert A.
        let n = 30;
        let a = spd_tridiag(n);
        let p = Ic0Precond::new(&a).expect("SPD");
        let want: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let ad = dense_of(&a);
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += ad[i][j] * want[j];
            }
        }
        let mut z = vec![0.0; n];
        p.apply(&b, &mut z);
        for (i, (zi, wi)) in z.iter().zip(&want).enumerate() {
            assert!(
                (zi - wi).abs() < 1e-10 * (1.0 + wi.abs()),
                "row {i}: {zi} vs {wi}"
            );
        }
    }

    #[test]
    fn ilu0_precond_multi_matches_single() {
        let n = 25;
        let a = spd_tridiag(n);
        let p = Ilu0Precond::new(&a).expect("nonzero pivots");
        let k = 3;
        let r = MultiVec::from_fn(n, k, |i, j| (i as f64 * 0.17 + j as f64).cos());
        let mut z = MultiVec::zeros(n, k);
        p.apply_multi(&r, &mut z);
        for j in 0..k {
            let mut want = vec![0.0; n];
            p.apply(&r.column(j), &mut want);
            for (i, wi) in want.iter().enumerate() {
                assert!(
                    (z.column(j)[i] - wi).abs() < 1e-13 * (1.0 + wi.abs()),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn with_ctx_matches_serial_results() {
        let n = 50;
        let a = spd_tridiag(n);
        let serial = Ic0Precond::new(&a).unwrap();
        let pooled = Ic0Precond::with_ctx(&a, ExecCtx::new(4)).unwrap();
        let r: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut z1 = vec![0.0; n];
        let mut z2 = vec![0.0; n];
        serial.apply(&r, &mut z1);
        pooled.apply(&r, &mut z2);
        // Same factor, same per-row substitution ⇒ bit-identical.
        assert_eq!(z1, z2);
    }
}
