//! Dense vector kernels (level-1 BLAS) used by the Krylov solvers.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // Four accumulators: same dependency-breaking the SpMV kernels use.
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let k = i * 4;
        s0 += x[k] * y[k];
        s1 += x[k + 1] * y[k + 1];
        s2 += x[k + 2] * y[k + 2];
        s3 += x[k + 3] * y[k + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for k in chunks * 4..n {
        s += x[k] * y[k];
    }
    s
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← a·x + y`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the CG direction update).
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Elementwise `z ← x ⊘ d` (Jacobi application).
#[inline]
pub fn elementwise_div(x: &[f64], d: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), d.len(), "div length mismatch");
    assert_eq!(x.len(), z.len(), "div length mismatch");
    for ((zi, &xi), &di) in z.iter_mut().zip(x).zip(d) {
        *zi = xi / di;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i as f64) * 0.5).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_and_xpby() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
    }

    #[test]
    fn scale_and_div() {
        let mut x = [2.0, 4.0];
        scale(0.5, &mut x);
        assert_eq!(x, [1.0, 2.0]);
        let d = [2.0, 4.0];
        let mut z = [0.0, 0.0];
        elementwise_div(&[4.0, 8.0], &d, &mut z);
        assert_eq!(z, [2.0, 2.0]);
    }
}
