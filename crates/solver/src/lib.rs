//! # sparseopt-solver
//!
//! Krylov iterative solvers over any
//! [`sparseopt_core::kernels::SparseLinOp`]: preconditioned CG, BiCGSTAB,
//! and restarted GMRES(m), with identity and Jacobi preconditioners. These
//! are the SpMV consumers the paper's amortization analysis (Table V) is
//! framed around — "iterative methods for the solution of large sparse
//! linear systems ... repeatedly call SpMV".
//!
//! The operator layer's transposed application unlocks the
//! transpose-consuming methods: classic [`bicg()`](bicg::bicg) (one `A`
//! and one `Aᵀ` stream per iteration) and the least-squares solvers
//! [`lsqr()`](lsqr::lsqr) / [`cgnr`] over rectangular operators.
//!
//! The [`block`] module extends the same consumers to the multiple
//! right-hand-side workload over the operators' multi-vector application:
//! block CG shares one Krylov space across `k` right-hand sides and batched
//! BiCGSTAB shares the matrix stream, so each iteration pays for the matrix
//! bytes once instead of `k` times.

pub mod bicg;
pub mod bicgstab;
pub mod blas;
pub mod block;
pub mod cg;
pub mod eigen;
pub mod factor;
pub mod gmres;
pub mod lsqr;
pub mod precond;

pub use bicg::bicg;
pub use bicgstab::bicgstab;
pub use block::{bicgstab_multi, block_cg, BlockSolveOutcome};
pub use cg::cg;
pub use eigen::{power_method, spd_condition_estimate, EigenOutcome};
pub use factor::{ic0, ilu0, Ic0Precond, Ilu0Precond};
pub use gmres::gmres;
pub use lsqr::{cgnr, lsqr, NormalOp};
pub use precond::{IdentityPrecond, JacobiPrecond, PrecondError, Preconditioner, SymGsPrecond};

/// Iteration controls shared by all solvers.
///
/// ```
/// use sparseopt_solver::{cg, IdentityPrecond, SolverOptions};
/// use sparseopt_core::prelude::*;
/// use std::sync::Arc;
///
/// let a = Arc::new(CsrMatrix::from_coo(
///     &sparseopt_matrix::generators::poisson2d(8, 8),
/// ));
/// let kernel = SerialCsr::new(a.clone());
/// let b = vec![1.0; a.nrows()];
/// let mut x = vec![0.0; a.nrows()];
///
/// let opts = SolverOptions { tol: 1e-8, max_iters: 500 };
/// let out = cg(&kernel, &b, &mut x, &IdentityPrecond, &opts);
/// assert!(out.converged);
/// assert!(out.relative_residual <= opts.tol);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverOptions {
    /// Relative residual tolerance `‖r‖ / ‖b‖`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iters: 1000,
        }
    }
}

/// Result of a solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOutcome {
    /// True when the tolerance was met.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Total SpMV invocations (the quantity amortization counts).
    pub spmv_calls: usize,
    /// True when the method broke down numerically.
    pub breakdown: bool,
}

impl SolveOutcome {
    pub(crate) fn converged(iterations: usize, rel: f64, spmv_calls: usize) -> Self {
        Self {
            converged: true,
            iterations,
            relative_residual: rel,
            spmv_calls,
            breakdown: false,
        }
    }

    pub(crate) fn not_converged(iterations: usize, rel: f64, spmv_calls: usize) -> Self {
        Self {
            converged: false,
            iterations,
            relative_residual: rel,
            spmv_calls,
            breakdown: false,
        }
    }

    pub(crate) fn broke_down(iterations: usize, rel: f64, spmv_calls: usize) -> Self {
        Self {
            converged: false,
            iterations,
            relative_residual: rel,
            spmv_calls,
            breakdown: true,
        }
    }
}
