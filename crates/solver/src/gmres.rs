//! Restarted GMRES(m) with Givens rotations — the paper's other
//! representative solver family (Section IV-D mentions GMRES variants).

use crate::blas::{dot, norm2, scale};
use crate::precond::Preconditioner;
use crate::{SolveOutcome, SolverOptions};
use sparseopt_core::kernels::SparseLinOp;

/// Solves `A x = b` via left-preconditioned restarted GMRES(m).
/// `x` holds the initial guess on entry and the solution on exit.
///
/// # Panics
/// Panics if the operator is not square, vector lengths disagree, or
/// `restart == 0`.
pub fn gmres(
    a: &dyn SparseLinOp,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    restart: usize,
    opts: &SolverOptions,
) -> SolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "GMRES needs a square operator");
    assert_eq!(b.len(), nrows, "b length mismatch");
    assert_eq!(x.len(), nrows, "x length mismatch");
    assert!(restart > 0, "restart length must be positive");
    let n = nrows;
    let m = restart;

    let mut pb = vec![0.0; n];
    precond.apply(b, &mut pb);
    let bnorm = norm2(&pb).max(f64::MIN_POSITIVE);

    let mut spmv_calls = 0usize;
    let mut total_iters = 0usize;
    let mut tmp = vec![0.0; n];
    let mut r = vec![0.0; n];

    loop {
        // r = M⁻¹ (b − A x)
        a.spmv(x, &mut tmp);
        spmv_calls += 1;
        let mut raw = vec![0.0; n];
        for i in 0..n {
            raw[i] = b[i] - tmp[i];
        }
        precond.apply(&raw, &mut r);
        let beta = norm2(&r);
        let rel0 = beta / bnorm;
        if rel0 <= opts.tol {
            return SolveOutcome::converged(total_iters, rel0, spmv_calls);
        }
        if total_iters >= opts.max_iters {
            return SolveOutcome::not_converged(total_iters, rel0, spmv_calls);
        }

        // Arnoldi basis V and Hessenberg H (column major, (m+1) × m).
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut v0 = r.clone();
        scale(1.0 / beta, &mut v0);
        v.push(v0);
        let mut h = vec![vec![0.0f64; m]; m + 1];
        // Givens rotation state.
        let (mut cs, mut sn) = (vec![0.0f64; m], vec![0.0f64; m]);
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut k_used = 0usize;
        let mut converged = false;
        for k in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = M⁻¹ A v_k
            a.spmv(&v[k], &mut tmp);
            spmv_calls += 1;
            let mut w = vec![0.0; n];
            precond.apply(&tmp, &mut w);

            // Modified Gram-Schmidt.
            for j in 0..=k {
                h[j][k] = dot(&w, &v[j]);
                for i in 0..n {
                    w[i] -= h[j][k] * v[j][i];
                }
            }
            h[k + 1][k] = norm2(&w);
            k_used = k + 1;
            if h[k + 1][k] > 1e-300 {
                scale(1.0 / h[k + 1][k], &mut w);
                v.push(w);
            } else {
                // Lucky breakdown: exact solution in this Krylov space.
                apply_givens_column(&mut h, &mut cs, &mut sn, &mut g, k);
                converged = true;
                break;
            }

            apply_givens_column(&mut h, &mut cs, &mut sn, &mut g, k);
            let rel = g[k + 1].abs() / bnorm;
            if rel <= opts.tol {
                converged = true;
                break;
            }
        }

        // Solve the triangular system H y = g and update x.
        if k_used > 0 {
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut s = g[i];
                for j in i + 1..k_used {
                    s -= h[i][j] * y[j];
                }
                y[i] = if h[i][i].abs() > 1e-300 {
                    s / h[i][i]
                } else {
                    0.0
                };
            }
            for (j, &yj) in y.iter().enumerate() {
                for i in 0..n {
                    x[i] += yj * v[j][i];
                }
            }
        }

        if converged {
            // Recompute the true residual for the report.
            a.spmv(x, &mut tmp);
            spmv_calls += 1;
            let mut raw = vec![0.0; n];
            for i in 0..n {
                raw[i] = b[i] - tmp[i];
            }
            precond.apply(&raw, &mut r);
            let rel = norm2(&r) / bnorm;
            if rel <= opts.tol * 10.0 {
                return SolveOutcome::converged(total_iters, rel, spmv_calls);
            }
            // Otherwise restart and keep going.
        }
        if total_iters >= opts.max_iters {
            a.spmv(x, &mut tmp);
            spmv_calls += 1;
            let mut raw = vec![0.0; n];
            for i in 0..n {
                raw[i] = b[i] - tmp[i];
            }
            precond.apply(&raw, &mut r);
            return SolveOutcome::not_converged(total_iters, norm2(&r) / bnorm, spmv_calls);
        }
    }
}

/// Applies the stored Givens rotations to column `k` of `H`, generates the
/// new rotation killing `H[k+1][k]`, and updates the RHS `g`.
fn apply_givens_column(
    h: &mut [Vec<f64>],
    cs: &mut [f64],
    sn: &mut [f64],
    g: &mut [f64],
    k: usize,
) {
    for j in 0..k {
        let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
        h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
        h[j][k] = t;
    }
    let (a, b) = (h[k][k], h[k + 1][k]);
    let r = (a * a + b * b).sqrt();
    if r < 1e-300 {
        cs[k] = 1.0;
        sn[k] = 0.0;
    } else {
        cs[k] = a / r;
        sn[k] = b / r;
    }
    h[k][k] = cs[k] * a + sn[k] * b;
    h[k + 1][k] = 0.0;
    let t = cs[k] * g[k];
    g[k + 1] = -sn[k] * g[k];
    g[k] = t;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sparseopt_core::coo::CooMatrix;
    use sparseopt_core::prelude::*;
    use sparseopt_matrix::generators as g;
    use std::sync::Arc;

    fn nonsym(n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 5.0);
            if i > 0 {
                coo.push(i, i - 1, -2.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
            if i + 7 < n {
                coo.push(i, i + 7, 0.3);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    fn residual(a: &dyn SparseLinOp, b: &[f64], x: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.spmv(x, &mut ax);
        b.iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solves_nonsymmetric_with_restart() {
        let a = nonsym(300);
        let kernel = SerialCsr::new(a.clone());
        let b = vec![1.0; 300];
        let mut x = vec![0.0; 300];
        let out = gmres(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            30,
            &SolverOptions {
                tol: 1e-10,
                max_iters: 600,
            },
        );
        assert!(out.converged, "{out:?}");
        assert!(residual(&kernel, &b, &x) < 1e-6);
    }

    #[test]
    fn small_restart_still_converges_on_dominant_system() {
        let a = nonsym(200);
        let kernel = SerialCsr::new(a.clone());
        let b: Vec<f64> = (0..200).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x = vec![0.0; 200];
        let out = gmres(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            5,
            &SolverOptions {
                tol: 1e-9,
                max_iters: 2000,
            },
        );
        assert!(out.converged, "{out:?}");
        assert!(residual(&kernel, &b, &x) < 1e-5);
    }

    #[test]
    fn matches_cg_on_spd_problem() {
        let a = Arc::new(CsrMatrix::from_coo(&g::poisson2d(12, 12)));
        let kernel = SerialCsr::new(a.clone());
        let n = a.nrows();
        let b = vec![1.0; n];

        let mut x_gmres = vec![0.0; n];
        let out = gmres(
            &kernel,
            &b,
            &mut x_gmres,
            &IdentityPrecond,
            50,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 2000,
            },
        );
        assert!(out.converged);

        let mut x_cg = vec![0.0; n];
        let out2 = crate::cg::cg(
            &kernel,
            &b,
            &mut x_cg,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 2000,
            },
        );
        assert!(out2.converged);
        for (a1, a2) in x_gmres.iter().zip(&x_cg) {
            assert!((a1 - a2).abs() < 1e-6, "{a1} vs {a2}");
        }
    }

    #[test]
    fn jacobi_preconditioned_gmres() {
        let a = nonsym(150);
        let kernel = SerialCsr::new(a.clone());
        let b = vec![2.0; 150];
        let mut x = vec![0.0; 150];
        let out = gmres(
            &kernel,
            &b,
            &mut x,
            &JacobiPrecond::new(&a).expect("zero-free diagonal"),
            20,
            &SolverOptions {
                tol: 1e-10,
                max_iters: 1000,
            },
        );
        assert!(out.converged);
        assert!(residual(&kernel, &b, &x) < 1e-5);
    }
}
