//! Transpose-consuming least-squares solvers: LSQR (Paige & Saunders 1982)
//! and CGNR (CG over the normal equations).
//!
//! These are the solvers the operator layer's transposed application
//! unlocks: both alternate `A·v` and `Aᵀ·u` every iteration, so they run
//! over any [`SparseLinOp`] — rectangular operators included — without a
//! transposed copy of the matrix ever being materialized. Each iteration
//! streams the matrix exactly twice, which the amortization analysis counts
//! the same way it counts two SpMV calls.

use crate::blas::{norm2, scale};
use crate::{SolveOutcome, SolverOptions};
use sparseopt_core::kernels::{Apply, OpCapabilities, SparseLinOp};
use sparseopt_core::multivec::MultiVec;

/// Solves `min ‖A·x − b‖₂` via LSQR (algebraically equivalent to CG on the
/// normal equations but numerically better behaved). Works for square,
/// overdetermined, and underdetermined operators; `x` holds the initial
/// guess on entry and the solution on exit.
///
/// Convergence is declared when either the residual itself meets the
/// tolerance (`‖r‖/‖b‖ ≤ tol`, consistent systems) or the normal-equations
/// residual does (`‖Aᵀr‖ / (‖A‖·‖r‖) ≤ tol`, genuine least-squares
/// solutions where `‖r‖` stays finite). `spmv_calls` counts both forward
/// and transposed applications.
///
/// # Panics
/// Panics on operand length mismatch or an operator without transpose
/// capability.
pub fn lsqr(a: &dyn SparseLinOp, b: &[f64], x: &mut [f64], opts: &SolverOptions) -> SolveOutcome {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "b length mismatch");
    assert_eq!(x.len(), n, "x length mismatch");
    assert!(
        a.capabilities().transpose,
        "LSQR needs a transpose-capable operator (see SparseLinOp::capabilities)"
    );

    let bnorm = norm2(b).max(f64::MIN_POSITIVE);

    // u = b − A x ; β = ‖u‖.
    let mut u = vec![0.0; m];
    a.apply(Apply::NoTrans, x, &mut u);
    for (ui, bi) in u.iter_mut().zip(b) {
        *ui = bi - *ui;
    }
    let mut spmv_calls = 1usize;
    let mut beta = norm2(&u);
    if beta <= f64::MIN_POSITIVE {
        // x already reproduces b exactly.
        return SolveOutcome::converged(0, 0.0, spmv_calls);
    }
    scale(1.0 / beta, &mut u);

    // v = Aᵀ u ; α = ‖v‖.
    let mut v = vec![0.0; n];
    a.apply(Apply::Trans, &u, &mut v);
    spmv_calls += 1;
    let mut alpha = norm2(&v);
    if alpha <= f64::MIN_POSITIVE {
        // b is orthogonal to the range of A: x is already optimal.
        return SolveOutcome::converged(0, beta / bnorm, spmv_calls);
    }
    scale(1.0 / alpha, &mut v);

    let mut w = v.clone();
    let mut phi_bar = beta;
    let mut rho_bar = alpha;
    // Frobenius-norm lower bound accumulated from the bidiagonal entries.
    let mut anorm_sq = alpha * alpha;

    let mut tmp_m = vec![0.0; m];
    let mut tmp_n = vec![0.0; n];

    for iter in 1..=opts.max_iters {
        // Bidiagonalization step: β u ← A v − α u.
        a.apply(Apply::NoTrans, &v, &mut tmp_m);
        spmv_calls += 1;
        for (ui, &ti) in u.iter_mut().zip(&tmp_m) {
            *ui = ti - alpha * *ui;
        }
        beta = norm2(&u);
        if beta > 0.0 {
            scale(1.0 / beta, &mut u);
        }

        // α v ← Aᵀ u − β v.
        a.apply(Apply::Trans, &u, &mut tmp_n);
        spmv_calls += 1;
        for (vi, &ti) in v.iter_mut().zip(&tmp_n) {
            *vi = ti - beta * *vi;
        }
        alpha = norm2(&v);
        if alpha > 0.0 {
            scale(1.0 / alpha, &mut v);
        }
        anorm_sq += alpha * alpha + beta * beta;

        // Givens rotation eliminating β from the bidiagonal.
        let rho = rho_bar.hypot(beta);
        let c = rho_bar / rho;
        let s = beta / rho;
        let theta = s * alpha;
        rho_bar = -c * alpha;
        let phi = c * phi_bar;
        phi_bar *= s;

        // x ← x + (φ/ρ) w ; w ← v − (θ/ρ) w.
        let t1 = phi / rho;
        let t2 = -theta / rho;
        for i in 0..n {
            x[i] += t1 * w[i];
            w[i] = v[i] + t2 * w[i];
        }

        // ‖r‖ ≈ φ̄ ; ‖Aᵀr‖ ≈ φ̄ · α · |c|.
        let rel = phi_bar / bnorm;
        let normal_rel = (phi_bar * alpha * c.abs())
            / (anorm_sq.sqrt() * phi_bar.max(f64::MIN_POSITIVE)).max(f64::MIN_POSITIVE);
        if rel <= opts.tol || normal_rel <= opts.tol {
            return SolveOutcome::converged(iter, rel, spmv_calls);
        }
        if alpha <= f64::MIN_POSITIVE || beta <= f64::MIN_POSITIVE {
            // Exact termination of the bidiagonalization.
            return SolveOutcome::converged(iter, rel, spmv_calls);
        }
    }
    SolveOutcome::not_converged(opts.max_iters, phi_bar / bnorm, spmv_calls)
}

/// The normal-equations operator `AᵀA` as a [`SparseLinOp`], composed from
/// any inner operator without materializing the (generally much denser)
/// product. Symmetric by construction, so transposed application is the
/// forward one; each application streams the inner matrix twice. The
/// intermediate `A·x` lives in thread-local scratch, so do not nest a
/// `NormalOp` inside another `NormalOp`.
pub struct NormalOp<'a> {
    inner: &'a dyn SparseLinOp,
}

std::thread_local! {
    /// Reusable `A·x` intermediate — CG drives one normal-equations
    /// application per iteration, and the hot loop must not allocate.
    static NORMAL_TMP: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Multi-vector flavor of the same scratch, reused while the shape
    /// stays fixed (one solve = one shape).
    static NORMAL_TMP_MULTI: std::cell::RefCell<Option<MultiVec>> =
        const { std::cell::RefCell::new(None) };
}

impl<'a> NormalOp<'a> {
    /// Wraps `inner` as `AᵀA`.
    ///
    /// # Panics
    /// Panics if `inner` cannot apply its transpose.
    pub fn new(inner: &'a dyn SparseLinOp) -> Self {
        assert!(
            inner.capabilities().transpose,
            "NormalOp needs a transpose-capable inner operator"
        );
        Self { inner }
    }
}

impl SparseLinOp for NormalOp<'_> {
    fn name(&self) -> String {
        format!("normal({})", self.inner.name())
    }

    fn shape(&self) -> (usize, usize) {
        let (_, n) = self.inner.shape();
        (n, n)
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn capabilities(&self) -> OpCapabilities {
        self.inner.capabilities()
    }

    fn apply(&self, _op: Apply, x: &[f64], y: &mut [f64]) {
        // AᵀA is symmetric: both application modes coincide.
        let (m, _) = self.inner.shape();
        NORMAL_TMP.with(|cell| {
            let mut tmp = cell.borrow_mut();
            tmp.clear();
            tmp.resize(m, 0.0);
            self.inner.apply(Apply::NoTrans, x, &mut tmp);
            self.inner.apply(Apply::Trans, &tmp, y);
        });
    }

    fn apply_multi(&self, _op: Apply, x: &MultiVec, y: &mut MultiVec) {
        let (m, _) = self.inner.shape();
        NORMAL_TMP_MULTI.with(|cell| {
            let mut slot = cell.borrow_mut();
            let reusable =
                matches!(slot.as_ref(), Some(t) if t.nrows() == m && t.width() == x.width());
            if !reusable {
                *slot = Some(MultiVec::zeros(m, x.width()));
            }
            let tmp = slot.as_mut().expect("scratch just ensured");
            self.inner.apply_multi(Apply::NoTrans, x, tmp);
            self.inner.apply_multi(Apply::Trans, tmp, y);
        });
    }

    fn footprint_bytes(&self) -> usize {
        self.inner.footprint_bytes()
    }

    /// Two matrix streams per application.
    fn flops(&self, k: usize) -> f64 {
        2.0 * self.inner.flops(k)
    }
}

/// Solves `min ‖A·x − b‖₂` via CGNR: plain CG on `AᵀA x = Aᵀ b` through
/// [`NormalOp`]. Algebraically the same iterates as [`lsqr`] in exact
/// arithmetic, with the normal equations' squared conditioning — kept as
/// the simple cross-check the tests pit LSQR against.
///
/// The reported `relative_residual` is the CG residual of the *normal*
/// equations, `‖Aᵀ(b − A x)‖ / ‖Aᵀb‖`; `spmv_calls` counts matrix streams
/// (two per normal-equations application).
pub fn cgnr(a: &dyn SparseLinOp, b: &[f64], x: &mut [f64], opts: &SolverOptions) -> SolveOutcome {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "b length mismatch");
    assert_eq!(x.len(), n, "x length mismatch");

    let normal = NormalOp::new(a);
    let mut atb = vec![0.0; n];
    a.apply(Apply::Trans, b, &mut atb);
    let mut out = crate::cg::cg(&normal, &atb, x, &crate::precond::IdentityPrecond, opts);
    // Count matrix streams, not operator applications: the initial Aᵀb plus
    // two streams per normal-equations apply.
    out.spmv_calls = 2 * out.spmv_calls + 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::coo::CooMatrix;
    use sparseopt_core::csr::CsrMatrix;
    use sparseopt_core::kernels::SerialCsr;
    use std::sync::Arc;

    /// Tall sparse "data fitting" operator with full column rank.
    fn tall_matrix(m: usize, n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(m, n);
        for i in 0..m {
            let c = i % n;
            coo.push(i, c, 2.0 + (i % 5) as f64 * 0.25);
            coo.push(i, (c + 3) % n, -1.0 + (i % 3) as f64 * 0.125);
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    fn normal_residual(a: &dyn SparseLinOp, b: &[f64], x: &[f64]) -> f64 {
        let (m, n) = a.shape();
        let mut r = vec![0.0; m];
        a.apply(Apply::NoTrans, x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut atr = vec![0.0; n];
        a.apply(Apply::Trans, &r, &mut atr);
        norm2(&atr)
    }

    #[test]
    fn lsqr_solves_consistent_square_system() {
        let mut coo = CooMatrix::new(50, 50);
        for i in 0..50 {
            coo.push(i, i, 4.0);
            if i + 1 < 50 {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -2.0); // asymmetric
            }
        }
        let a = SerialCsr::new(Arc::new(CsrMatrix::from_coo(&coo)));
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let out = lsqr(
            &a,
            &b,
            &mut x,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(out.converged, "{out:?}");
        let mut ax = vec![0.0; 50];
        a.apply(Apply::NoTrans, &x, &mut ax);
        let res: f64 = b
            .iter()
            .zip(&ax)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-8, "true residual {res}");
    }

    #[test]
    fn lsqr_finds_least_squares_solution_of_tall_system() {
        let a_mat = tall_matrix(120, 30);
        let a = SerialCsr::new(a_mat);
        let b: Vec<f64> = (0..120).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut x = vec![0.0; 30];
        let out = lsqr(
            &a,
            &b,
            &mut x,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 500,
            },
        );
        assert!(out.converged, "{out:?}");
        // Optimality: the residual must be orthogonal to the column space.
        assert!(
            normal_residual(&a, &b, &x) < 1e-7,
            "‖Aᵀr‖ = {}",
            normal_residual(&a, &b, &x)
        );
    }

    #[test]
    fn cgnr_agrees_with_lsqr() {
        let a_mat = tall_matrix(90, 24);
        let a = SerialCsr::new(a_mat);
        let b: Vec<f64> = (0..90).map(|i| (i as f64 * 0.17).sin()).collect();
        let opts = SolverOptions {
            tol: 1e-12,
            max_iters: 500,
        };
        let mut x1 = vec![0.0; 24];
        let o1 = lsqr(&a, &b, &mut x1, &opts);
        let mut x2 = vec![0.0; 24];
        let o2 = cgnr(&a, &b, &mut x2, &opts);
        assert!(o1.converged && o2.converged, "{o1:?} / {o2:?}");
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = SerialCsr::new(tall_matrix(40, 10));
        let b = vec![0.0; 40];
        let mut x = vec![0.0; 10];
        let out = lsqr(&a, &b, &mut x, &SolverOptions::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normal_op_is_symmetric() {
        let a = SerialCsr::new(tall_matrix(30, 8));
        let normal = NormalOp::new(&a);
        assert_eq!(normal.shape(), (8, 8));
        let x: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let mut y1 = vec![0.0; 8];
        normal.apply(Apply::NoTrans, &x, &mut y1);
        let mut y2 = vec![0.0; 8];
        normal.apply(Apply::Trans, &x, &mut y2);
        assert_eq!(y1, y2);
        assert!(normal.name().starts_with("normal("));
    }
}
