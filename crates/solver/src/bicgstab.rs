//! BiCGSTAB for general (nonsymmetric) systems.

use crate::blas::{axpy, dot, norm2};
use crate::precond::Preconditioner;
use crate::{SolveOutcome, SolverOptions};
use sparseopt_core::kernels::SparseLinOp;

/// Solves `A x = b` via preconditioned BiCGSTAB. `x` holds the initial guess
/// on entry and the solution on exit.
///
/// # Panics
/// Panics if the operator is not square or vector lengths disagree.
pub fn bicgstab(
    a: &dyn SparseLinOp,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    opts: &SolverOptions,
) -> SolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "BiCGSTAB needs a square operator");
    assert_eq!(b.len(), nrows, "b length mismatch");
    assert_eq!(x.len(), nrows, "x length mismatch");
    let n = nrows;
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);

    let mut r = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    a.spmv(x, &mut tmp);
    for i in 0..n {
        r[i] = b[i] - tmp[i];
    }
    let r0 = r.clone(); // shadow residual
    let mut spmv_calls = 1usize;

    let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for iter in 0..opts.max_iters {
        let rel = norm2(&r) / bnorm;
        if rel <= opts.tol {
            return SolveOutcome::converged(iter, rel, spmv_calls);
        }
        let rho_next = dot(&r0, &r);
        if rho_next.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, rel, spmv_calls);
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        // p = r + beta (p − ω v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.apply(&p, &mut phat);
        a.spmv(&phat, &mut v);
        spmv_calls += 1;
        let r0v = dot(&r0, &v);
        if r0v.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, rel, spmv_calls);
        }
        alpha = rho / r0v;
        // s = r − α v (reuse r as s)
        axpy(-alpha, &v, &mut r);
        if norm2(&r) / bnorm <= opts.tol {
            axpy(alpha, &phat, x);
            return SolveOutcome::converged(iter + 1, norm2(&r) / bnorm, spmv_calls);
        }
        precond.apply(&r, &mut shat);
        a.spmv(&shat, &mut t);
        spmv_calls += 1;
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, norm2(&r) / bnorm, spmv_calls);
        }
        omega = dot(&t, &r) / tt;
        // x += α p̂ + ω ŝ ; r = s − ω t
        axpy(alpha, &phat, x);
        axpy(omega, &shat, x);
        axpy(-omega, &t, &mut r);
        if omega.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, norm2(&r) / bnorm, spmv_calls);
        }
    }
    SolveOutcome::not_converged(opts.max_iters, norm2(&r) / bnorm, spmv_calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sparseopt_core::coo::CooMatrix;
    use sparseopt_core::prelude::*;
    use std::sync::Arc;

    /// Nonsymmetric but diagonally dominant system.
    fn convection_diffusion(n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.5); // upwind bias makes it nonsymmetric
            }
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = convection_diffusion(400);
        let kernel = SerialCsr::new(a.clone());
        let b = vec![1.0; 400];
        let mut x = vec![0.0; 400];
        let out = bicgstab(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-10,
                max_iters: 500,
            },
        );
        assert!(out.converged, "{out:?}");
        let mut ax = vec![0.0; 400];
        kernel.spmv(&x, &mut ax);
        let res: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-7, "true residual {res}");
    }

    #[test]
    fn jacobi_preconditioning_works() {
        let a = convection_diffusion(300);
        let kernel = SerialCsr::new(a.clone());
        let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x = vec![0.0; 300];
        let out = bicgstab(
            &kernel,
            &b,
            &mut x,
            &JacobiPrecond::new(&a).expect("zero-free diagonal"),
            &SolverOptions {
                tol: 1e-10,
                max_iters: 500,
            },
        );
        assert!(out.converged);
    }

    #[test]
    fn counts_two_spmv_per_iteration() {
        let a = convection_diffusion(100);
        let kernel = SerialCsr::new(a.clone());
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let out = bicgstab(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 200,
            },
        );
        assert!(out.converged);
        assert!(out.spmv_calls >= 2 * out.iterations.saturating_sub(1));
    }
}
