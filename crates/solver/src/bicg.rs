//! Classic BiCG (biconjugate gradients) for general square systems — the
//! original transpose-consuming Krylov method: every iteration applies both
//! `A` (to the primal direction) and `Aᵀ` (to the shadow direction), which
//! is exactly the application pair the operator layer's transposed kernels
//! provide. BiCGSTAB exists to *avoid* the transpose; keeping both lets the
//! benches compare the transpose-free and transpose-consuming recurrences
//! over identical operators.

use crate::blas::{axpy, dot, norm2, xpby};
use crate::precond::Preconditioner;
use crate::{SolveOutcome, SolverOptions};
use sparseopt_core::kernels::{Apply, SparseLinOp};

/// Solves `A x = b` for general (nonsymmetric) square `A` via preconditioned
/// BiCG. `x` holds the initial guess on entry and the solution on exit.
///
/// The shadow recurrence applies `M⁻ᵀ`; the [`Preconditioner`] trait only
/// exposes `M⁻¹`, so this driver requires a **symmetric** preconditioner
/// (identity and Jacobi both are). `spmv_calls` counts both forward and
/// transposed operator applications.
///
/// # Panics
/// Panics if the operator is not square, lacks transpose capability, or
/// vector lengths disagree.
pub fn bicg(
    a: &dyn SparseLinOp,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    opts: &SolverOptions,
) -> SolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "BiCG needs a square operator");
    assert_eq!(b.len(), nrows, "b length mismatch");
    assert_eq!(x.len(), nrows, "x length mismatch");
    assert!(
        a.capabilities().transpose,
        "BiCG needs a transpose-capable operator (see SparseLinOp::capabilities)"
    );
    let n = nrows;
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);

    // r = b − A x ; r̃ = r (shadow residual).
    let mut r = vec![0.0; n];
    a.apply(Apply::NoTrans, x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut rt = r.clone();
    let mut spmv_calls = 1usize;

    let mut z = vec![0.0; n];
    let mut zt = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut pt = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut qt = vec![0.0; n];
    let mut rho_prev = 1.0f64;

    for iter in 0..opts.max_iters {
        let rel = norm2(&r) / bnorm;
        if rel <= opts.tol {
            return SolveOutcome::converged(iter, rel, spmv_calls);
        }

        precond.apply(&r, &mut z);
        precond.apply(&rt, &mut zt); // M symmetric ⇒ M⁻ᵀ = M⁻¹
        let rho = dot(&z, &rt);
        if rho.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, rel, spmv_calls);
        }
        if iter == 0 {
            p.copy_from_slice(&z);
            pt.copy_from_slice(&zt);
        } else {
            let beta = rho / rho_prev;
            xpby(&z, beta, &mut p); // p = z + β p
            xpby(&zt, beta, &mut pt); // p̃ = z̃ + β p̃
        }
        rho_prev = rho;

        // The iteration's two matrix streams: q = A p, q̃ = Aᵀ p̃.
        a.apply(Apply::NoTrans, &p, &mut q);
        a.apply(Apply::Trans, &pt, &mut qt);
        spmv_calls += 2;

        let ptq = dot(&pt, &q);
        if ptq.abs() < 1e-300 {
            return SolveOutcome::broke_down(iter, rel, spmv_calls);
        }
        let alpha = rho / ptq;
        axpy(alpha, &p, x);
        axpy(-alpha, &q, &mut r);
        axpy(-alpha, &qt, &mut rt);
    }
    SolveOutcome::not_converged(opts.max_iters, norm2(&r) / bnorm, spmv_calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::bicgstab;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sparseopt_core::coo::CooMatrix;
    use sparseopt_core::prelude::*;
    use std::sync::Arc;

    /// Nonsymmetric but diagonally dominant system.
    fn convection_diffusion(n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.5); // upwind bias makes it nonsymmetric
            }
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a_mat = convection_diffusion(300);
        let a = SerialCsr::new(a_mat.clone());
        let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut x = vec![0.0; 300];
        let out = bicg(
            &a,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-10,
                max_iters: 500,
            },
        );
        assert!(out.converged, "{out:?}");
        let mut ax = vec![0.0; 300];
        a.spmv(&x, &mut ax);
        let res: f64 = b
            .iter()
            .zip(&ax)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-7, "true residual {res}");
    }

    #[test]
    fn agrees_with_bicgstab_and_counts_transpose_streams() {
        let a_mat = convection_diffusion(200);
        let a = ParallelCsr::baseline(a_mat.clone(), ExecCtx::new(2));
        let b = vec![1.0; 200];
        let opts = SolverOptions {
            tol: 1e-11,
            max_iters: 500,
        };
        let mut x1 = vec![0.0; 200];
        let o1 = bicg(
            &a,
            &b,
            &mut x1,
            &JacobiPrecond::new(&a_mat).expect("zero-free diagonal"),
            &opts,
        );
        let mut x2 = vec![0.0; 200];
        let o2 = bicgstab(
            &a,
            &b,
            &mut x2,
            &JacobiPrecond::new(&a_mat).expect("zero-free diagonal"),
            &opts,
        );
        assert!(o1.converged && o2.converged, "{o1:?} / {o2:?}");
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
        // One forward + one transposed stream per iteration, plus the
        // initial residual.
        assert_eq!(o1.spmv_calls, 2 * o1.iterations + 1);
    }

    #[test]
    fn on_spd_systems_bicg_reduces_to_cg() {
        use sparseopt_matrix::generators as g;
        let a_mat = Arc::new(CsrMatrix::from_coo(&g::poisson2d(12, 12)));
        let a = SerialCsr::new(a_mat.clone());
        let b: Vec<f64> = (0..a_mat.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = SolverOptions {
            tol: 1e-10,
            max_iters: 1000,
        };
        let mut xb = vec![0.0; a_mat.nrows()];
        let ob = bicg(&a, &b, &mut xb, &IdentityPrecond, &opts);
        let mut xc = vec![0.0; a_mat.nrows()];
        let oc = crate::cg::cg(&a, &b, &mut xc, &IdentityPrecond, &opts);
        assert!(ob.converged && oc.converged);
        // Same Krylov space on symmetric A: iterates coincide.
        for (p, q) in xb.iter().zip(&xc) {
            assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }
}
