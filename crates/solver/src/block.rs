//! Block-Krylov solvers over any [`SparseLinOp`]: block Conjugate Gradient
//! (O'Leary 1980) and batched multi-RHS BiCGSTAB.
//!
//! These are the consumers that justify the SpMM layer: a solve with `k`
//! right-hand sides calls the sparse operator on all `k` vectors at once, so
//! the matrix stream — the dominant cost for MB-bound matrices — is paid
//! once per iteration instead of `k` times. Block CG additionally shares one
//! Krylov space across the right-hand sides: because the block space
//! contains every column's individual space, it converges in at most as
//! many iterations as the slowest single-vector solve (the iteration-budget
//! regression in `tests/solver_kernels.rs` pins this down).

use crate::precond::Preconditioner;
use crate::SolverOptions;
use sparseopt_core::kernels::SparseLinOp;
use sparseopt_core::multivec::MultiVec;

/// Result of a block (multi-RHS) solve.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockSolveOutcome {
    /// True when every column met the tolerance.
    pub converged: bool,
    /// Iterations performed (shared across columns).
    pub iterations: usize,
    /// Largest per-column relative residual at exit.
    pub max_relative_residual: f64,
    /// Per-column relative residuals at exit.
    pub column_residuals: Vec<f64>,
    /// SpMM invocations — each one streams the matrix exactly once, the
    /// quantity the amortization analysis counts.
    pub spmm_calls: usize,
    /// True when the method broke down numerically on any column.
    pub breakdown: bool,
}

impl BlockSolveOutcome {
    fn new(
        converged: bool,
        iterations: usize,
        column_residuals: Vec<f64>,
        spmm_calls: usize,
        breakdown: bool,
    ) -> Self {
        let max_relative_residual = column_residuals.iter().copied().fold(0.0, f64::max);
        Self {
            converged,
            iterations,
            max_relative_residual,
            column_residuals,
            spmm_calls,
            breakdown,
        }
    }
}

/// Per-column relative residuals `‖r_j‖ / ‖b_j‖`.
fn relative_residuals(r: &MultiVec, bnorms: &[f64]) -> Vec<f64> {
    r.column_norms()
        .iter()
        .zip(bnorms)
        .map(|(rn, bn)| rn / bn)
        .collect()
}

/// Gram matrix `AᵀB` (`k × k`, row-major) of two `n × k` multi-vectors.
fn gram(a: &MultiVec, b: &MultiVec) -> Vec<f64> {
    let k = a.width();
    let mut g = vec![0.0f64; k * k];
    for i in 0..a.nrows() {
        let ar = a.row(i);
        let br = b.row(i);
        for (p, &av) in ar.iter().enumerate() {
            for (q, &bv) in br.iter().enumerate() {
                g[p * k + q] += av * bv;
            }
        }
    }
    g
}

/// Solves the `k × k` system `G · M = Rhs` in place by Gauss–Jordan with
/// partial pivoting; `rhs` holds `M` on success. Returns `false` when `G` is
/// numerically singular (block breakdown).
fn solve_small(k: usize, g: &mut [f64], rhs: &mut [f64]) -> bool {
    let scale = g.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if scale == 0.0 {
        return false;
    }
    for col in 0..k {
        let mut piv = col;
        for row in col + 1..k {
            if g[row * k + col].abs() > g[piv * k + col].abs() {
                piv = row;
            }
        }
        let p = g[piv * k + col];
        if p.abs() < 1e-300 || p.abs() < 1e-14 * scale {
            return false;
        }
        if piv != col {
            for q in 0..k {
                g.swap(col * k + q, piv * k + q);
                rhs.swap(col * k + q, piv * k + q);
            }
        }
        let d = g[col * k + col];
        for q in 0..k {
            g[col * k + q] /= d;
            rhs[col * k + q] /= d;
        }
        for row in 0..k {
            if row == col {
                continue;
            }
            let f = g[row * k + col];
            if f == 0.0 {
                continue;
            }
            for q in 0..k {
                g[row * k + q] -= f * g[col * k + q];
                rhs[row * k + q] -= f * rhs[col * k + q];
            }
        }
    }
    true
}

/// `Y ← Y + sign · P·M` for a `k × k` row-major `M` (row-wise 1×k by k×k
/// products, so the update streams both multi-vectors once).
fn add_product(y: &mut MultiVec, p: &MultiVec, m: &[f64], sign: f64) {
    let k = y.width();
    for i in 0..y.nrows() {
        let pr = p.row(i);
        let yr = y.row_mut(i);
        for (q, yv) in yr.iter_mut().enumerate() {
            let mut s = 0.0;
            for (pi, &pv) in pr.iter().enumerate() {
                s += pv * m[pi * k + q];
            }
            *yv += sign * s;
        }
    }
}

/// `P ← Z + P·B` (the block CG direction update).
fn direction_update(p: &mut MultiVec, z: &MultiVec, beta: &[f64]) {
    let k = p.width();
    let mut tmp = vec![0.0f64; k];
    for i in 0..p.nrows() {
        let zr = z.row(i);
        let pr = p.row_mut(i);
        for (q, t) in tmp.iter_mut().enumerate() {
            let mut s = zr[q];
            for (pi, &pv) in pr.iter().enumerate() {
                s += pv * beta[pi * k + q];
            }
            *t = s;
        }
        pr.copy_from_slice(&tmp);
    }
}

/// Solves `A X = B` for symmetric positive definite `A` via preconditioned
/// block Conjugate Gradient (O'Leary). `x` holds the initial guess on entry
/// and the solution on exit; every iteration costs exactly one SpMM.
///
/// Converges when **every** column satisfies `‖r_j‖ / ‖b_j‖ ≤ opts.tol`.
/// Breakdown (rank-deficient direction block, e.g. two identical columns of
/// `B`) is reported rather than repaired — callers wanting deflation should
/// perturb or drop dependent right-hand sides.
///
/// # Panics
/// Panics if the operator is not square or block shapes disagree.
pub fn block_cg(
    a: &dyn SparseLinOp,
    b: &MultiVec,
    x: &mut MultiVec,
    precond: &dyn Preconditioner,
    opts: &SolverOptions,
) -> BlockSolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "block CG needs a square operator");
    assert_eq!(b.nrows(), nrows, "b row count mismatch");
    assert_eq!(x.nrows(), nrows, "x row count mismatch");
    assert_eq!(b.width(), x.width(), "b/x width mismatch");
    let k = b.width();

    let bnorms: Vec<f64> = b
        .column_norms()
        .iter()
        .map(|&n| n.max(f64::MIN_POSITIVE))
        .collect();

    // R = B − A·X.
    let mut r = b.clone();
    let mut q = MultiVec::zeros(nrows, k);
    a.spmm(x, &mut q);
    for (rv, &qv) in r.as_mut_slice().iter_mut().zip(q.as_slice()) {
        *rv -= qv;
    }
    let mut spmm_calls = 1usize;

    let mut z = MultiVec::zeros(nrows, k);
    precond.apply_multi(&r, &mut z);
    let mut p = z.clone();
    // S = RᵀZ (symmetric for an SPD preconditioner).
    let mut s = gram(&r, &z);

    for iter in 0..opts.max_iters {
        let rels = relative_residuals(&r, &bnorms);
        if rels.iter().all(|&rel| rel <= opts.tol) {
            return BlockSolveOutcome::new(true, iter, rels, spmm_calls, false);
        }

        // Q = A·P — the one matrix stream of the iteration.
        a.spmm(&p, &mut q);
        spmm_calls += 1;

        // α = (PᵀQ)⁻¹ S.
        let mut pq = gram(&p, &q);
        let mut alpha = s.clone();
        if !solve_small(k, &mut pq, &mut alpha) {
            return BlockSolveOutcome::new(false, iter, rels, spmm_calls, true);
        }

        add_product(x, &p, &alpha, 1.0); // X += P α
        add_product(&mut r, &q, &alpha, -1.0); // R −= Q α

        precond.apply_multi(&r, &mut z);
        let s_next = gram(&r, &z);

        // β = S⁻¹ S_next.
        let mut s_copy = s.clone();
        let mut beta = s_next.clone();
        if !solve_small(k, &mut s_copy, &mut beta) {
            return BlockSolveOutcome::new(false, iter, rels, spmm_calls, true);
        }
        direction_update(&mut p, &z, &beta); // P = Z + P β
        s = s_next;
    }
    let rels = relative_residuals(&r, &bnorms);
    let done = rels.iter().all(|&rel| rel <= opts.tol);
    BlockSolveOutcome::new(done, opts.max_iters, rels, spmm_calls, false)
}

/// Per-column solver state of the batched BiCGSTAB driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ColumnState {
    Active,
    Converged,
    Broken,
}

/// Strided dot product of column `j` of two multi-vectors.
fn col_dot(a: &MultiVec, b: &MultiVec, j: usize) -> f64 {
    let k = a.width();
    a.as_slice()
        .iter()
        .skip(j)
        .step_by(k)
        .zip(b.as_slice().iter().skip(j).step_by(k))
        .map(|(&x, &y)| x * y)
        .sum()
}

/// Euclidean norm of column `j`.
fn col_norm(a: &MultiVec, j: usize) -> f64 {
    col_dot(a, a, j).sqrt()
}

/// Solves `A X = B` for general (nonsymmetric) `A` by running one BiCGSTAB
/// recurrence per column with **batched** operator applications: each
/// iteration performs exactly two SpMM calls covering all still-active
/// columns, so the matrix stream is shared even though the per-column
/// scalars (`ρ`, `α`, `ω`) evolve independently. Columns that converge or
/// break down are frozen; the iteration ends when none remain active.
///
/// # Panics
/// Panics if the operator is not square or block shapes disagree.
pub fn bicgstab_multi(
    a: &dyn SparseLinOp,
    b: &MultiVec,
    x: &mut MultiVec,
    precond: &dyn Preconditioner,
    opts: &SolverOptions,
) -> BlockSolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "BiCGSTAB needs a square operator");
    assert_eq!(b.nrows(), nrows, "b row count mismatch");
    assert_eq!(x.nrows(), nrows, "x row count mismatch");
    assert_eq!(b.width(), x.width(), "b/x width mismatch");
    let k = b.width();

    let bnorms: Vec<f64> = b
        .column_norms()
        .iter()
        .map(|&n| n.max(f64::MIN_POSITIVE))
        .collect();

    let mut r = b.clone();
    let mut tmp = MultiVec::zeros(nrows, k);
    a.spmm(x, &mut tmp);
    for (rv, &tv) in r.as_mut_slice().iter_mut().zip(tmp.as_slice()) {
        *rv -= tv;
    }
    let r0 = r.clone(); // shadow residual block
    let mut spmm_calls = 1usize;

    let mut rho = vec![1.0f64; k];
    let mut alpha = vec![1.0f64; k];
    let mut omega = vec![1.0f64; k];
    let mut state = vec![ColumnState::Active; k];

    let mut v = MultiVec::zeros(nrows, k);
    let mut p = MultiVec::zeros(nrows, k);
    let mut phat = MultiVec::zeros(nrows, k);
    let mut shat = MultiVec::zeros(nrows, k);
    let mut t = MultiVec::zeros(nrows, k);

    let mut iterations = 0usize;
    for iter in 0..opts.max_iters {
        for j in 0..k {
            if state[j] == ColumnState::Active && col_norm(&r, j) / bnorms[j] <= opts.tol {
                state[j] = ColumnState::Converged;
            }
        }
        if state.iter().all(|&s| s != ColumnState::Active) {
            iterations = iter;
            break;
        }
        iterations = iter + 1;

        for j in 0..k {
            if state[j] != ColumnState::Active {
                continue;
            }
            let rho_next = col_dot(&r0, &r, j);
            if rho_next.abs() < 1e-300 {
                state[j] = ColumnState::Broken;
                continue;
            }
            let beta = (rho_next / rho[j]) * (alpha[j] / omega[j]);
            rho[j] = rho_next;
            // p_j = r_j + β (p_j − ω_j v_j), strided over column j.
            for i in 0..nrows {
                let pv = p.row(i)[j];
                let vv = v.row(i)[j];
                let rv = r.row(i)[j];
                p.row_mut(i)[j] = rv + beta * (pv - omega[j] * vv);
            }
        }

        precond.apply_multi(&p, &mut phat);
        a.spmm(&phat, &mut v); // V = A·P̂, batched
        spmm_calls += 1;

        // Columns that pass the s-shortcut this round skip the second half.
        let mut halfway_done = vec![false; k];
        for j in 0..k {
            if state[j] != ColumnState::Active {
                continue;
            }
            let r0v = col_dot(&r0, &v, j);
            if r0v.abs() < 1e-300 {
                state[j] = ColumnState::Broken;
                continue;
            }
            alpha[j] = rho[j] / r0v;
            // s_j = r_j − α_j v_j (reuse r as s).
            for i in 0..nrows {
                let vv = v.row(i)[j];
                r.row_mut(i)[j] -= alpha[j] * vv;
            }
            if col_norm(&r, j) / bnorms[j] <= opts.tol {
                for i in 0..nrows {
                    let pv = phat.row(i)[j];
                    x.row_mut(i)[j] += alpha[j] * pv;
                }
                state[j] = ColumnState::Converged;
                halfway_done[j] = true;
            }
        }

        // Skip the second operator application when the s-shortcut (or a
        // breakdown) retired every remaining column this round.
        if !state
            .iter()
            .zip(&halfway_done)
            .any(|(&s, &h)| s == ColumnState::Active && !h)
        {
            continue;
        }
        precond.apply_multi(&r, &mut shat);
        a.spmm(&shat, &mut t); // T = A·Ŝ, batched
        spmm_calls += 1;

        for j in 0..k {
            if state[j] != ColumnState::Active || halfway_done[j] {
                continue;
            }
            let tt = col_dot(&t, &t, j);
            if tt.abs() < 1e-300 {
                state[j] = ColumnState::Broken;
                continue;
            }
            omega[j] = col_dot(&t, &r, j) / tt;
            // x_j += α_j p̂_j + ω_j ŝ_j ; r_j = s_j − ω_j t_j.
            for i in 0..nrows {
                let pv = phat.row(i)[j];
                let sv = shat.row(i)[j];
                x.row_mut(i)[j] += alpha[j] * pv + omega[j] * sv;
            }
            for i in 0..nrows {
                let tv = t.row(i)[j];
                r.row_mut(i)[j] -= omega[j] * tv;
            }
            if omega[j].abs() < 1e-300 {
                state[j] = ColumnState::Broken;
            }
        }
    }

    let rels = relative_residuals(&r, &bnorms);
    let converged = state.iter().all(|&s| s == ColumnState::Converged);
    let breakdown = state.contains(&ColumnState::Broken);
    BlockSolveOutcome::new(converged, iterations, rels, spmm_calls, breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sparseopt_core::prelude::*;
    use sparseopt_matrix::generators as g;
    use std::sync::Arc;

    fn poisson(nx: usize, ny: usize) -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_coo(&g::poisson2d(nx, ny)))
    }

    fn rhs_block(n: usize, k: usize) -> MultiVec {
        MultiVec::from_fn(n, k, |i, j| {
            ((i * 31 + j * 17 + 7) % 23) as f64 / 11.0 - 1.0
        })
    }

    #[test]
    fn solve_small_matches_hand_inverse() {
        // G = [[2, 0], [1, 1]], Rhs = I ⇒ M = G⁻¹ = [[0.5, 0], [-0.5, 1]].
        let mut grm = vec![2.0, 0.0, 1.0, 1.0];
        let mut rhs = vec![1.0, 0.0, 0.0, 1.0];
        assert!(solve_small(2, &mut grm, &mut rhs));
        let want = [0.5, 0.0, -0.5, 1.0];
        for (a, b) in rhs.iter().zip(&want) {
            assert!((a - b).abs() < 1e-14, "{rhs:?}");
        }
    }

    #[test]
    fn solve_small_detects_singularity() {
        let mut grm = vec![1.0, 2.0, 2.0, 4.0]; // rank 1
        let mut rhs = vec![1.0, 0.0, 0.0, 1.0];
        assert!(!solve_small(2, &mut grm, &mut rhs));
    }

    #[test]
    fn block_cg_solves_spd_system() {
        let a = poisson(16, 16);
        let n = a.nrows();
        let kernel = ParallelCsr::baseline(a.clone(), ExecCtx::new(2));
        let b = rhs_block(n, 4);
        let mut x = MultiVec::zeros(n, 4);
        let out = block_cg(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-9,
                max_iters: 500,
            },
        );
        assert!(out.converged, "{out:?}");
        assert!(!out.breakdown);
        // True residual check per column.
        let mut ax = MultiVec::zeros(n, 4);
        kernel.spmm(&x, &mut ax);
        for j in 0..4 {
            let res: f64 = (0..n)
                .map(|i| (b.row(i)[j] - ax.row(i)[j]).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "column {j} true residual {res}");
        }
    }

    #[test]
    fn block_cg_matches_sequential_cg() {
        let a = poisson(12, 12);
        let n = a.nrows();
        let ctx = ExecCtx::new(2);
        let spmm = ParallelCsr::baseline(a.clone(), ctx.clone());
        let spmv = SerialCsr::new(a.clone());
        let opts = SolverOptions {
            tol: 1e-10,
            max_iters: 1000,
        };
        let b = rhs_block(n, 3);
        let mut xb = MultiVec::zeros(n, 3);
        let out = block_cg(
            &spmm,
            &b,
            &mut xb,
            &JacobiPrecond::new(&a).expect("zero-free diagonal"),
            &opts,
        );
        assert!(out.converged, "{out:?}");

        for j in 0..3 {
            let bj = b.column(j);
            let mut xj = vec![0.0; n];
            let single = cg(
                &spmv,
                &bj,
                &mut xj,
                &JacobiPrecond::new(&a).expect("zero-free diagonal"),
                &opts,
            );
            assert!(single.converged);
            for (p, q) in xb.column(j).iter().zip(&xj) {
                assert!((p - q).abs() < 1e-6, "column {j}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn block_cg_reports_breakdown_on_duplicate_rhs() {
        // Two identical columns make the direction block rank-deficient.
        let a = poisson(8, 8);
        let n = a.nrows();
        let kernel = ParallelCsr::baseline(a.clone(), ExecCtx::new(1));
        let col: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = MultiVec::from_columns(&[col.clone(), col]);
        let mut x = MultiVec::zeros(n, 2);
        let out = block_cg(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 200,
            },
        );
        assert!(out.breakdown, "{out:?}");
    }

    #[test]
    fn bicgstab_multi_solves_nonsymmetric_block() {
        let n = 300;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.5);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -0.5);
            }
        }
        let a = Arc::new(CsrMatrix::from_coo(&coo));
        let kernel = ParallelCsr::baseline(a.clone(), ExecCtx::new(2));
        let b = rhs_block(n, 5);
        let mut x = MultiVec::zeros(n, 5);
        let out = bicgstab_multi(
            &kernel,
            &b,
            &mut x,
            &JacobiPrecond::new(&a).expect("zero-free diagonal"),
            &SolverOptions {
                tol: 1e-10,
                max_iters: 400,
            },
        );
        assert!(out.converged, "{out:?}");
        let mut ax = MultiVec::zeros(n, 5);
        kernel.spmm(&x, &mut ax);
        for j in 0..5 {
            let res: f64 = (0..n)
                .map(|i| (b.row(i)[j] - ax.row(i)[j]).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-7, "column {j} true residual {res}");
        }
    }

    #[test]
    fn bicgstab_multi_uses_two_spmm_per_iteration() {
        let a = poisson(10, 10);
        let kernel = ParallelCsr::baseline(a.clone(), ExecCtx::new(1));
        let n = a.nrows();
        let b = rhs_block(n, 3);
        let mut x = MultiVec::zeros(n, 3);
        let out = bicgstab_multi(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-8,
                max_iters: 300,
            },
        );
        assert!(out.converged, "{out:?}");
        assert!(out.spmm_calls <= 2 * out.iterations + 1, "{out:?}");
    }
}
