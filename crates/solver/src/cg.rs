//! Preconditioned Conjugate Gradient — the canonical SpMV consumer the paper
//! frames its amortization analysis around.

use crate::blas::{axpy, dot, norm2, xpby};
use crate::precond::Preconditioner;
use crate::{SolveOutcome, SolverOptions};
use sparseopt_core::kernels::SparseLinOp;

/// Solves `A x = b` for symmetric positive definite `A` via preconditioned
/// CG. `x` holds the initial guess on entry and the solution on exit.
///
/// # Panics
/// Panics if the operator is not square or vector lengths disagree.
pub fn cg(
    a: &dyn SparseLinOp,
    b: &[f64],
    x: &mut [f64],
    precond: &dyn Preconditioner,
    opts: &SolverOptions,
) -> SolveOutcome {
    let (nrows, ncols) = a.shape();
    assert_eq!(nrows, ncols, "CG needs a square operator");
    assert_eq!(b.len(), nrows, "b length mismatch");
    assert_eq!(x.len(), nrows, "x length mismatch");
    let n = nrows;

    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    a.spmv(x, &mut ax);
    for i in 0..n {
        r[i] = b[i] - ax[i];
    }

    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut spmv_calls = 1usize;

    for iter in 0..opts.max_iters {
        let rel = norm2(&r) / bnorm;
        if rel <= opts.tol {
            return SolveOutcome::converged(iter, rel, spmv_calls);
        }
        a.spmv(&p, &mut ax);
        spmv_calls += 1;
        let pap = dot(&p, &ax);
        if pap <= 0.0 {
            // Not SPD (or numerical breakdown).
            return SolveOutcome::broke_down(iter, rel, spmv_calls);
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ax, &mut r);

        precond.apply(&r, &mut z);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        xpby(&z, beta, &mut p);
    }
    SolveOutcome::not_converged(opts.max_iters, norm2(&r) / bnorm, spmv_calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sparseopt_core::prelude::*;
    use sparseopt_matrix::generators as g;
    use std::sync::Arc;

    fn poisson(nx: usize, ny: usize) -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_coo(&g::poisson2d(nx, ny)))
    }

    #[test]
    fn solves_poisson_to_tolerance() {
        let a = poisson(20, 20);
        let kernel = SerialCsr::new(a.clone());
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let out = cg(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-8,
                max_iters: 1000,
            },
        );
        assert!(out.converged, "CG must converge on SPD Poisson: {out:?}");

        // Residual check: ‖b − A x‖ / ‖b‖ ≤ tol (loosened slightly for
        // floating-point recomputation).
        let mut ax = vec![0.0; n];
        kernel.spmv(&x, &mut ax);
        let res: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            .sqrt();
        assert!(res / (n as f64).sqrt() < 1e-7, "true residual {res}");
    }

    #[test]
    fn jacobi_reduces_iterations() {
        let a = poisson(24, 24);
        let kernel = SerialCsr::new(a.clone());
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = SolverOptions {
            tol: 1e-8,
            max_iters: 2000,
        };

        let mut x0 = vec![0.0; n];
        let plain = cg(&kernel, &b, &mut x0, &IdentityPrecond, &opts);
        let mut x1 = vec![0.0; n];
        let pre = cg(
            &kernel,
            &b,
            &mut x1,
            &JacobiPrecond::new(&a).expect("zero-free diagonal"),
            &opts,
        );
        assert!(plain.converged && pre.converged);
        // Poisson has constant diagonal so Jacobi ≈ identity in iterations;
        // it must at least not diverge or get dramatically worse.
        assert!(pre.iterations <= plain.iterations + 2);
    }

    #[test]
    fn works_with_parallel_kernels() {
        let a = poisson(16, 16);
        let kernel = ParallelCsr::baseline(a.clone(), ExecCtx::new(2));
        let n = a.nrows();
        let b = vec![0.5; n];
        let mut x = vec![0.0; n];
        let out = cg(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-9,
                max_iters: 1000,
            },
        );
        assert!(out.converged);
        assert!(out.spmv_calls >= out.iterations);
    }

    #[test]
    fn symmetric_storage_operator_solves_identically() {
        // CG is *the* consumer of the SSS format: symmetric systems are
        // what it solves, and every iteration streams half the matrix
        // bytes. The solution must match the full-CSR operator's exactly
        // (same Krylov trajectory up to floating-point noise).
        let a = poisson(24, 24);
        let sss = Arc::new(SssCsr::try_from_csr(&a).expect("Poisson is symmetric"));
        assert!(sss.footprint_bytes() < a.footprint_bytes());
        let sym = SymCsr::baseline(sss, ExecCtx::new(3));
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let opts = SolverOptions {
            tol: 1e-9,
            max_iters: 2000,
        };

        let mut x_sym = vec![0.0; n];
        let out_sym = cg(&sym, &b, &mut x_sym, &IdentityPrecond, &opts);
        assert!(
            out_sym.converged,
            "CG over SymCsr must converge: {out_sym:?}"
        );

        let mut x_csr = vec![0.0; n];
        let out_csr = cg(
            &SerialCsr::new(a.clone()),
            &b,
            &mut x_csr,
            &IdentityPrecond,
            &opts,
        );
        assert!(out_csr.converged);
        assert!(
            out_sym.iterations <= out_csr.iterations + 2,
            "same operator, same trajectory: {} vs {}",
            out_sym.iterations,
            out_csr.iterations
        );
        for (i, (p, q)) in x_sym.iter().zip(&x_csr).enumerate() {
            assert!((p - q).abs() < 1e-6 * (1.0 + q.abs()), "x[{i}]: {p} vs {q}");
        }
    }

    #[test]
    fn reports_nonconvergence() {
        let a = poisson(16, 16);
        let kernel = SerialCsr::new(a.clone());
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let out = cg(
            &kernel,
            &b,
            &mut x,
            &IdentityPrecond,
            &SolverOptions {
                tol: 1e-14,
                max_iters: 3,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
    }
}
