//! Preconditioners. The paper motivates the lightweight optimizer with
//! "preconditioned solvers \[where\] the number of iterations may be
//! significantly smaller" (Section IV-D). The layer now spans the full
//! cost/strength spectrum: identity (free), Jacobi (one diagonal scale),
//! symmetric Gauss-Seidel ([`SymGsPrecond`], one SymGS sweep over SSS
//! storage), and the incomplete factorizations IC(0)/ILU(0) in
//! [`crate::factor`] (two triangular solves per application).

use sparseopt_core::csr::CsrMatrix;
use sparseopt_core::kernels::{SymGsError, SymGsKernel};
use sparseopt_core::multivec::MultiVec;
use sparseopt_core::sss::SssCsr;
use std::sync::Arc;

/// Why a preconditioner could not be built from the given matrix.
///
/// Returning this instead of panicking lets a serving path degrade — e.g. to
/// [`IdentityPrecond`] — when a matrix violates a preconditioner's
/// assumptions, instead of crashing the solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecondError {
    /// The preconditioner divides by a diagonal entry and row `row`'s is
    /// exactly zero (or absent).
    ZeroDiagonal {
        /// Offending row.
        row: usize,
    },
    /// An incomplete Cholesky pivot came out non-positive: the matrix is not
    /// positive definite (or IC(0)'s dropped fill made it effectively so).
    NotPositiveDefinite {
        /// Row of the failing pivot.
        row: usize,
    },
    /// A symmetry-requiring preconditioner was handed a structurally or
    /// numerically unsymmetric matrix.
    NotSymmetric,
}

impl std::fmt::Display for PrecondError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecondError::ZeroDiagonal { row } => {
                write!(f, "row {row} has a zero diagonal entry")
            }
            PrecondError::NotPositiveDefinite { row } => {
                write!(
                    f,
                    "non-positive pivot at row {row}: matrix is not positive definite"
                )
            }
            PrecondError::NotSymmetric => write!(f, "matrix is not symmetric"),
        }
    }
}

impl std::error::Error for PrecondError {}

impl From<SymGsError> for PrecondError {
    fn from(e: SymGsError) -> Self {
        match e {
            SymGsError::ZeroDiagonal { row } => PrecondError::ZeroDiagonal { row },
        }
    }
}

/// A left preconditioner `M⁻¹` applied as `z = M⁻¹ r`.
pub trait Preconditioner: Send + Sync {
    /// Applies `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Applies `Z ← M⁻¹ R` column by column — the block-Krylov drivers'
    /// entry point. The default gathers each column into one scratch pair
    /// reused across columns (no per-column allocation), applies
    /// [`Self::apply`], and scatters the result; implementations with
    /// row-local structure (e.g. Jacobi) or a native multi-vector path
    /// (the triangular-solve preconditioners) override it.
    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.nrows(), z.nrows(), "row count mismatch");
        assert_eq!(r.width(), z.width(), "width mismatch");
        let n = r.nrows();
        let k = r.width();
        let data = r.as_slice();
        let mut rc = vec![0.0; n];
        let mut zc = vec![0.0; n];
        for j in 0..k {
            for (i, ri) in rc.iter_mut().enumerate() {
                *ri = data[i * k + j];
            }
            self.apply(&rc, &mut zc);
            z.set_column(j, &zc);
        }
    }

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The identity preconditioner (unpreconditioned solve).
#[derive(Default, Clone, Copy, Debug)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = r_i / a_ii`.
#[derive(Clone, Debug)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from the matrix diagonal (duplicate diagonal entries summed).
    ///
    /// # Errors
    /// [`PrecondError::ZeroDiagonal`] if any diagonal entry is exactly zero
    /// — callers on a serving path can degrade to [`IdentityPrecond`]
    /// instead of crashing.
    pub fn new(csr: &CsrMatrix) -> Result<Self, PrecondError> {
        let diag = csr.diagonal();
        if let Some(row) = diag.iter().position(|&d| d == 0.0) {
            return Err(PrecondError::ZeroDiagonal { row });
        }
        Ok(Self {
            inv_diag: diag.iter().map(|&d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "dimension mismatch");
        for ((zi, &ri), &mi) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * mi;
        }
    }

    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.nrows(), self.inv_diag.len(), "dimension mismatch");
        assert_eq!(r.nrows(), z.nrows(), "row count mismatch");
        assert_eq!(r.width(), z.width(), "width mismatch");
        // Diagonal scaling is row-local: one unit-stride pass, no column
        // gather/scatter.
        for (i, &mi) in self.inv_diag.iter().enumerate() {
            for (zv, &rv) in z.row_mut(i).iter_mut().zip(r.row(i)) {
                *zv = rv * mi;
            }
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Symmetric Gauss-Seidel preconditioner `M = (L + D) D⁻¹ (D + Lᵀ)` over
/// symmetric sparse skyline storage — one allocation-free application is a
/// forward solve, a diagonal scale, and an in-place backward solve, reading
/// the stored lower triangle twice (the same traffic halving
/// `sparseopt_core::kernels::SymCsr` gets for SpMV).
///
/// Stronger than Jacobi whenever off-diagonal coupling matters (Jacobi *is*
/// the `D`-only degenerate case), at ~2 triangle sweeps per application; one
/// application equals one symmetric Gauss-Seidel sweep from a zero initial
/// guess.
pub struct SymGsPrecond {
    kernel: SymGsKernel,
}

impl SymGsPrecond {
    /// Builds over an already-constructed SSS matrix.
    ///
    /// # Errors
    /// [`PrecondError::ZeroDiagonal`] when a Gauss-Seidel sweep would divide
    /// by zero.
    pub fn new(sss: Arc<SssCsr>) -> Result<Self, PrecondError> {
        Ok(Self {
            kernel: SymGsKernel::try_new(sss)?,
        })
    }

    /// Builds from a general CSR matrix, verifying symmetry on the way.
    ///
    /// # Errors
    /// [`PrecondError::NotSymmetric`] for unsymmetric input,
    /// [`PrecondError::ZeroDiagonal`] for a zero diagonal entry.
    pub fn from_csr(csr: &CsrMatrix) -> Result<Self, PrecondError> {
        let sss = SssCsr::try_from_csr(csr).ok_or(PrecondError::NotSymmetric)?;
        Self::new(Arc::new(sss))
    }
}

impl Preconditioner for SymGsPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        // z ← (D + Lᵀ)⁻¹ D (L + D)⁻¹ r, all in the caller's buffer.
        self.kernel.forward_solve(r, z);
        for (zi, di) in z.iter_mut().zip(self.kernel.matrix().diag()) {
            *zi *= di;
        }
        self.kernel.backward_solve_in_place(z);
    }

    fn name(&self) -> &'static str {
        "symgs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::coo::CooMatrix;

    #[test]
    fn identity_copies() {
        let r = [1.0, -2.0];
        let mut z = [0.0; 2];
        IdentityPrecond.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 4.0);
        coo.push(0, 1, 9.0);
        let m = CsrMatrix::from_coo(&coo);
        let p = JacobiPrecond::new(&m).expect("zero-free diagonal");
        let mut z = [0.0; 2];
        p.apply(&[2.0, 2.0], &mut z);
        assert_eq!(z, [1.0, 0.5]);
    }

    #[test]
    fn jacobi_rejects_zero_diagonal_gracefully() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        let m = CsrMatrix::from_coo(&coo);
        // Row 1 has no diagonal entry: an error, not a panic, so a serving
        // path can fall back to the identity.
        assert_eq!(
            JacobiPrecond::new(&m).err(),
            Some(PrecondError::ZeroDiagonal { row: 1 })
        );
    }

    /// A preconditioner that deliberately does NOT override `apply_multi`,
    /// to exercise the default gather/scatter path.
    struct ScaleByIndex;

    impl Preconditioner for ScaleByIndex {
        fn apply(&self, r: &[f64], z: &mut [f64]) {
            for (i, (zi, &ri)) in z.iter_mut().zip(r).enumerate() {
                *zi = ri * (i + 1) as f64;
            }
        }
        fn name(&self) -> &'static str {
            "scale-by-index"
        }
    }

    #[test]
    fn default_apply_multi_matches_per_column_apply() {
        let n = 7;
        let k = 3;
        let r = MultiVec::from_fn(n, k, |i, j| (i * 10 + j) as f64 - 8.0);
        let mut z = MultiVec::zeros(n, k);
        ScaleByIndex.apply_multi(&r, &mut z);
        for j in 0..k {
            let mut want = vec![0.0; n];
            ScaleByIndex.apply(&r.column(j), &mut want);
            assert_eq!(z.column(j), want, "column {j}");
        }
    }

    #[test]
    fn symgs_apply_equals_one_sweep_from_zero() {
        // SPD band, symmetric by construction.
        let n = 24;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
                coo.push(i - 1, i, -1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let p = SymGsPrecond::from_csr(&csr).expect("symmetric SPD band");
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut z = vec![0.0; n];
        p.apply(&b, &mut z);

        let sss = Arc::new(SssCsr::try_from_csr(&csr).unwrap());
        let kernel = SymGsKernel::try_new(sss).unwrap();
        let mut want = vec![0.0; n];
        let mut scratch = Vec::new();
        kernel.sweep(&b, &mut want, &mut scratch);
        for (i, (a, w)) in z.iter().zip(&want).enumerate() {
            assert!(
                (a - w).abs() < 1e-13 * (1.0 + w.abs()),
                "row {i}: {a} vs {w}"
            );
        }
    }

    #[test]
    fn symgs_rejects_unsymmetric_input() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(0, 1, 3.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(
            SymGsPrecond::from_csr(&m).err(),
            Some(PrecondError::NotSymmetric)
        );
    }
}
