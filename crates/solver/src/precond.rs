//! Preconditioners. The paper motivates the lightweight optimizer with
//! "preconditioned solvers \[where\] the number of iterations may be
//! significantly smaller" (Section IV-D); Jacobi is the representative
//! preconditioner here.

use sparseopt_core::csr::CsrMatrix;
use sparseopt_core::multivec::MultiVec;

/// A left preconditioner `M⁻¹` applied as `z = M⁻¹ r`.
pub trait Preconditioner: Send + Sync {
    /// Applies `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Applies `Z ← M⁻¹ R` column by column — the block-Krylov drivers'
    /// entry point. The default gathers each column, applies [`Self::apply`],
    /// and scatters the result; implementations with row-local structure
    /// (e.g. Jacobi) may override with a single strided pass.
    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.nrows(), z.nrows(), "row count mismatch");
        assert_eq!(r.width(), z.width(), "width mismatch");
        let mut zc = vec![0.0; r.nrows()];
        for j in 0..r.width() {
            let rc = r.column(j);
            self.apply(&rc, &mut zc);
            z.set_column(j, &zc);
        }
    }

    /// Display name.
    fn name(&self) -> &'static str;
}

/// The identity preconditioner (unpreconditioned solve).
#[derive(Default, Clone, Copy, Debug)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = r_i / a_ii`.
#[derive(Clone, Debug)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from the matrix diagonal.
    ///
    /// # Panics
    /// Panics if any diagonal entry is exactly zero.
    pub fn new(csr: &CsrMatrix) -> Self {
        let diag = csr.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "Jacobi preconditioner requires a zero-free diagonal"
        );
        Self {
            inv_diag: diag.iter().map(|&d| 1.0 / d).collect(),
        }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "dimension mismatch");
        for ((zi, &ri), &mi) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * mi;
        }
    }

    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.nrows(), self.inv_diag.len(), "dimension mismatch");
        assert_eq!(r.nrows(), z.nrows(), "row count mismatch");
        assert_eq!(r.width(), z.width(), "width mismatch");
        // Diagonal scaling is row-local: one unit-stride pass, no column
        // gather/scatter.
        for (i, &mi) in self.inv_diag.iter().enumerate() {
            for (zv, &rv) in z.row_mut(i).iter_mut().zip(r.row(i)) {
                *zv = rv * mi;
            }
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::coo::CooMatrix;

    #[test]
    fn identity_copies() {
        let r = [1.0, -2.0];
        let mut z = [0.0; 2];
        IdentityPrecond.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 4.0);
        coo.push(0, 1, 9.0);
        let m = CsrMatrix::from_coo(&coo);
        let p = JacobiPrecond::new(&m);
        let mut z = [0.0; 2];
        p.apply(&[2.0, 2.0], &mut z);
        assert_eq!(z, [1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "zero-free diagonal")]
    fn jacobi_rejects_zero_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        let m = CsrMatrix::from_coo(&coo);
        JacobiPrecond::new(&m);
    }
}
