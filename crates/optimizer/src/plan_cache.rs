//! The persistent plan cache — tuned winners, keyed by structural
//! fingerprint, reused across processes.
//!
//! The cache is a small versioned JSON file (default
//! `~/.cache/sparseopt/plans.json`, overridable with the
//! `SPARSEOPT_PLAN_CACHE` environment variable or an explicit path). Each
//! entry records a [`MatrixFingerprint`](sparseopt_matrix::MatrixFingerprint)
//! key, the winning plan's serialized parts, and the *measured* costs the
//! tuner observed — setup time in baseline-SpMV equivalents plus per-apply
//! seconds for the winner and the scalar baseline — so a warm process can
//! skip measurement entirely *and* feed real numbers into the Table V
//! amortization analysis instead of the fixed per-plan charges.
//!
//! Robustness contract: a missing file is a clean cold start; a truncated,
//! version-mismatched, or hand-edited file **degrades to a cold start with
//! a warning** (returned to the caller, who logs it) — it must never panic
//! and never half-load. Writes go through a temp-file rename so a crashed
//! process cannot leave a torn file behind.
//!
//! The vendored `serde` is a no-op marker stand-in (see `vendor/README.md`),
//! so serialization is hand-rolled in the same line-oriented style as
//! `ci_bench`'s trajectory files — one entry per line, strict parsing.
//!
//! ```
//! use sparseopt_optimizer::plan_cache::{MeasuredCosts, PlanCache, PlanCacheEntry};
//! use sparseopt_optimizer::Optimization;
//! use sparseopt_core::prelude::InnerLoop;
//!
//! let mut cache = PlanCache::in_memory();
//! assert!(!cache.contains("v1:r11:z13:a8:d0:s0:p0"));
//! cache.insert(PlanCacheEntry {
//!     fingerprint: "v1:r11:z13:a8:d0:s0:p0".into(),
//!     optimizations: vec![Optimization::Vectorize],
//!     inner: InnerLoop::Simd,
//!     decompose_threshold: None,
//!     measured: MeasuredCosts {
//!         setup_spmv: 2.0,
//!         apply_secs: 1.0e-4,
//!         baseline_secs: 2.0e-4,
//!         gflops: 4.0,
//!     },
//! });
//! // A warm consumer replays the measured winner without re-tuning.
//! let entry = cache.get("v1:r11:z13:a8:d0:s0:p0").unwrap();
//! assert!(cache.contains("v1:r11:z13:a8:d0:s0:p0"));
//! assert_eq!(entry.to_plan().label(), "vectorize");
//! assert_eq!(entry.measured.gflops, 4.0);
//! ```

use crate::pool::{Optimization, OptimizationPlan};
use sparseopt_core::prelude::InnerLoop;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Cache file schema version. Bump on any layout change: a mismatched file
/// is discarded (with a warning), never reinterpreted.
pub const PLAN_CACHE_SCHEMA: u32 = 1;

/// Measured costs of a tuned plan, in the units the amortization analysis
/// consumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredCosts {
    /// Wall-clock setup (format conversion + operator construction) in
    /// baseline-SpMV equivalents — the measured replacement for the fixed
    /// per-plan conversion charges.
    pub setup_spmv: f64,
    /// Best-of-batches per-apply seconds of the winning operator.
    pub apply_secs: f64,
    /// Best-of-batches per-apply seconds of the scalar CSR baseline on the
    /// same matrix (the amortization reference and the tuner's budget unit).
    pub baseline_secs: f64,
    /// The winner's measured Gflop/s, for reports.
    pub gflops: f64,
}

/// One cached winner.
#[derive(Clone, Debug)]
pub struct PlanCacheEntry {
    /// Fingerprint key (see `MatrixFingerprint::key`).
    pub fingerprint: String,
    /// The winning plan's pool members.
    pub optimizations: Vec<Optimization>,
    /// Inner-loop flavor the winner ran with.
    pub inner: InnerLoop,
    /// Decomposition threshold, when the plan decomposes.
    pub decompose_threshold: Option<usize>,
    /// The measured costs backing the win.
    pub measured: MeasuredCosts,
}

impl PlanCacheEntry {
    /// Rebuilds the winning plan exactly as measured.
    pub fn to_plan(&self) -> OptimizationPlan {
        OptimizationPlan::from_saved(
            self.optimizations.clone(),
            self.inner,
            self.decompose_threshold,
        )
    }
}

/// The in-process cache handle. `path: None` keeps it purely in-memory
/// (tests, or callers managing persistence themselves).
pub struct PlanCache {
    entries: HashMap<String, PlanCacheEntry>,
    path: Option<PathBuf>,
}

impl PlanCache {
    /// An empty, never-persisted cache.
    pub fn in_memory() -> Self {
        Self {
            entries: HashMap::new(),
            path: None,
        }
    }

    /// Opens (or cold-starts) the cache at `path`. The second return is the
    /// load warning when the file existed but could not be used — the
    /// caller decides where to log it; the cache itself is empty-but-armed
    /// in that case and the next save overwrites the bad file.
    pub fn at_path(path: impl Into<PathBuf>) -> (Self, Option<String>) {
        let path = path.into();
        let (entries, warning) = match std::fs::read_to_string(&path) {
            // A missing file is the normal cold start, not a warning.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (HashMap::new(), None),
            Err(e) => (
                HashMap::new(),
                Some(format!(
                    "plan cache {}: unreadable ({e}); starting cold",
                    path.display()
                )),
            ),
            Ok(text) => match parse(&text) {
                Ok(entries) => (entries, None),
                Err(e) => (
                    HashMap::new(),
                    Some(format!("plan cache {}: {e}; starting cold", path.display())),
                ),
            },
        };
        (
            Self {
                entries,
                path: Some(path),
            },
            warning,
        )
    }

    /// The default on-disk location: `$SPARSEOPT_PLAN_CACHE`, else
    /// `$XDG_CACHE_HOME/sparseopt/plans.json`, else
    /// `$HOME/.cache/sparseopt/plans.json`, else `./.sparseopt-plans.json`
    /// for homeless environments.
    pub fn default_path() -> PathBuf {
        if let Ok(p) = std::env::var("SPARSEOPT_PLAN_CACHE") {
            return PathBuf::from(p);
        }
        let base = std::env::var("XDG_CACHE_HOME")
            .map(PathBuf::from)
            .or_else(|_| std::env::var("HOME").map(|h| PathBuf::from(h).join(".cache")));
        match base {
            Ok(b) => b.join("sparseopt").join("plans.json"),
            Err(_) => PathBuf::from(".sparseopt-plans.json"),
        }
    }

    /// Opens the cache at [`Self::default_path`].
    pub fn open_default() -> (Self, Option<String>) {
        Self::at_path(Self::default_path())
    }

    /// Looks a fingerprint key up.
    pub fn get(&self, fingerprint: &str) -> Option<&PlanCacheEntry> {
        self.entries.get(fingerprint)
    }

    /// True when a winner is cached under this fingerprint key — the warm
    /// side of a serving-layer registration, checked without rebuilding the
    /// plan.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.contains_key(fingerprint)
    }

    /// Inserts (or replaces) a winner and persists when a path is set.
    /// Persistence failures degrade to a stderr warning — a read-only cache
    /// directory must not take down the serving path.
    pub fn insert(&mut self, entry: PlanCacheEntry) {
        self.entries.insert(entry.fingerprint.clone(), entry);
        if let Err(e) = self.save() {
            self.warn_not_persisted(&e);
        }
    }

    /// Number of cached winners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (and persists the empty state when file-backed) —
    /// "how to clear it" from the README is exactly this, or deleting the
    /// file.
    pub fn clear(&mut self) {
        self.entries.clear();
        if let Err(e) = self.save() {
            self.warn_not_persisted(&e);
        }
    }

    /// Persistence-failure warning, always naming the offending path: a
    /// bare "not persisted" leaves the resulting cold start on the next run
    /// undiagnosable (which file was it trying to write?).
    fn warn_not_persisted(&self, e: &std::io::Error) {
        let shown = self
            .path
            .as_deref()
            .unwrap_or_else(|| Path::new("<in-memory>"));
        eprintln!(
            "warning: plan cache {}: not persisted ({e}); the next process will tune cold",
            shown.display()
        );
    }

    /// The backing file, when persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Writes the cache to its path (no-op when in-memory). Temp-file +
    /// rename, so readers never observe a torn file.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, render(&self.entries))?;
        std::fs::rename(&tmp, path)
    }
}

/// Serializes entries in deterministic (key-sorted) order.
fn render(entries: &HashMap<String, PlanCacheEntry>) -> String {
    let mut keys: Vec<&String> = entries.keys().collect();
    keys.sort();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {PLAN_CACHE_SCHEMA},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, k) in keys.iter().enumerate() {
        let e = &entries[*k];
        let opts = e
            .optimizations
            .iter()
            .map(|o| o.label())
            .collect::<Vec<_>>()
            .join("+");
        let comma = if i + 1 < keys.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"fingerprint\": \"{}\", \"opts\": \"{}\", \"inner\": \"{}\", \
             \"threshold\": {}, \"setup_spmv\": {:e}, \"apply_secs\": {:e}, \
             \"baseline_secs\": {:e}, \"gflops\": {:e}}}{comma}\n",
            e.fingerprint,
            opts,
            e.inner.label(),
            e.decompose_threshold.unwrap_or(0),
            e.measured.setup_spmv,
            e.measured.apply_secs,
            e.measured.baseline_secs,
            e.measured.gflops,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strict line-oriented parser for files [`render`] wrote. Any anomaly —
/// missing/mismatched schema, malformed entry, unknown plan label — is an
/// error for the *whole* file: a half-trusted cache is worse than a cold
/// start.
fn parse(text: &str) -> Result<HashMap<String, PlanCacheEntry>, String> {
    let field = |line: &str, key: &str| -> Option<String> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        Some(if let Some(stripped) = rest.strip_prefix('"') {
            stripped[..stripped.find('"')?].to_string()
        } else {
            rest[..rest.find(['}', ','])?].trim().to_string()
        })
    };
    let mut schema = None;
    let mut entries = HashMap::new();
    let mut saw_close = false;
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(s) = field(line, "schema") {
            schema = Some(
                s.parse::<u32>()
                    .map_err(|_| at(format!("bad schema `{s}`")))?,
            );
            continue;
        }
        if line.trim() == "}" {
            saw_close = true;
        }
        let Some(fp) = field(line, "fingerprint") else {
            continue; // structural line
        };
        let need = |key: &str| field(line, key).ok_or_else(|| at(format!("missing `{key}`")));
        let fnum = |key: &str| -> Result<f64, String> {
            let raw = need(key)?;
            raw.parse::<f64>()
                .map_err(|_| at(format!("bad `{key}` value `{raw}`")))
        };
        let opts_raw = need("opts")?;
        let mut optimizations = Vec::new();
        if !opts_raw.is_empty() {
            // Labels are `+`-joined, but a label may itself contain `+`
            // (`compress+vec`), so greedily match the longest token run.
            let tokens: Vec<&str> = opts_raw.split('+').collect();
            let mut i = 0;
            while i < tokens.len() {
                let mut matched = None;
                for j in (i + 1..=tokens.len()).rev() {
                    if let Some(o) = Optimization::parse_label(&tokens[i..j].join("+")) {
                        matched = Some((o, j));
                        break;
                    }
                }
                let Some((o, j)) = matched else {
                    return Err(at(format!("unknown optimization `{}`", tokens[i])));
                };
                optimizations.push(o);
                i = j;
            }
        }
        let inner_raw = need("inner")?;
        let inner = InnerLoop::parse_label(&inner_raw)
            .ok_or_else(|| at(format!("unknown inner loop `{inner_raw}`")))?;
        let threshold = need("threshold")?
            .parse::<usize>()
            .map_err(|_| at("bad `threshold`".into()))?;
        let measured = MeasuredCosts {
            setup_spmv: fnum("setup_spmv")?,
            apply_secs: fnum("apply_secs")?,
            baseline_secs: fnum("baseline_secs")?,
            gflops: fnum("gflops")?,
        };
        for (k, v) in [
            ("apply_secs", measured.apply_secs),
            ("baseline_secs", measured.baseline_secs),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(at(format!("non-positive `{k}`")));
            }
        }
        if !(measured.setup_spmv.is_finite() && measured.setup_spmv >= 0.0) {
            return Err(at("negative `setup_spmv`".into()));
        }
        entries.insert(
            fp.clone(),
            PlanCacheEntry {
                fingerprint: fp,
                optimizations,
                inner,
                decompose_threshold: (threshold > 0).then_some(threshold),
                measured,
            },
        );
    }
    match schema {
        None => Err("missing schema field".into()),
        Some(s) if s != PLAN_CACHE_SCHEMA => Err(format!(
            "schema version {s} (this build reads {PLAN_CACHE_SCHEMA})"
        )),
        Some(_) if !saw_close => Err("truncated file (no closing brace)".into()),
        Some(_) => Ok(entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "sparseopt-plan-cache-{name}-{}",
            std::process::id()
        ))
    }

    fn entry(fp: &str) -> PlanCacheEntry {
        PlanCacheEntry {
            fingerprint: fp.into(),
            optimizations: vec![Optimization::MergeSplit, Optimization::Prefetch],
            inner: InnerLoop::Unrolled4,
            decompose_threshold: Some(42),
            measured: MeasuredCosts {
                setup_spmv: 2.75,
                apply_secs: 1.25e-4,
                baseline_secs: 2.5e-4,
                gflops: 3.5,
            },
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut cache, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "missing file is a clean cold start");
        cache.insert(entry("v1:r10:z12:a8:d0:s16:p0"));

        let (reloaded, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "got warning: {warn:?}");
        let e = reloaded.get("v1:r10:z12:a8:d0:s16:p0").expect("hit");
        assert_eq!(
            e.optimizations,
            vec![Optimization::MergeSplit, Optimization::Prefetch]
        );
        assert_eq!(e.inner, InnerLoop::Unrolled4);
        assert_eq!(e.decompose_threshold, Some(42));
        assert_eq!(e.measured, entry("x").measured);
        let plan = e.to_plan();
        assert_eq!(plan.label(), "merge-split+prefetch");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn labels_containing_plus_round_trip() {
        // `compress+vec` contains the join separator; the parser must
        // reassemble it instead of rejecting the file (which silently
        // discarded every cache holding that plan).
        let path = tmp("plus-label");
        let _ = std::fs::remove_file(&path);
        let (mut cache, _) = PlanCache::at_path(&path);
        let mut e = entry("v1:plus");
        e.optimizations = vec![
            Optimization::CompressVectorize,
            Optimization::Prefetch,
            Optimization::AutoSchedule,
        ];
        cache.insert(e);
        let (reloaded, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "{warn:?}");
        let e = reloaded.get("v1:plus").expect("hit");
        assert_eq!(
            e.optimizations,
            vec![
                Optimization::CompressVectorize,
                Optimization::Prefetch,
                Optimization::AutoSchedule,
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_files_cold_start_with_warning() {
        for (name, contents) in [
            ("truncated", "{\n  \"schema\": 1,\n  \"entries\": [\n"),
            ("not-json", "hello world\n"),
            (
                "bad-label",
                "{\n  \"schema\": 1,\n  \"entries\": [\n    {\"fingerprint\": \"v1:x\", \
                 \"opts\": \"warp-drive\", \"inner\": \"scalar\", \"threshold\": 0, \
                 \"setup_spmv\": 1e0, \"apply_secs\": 1e-4, \"baseline_secs\": 1e-4, \
                 \"gflops\": 1e0}\n  ]\n}\n",
            ),
            (
                "bad-number",
                "{\n  \"schema\": 1,\n  \"entries\": [\n    {\"fingerprint\": \"v1:x\", \
                 \"opts\": \"\", \"inner\": \"scalar\", \"threshold\": 0, \
                 \"setup_spmv\": banana, \"apply_secs\": 1e-4, \"baseline_secs\": 1e-4, \
                 \"gflops\": 1e0}\n  ]\n}\n",
            ),
        ] {
            let path = tmp(name);
            std::fs::write(&path, contents).unwrap();
            let (cache, warn) = PlanCache::at_path(&path);
            assert!(cache.is_empty(), "{name}: must cold-start");
            assert!(warn.is_some(), "{name}: must warn");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn version_mismatch_cold_starts_with_warning() {
        let path = tmp("version");
        std::fs::write(&path, "{\n  \"schema\": 99,\n  \"entries\": [\n  ]\n}\n").unwrap();
        let (cache, warn) = PlanCache::at_path(&path);
        assert!(cache.is_empty());
        let warn = warn.expect("must warn");
        assert!(warn.contains("schema version 99"), "got: {warn}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn baseline_plan_serializes_as_empty_opts() {
        let path = tmp("baseline");
        let _ = std::fs::remove_file(&path);
        let (mut cache, _) = PlanCache::at_path(&path);
        let mut e = entry("v1:base");
        e.optimizations = Vec::new();
        e.decompose_threshold = None;
        cache.insert(e);
        let (reloaded, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "{warn:?}");
        let e = reloaded.get("v1:base").unwrap();
        assert!(e.to_plan().is_noop());
        assert_eq!(e.decompose_threshold, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_cache_never_touches_disk() {
        let mut cache = PlanCache::in_memory();
        cache.insert(entry("v1:mem"));
        assert_eq!(cache.len(), 1);
        assert!(cache.path().is_none());
        assert!(cache.save().is_ok());
    }
}
