//! The optimizers compared in the paper's evaluation (Fig. 7):
//!
//! * **MKL** — vendor-like generic CSR kernel: vectorized, row-count
//!   partitioning, zero preprocessing (substitute for `mkl_dcsrmv`).
//! * **MKL Inspector-Executor** — inspection pass that fixes the workload
//!   distribution (nnz-balanced) and vectorizes (substitute for
//!   `mkl_sparse_d_mv` after `mkl_sparse_optimize`).
//! * **baseline** — the paper's own scalar CSR with static nnz partitioning.
//! * **oracle** — exhaustively tries every plan (singles + pairs) and keeps
//!   the best.
//! * **prof** / **feat** — the adaptive optimizer driven by the
//!   profile-guided or feature-guided classifier.
//!
//! Everything is evaluated in two modes: *simulated* (modeled Table III
//! platform — regenerates the paper's figures) and *host* (real kernels on
//! this machine).

use crate::pool::{OpRequirements, OptimizationPlan};
use crate::rank::{rank_plans, ranked_candidates};
use sparseopt_classifier::{
    BoundsProfiler, ClassSet, FeatureGuidedClassifier, PerClassBounds, ProfileGuidedClassifier,
    SimBoundsProfiler,
};
use sparseopt_core::prelude::*;
use sparseopt_core::CsrKernelConfig;
use sparseopt_matrix::MatrixFeatures;
use sparseopt_sim::{simulate, Platform, SimFormat, SimKernelConfig, SimMatrixProfile};
use std::sync::Arc;

/// Vendor-like CSR kernel configuration (MKL stand-in): static row-count
/// partitioning with a platform-dependent inner loop. On KNC and Broadwell
/// the legacy `mkl_dcsrmv` path is well vectorized; on KNL it is not — the
/// paper's own numbers imply this (the Inspector-Executor alone gains 4.89×
/// over MKL CSR there), so the KNL stand-in runs the scalar loop.
pub fn mkl_sim_config(platform: &Platform) -> SimKernelConfig {
    let inner = if platform.name == "KNL" {
        InnerLoop::Scalar
    } else {
        InnerLoop::Simd
    };
    SimKernelConfig {
        format: SimFormat::Csr,
        inner,
        prefetch: false,
        schedule: Schedule::StaticRows,
    }
}

/// Inspector-Executor stand-in: one inspection pass buys an nnz-balanced
/// partition, vectorization, and software prefetching (the inspector sees
/// the irregular access pattern) — but no decomposition, which is why the
/// paper's largest wins over IE are on imbalanced matrices.
pub fn inspector_executor_sim_config() -> SimKernelConfig {
    SimKernelConfig {
        format: SimFormat::Csr,
        inner: InnerLoop::Simd,
        prefetch: true,
        schedule: Schedule::StaticNnz,
    }
}

/// Host-side equivalents of the two vendor baselines.
pub fn mkl_host_kernel(csr: &Arc<CsrMatrix>, ctx: Arc<ExecCtx>) -> Box<dyn SparseLinOp> {
    let cfg = CsrKernelConfig {
        inner: InnerLoop::Simd,
        prefetch: false,
        schedule: Schedule::StaticRows,
    };
    Box::new(ParallelCsr::new(csr.clone(), cfg, ctx))
}

/// Host-side Inspector-Executor stand-in.
pub fn inspector_executor_host_kernel(
    csr: &Arc<CsrMatrix>,
    ctx: Arc<ExecCtx>,
) -> Box<dyn SparseLinOp> {
    let cfg = CsrKernelConfig {
        inner: InnerLoop::Simd,
        prefetch: false,
        schedule: Schedule::StaticNnz,
    };
    Box::new(ParallelCsr::new(csr.clone(), cfg, ctx))
}

/// Sim-backed no-loss guard on a proposed plan: simulates the plan, its
/// inner-loop downgrades (`Simd → Unrolled4 → Scalar` — the historical
/// `delta+Simd` pairing loses to its own unrolled variant on short rows),
/// and the scalar-CSR baseline, and returns whichever the model ranks
/// fastest with its modeled Gflop/s. The returned plan is therefore never
/// modeled slower than the baseline kernel: a "vectorize" recommendation
/// the model says loses to scalar is downgraded instead of shipped.
pub fn guard_plan(
    profile: &SimMatrixProfile,
    platform: &Platform,
    plan: OptimizationPlan,
) -> (OptimizationPlan, f64) {
    // Baseline first: the shared ranking is stable, so on a modeled tie the
    // baseline wins and the guard never ships a plan that merely equals it.
    let mut candidates = vec![OptimizationPlan::baseline(), plan.clone()];
    if plan.inner == InnerLoop::Simd {
        let mut p = plan.clone();
        p.inner = InnerLoop::Unrolled4;
        candidates.push(p);
    }
    if plan.inner != InnerLoop::Scalar {
        let mut p = plan;
        p.inner = InnerLoop::Scalar;
        candidates.push(p);
    }
    let best = rank_plans(profile, platform, candidates)
        .into_iter()
        .next()
        .expect("guard candidate list is never empty");
    (best.plan, best.modeled_gflops)
}

/// Everything Fig. 7 plots for one matrix on one platform, in Gflop/s.
#[derive(Clone, Debug)]
pub struct MatrixEvaluation {
    /// Per-class bounds backing the profile-guided decision.
    pub bounds: PerClassBounds,
    /// Classes from the profile-guided classifier (the figure's annotations).
    pub classes_profile: ClassSet,
    /// Classes from the feature-guided classifier, when one is supplied.
    pub classes_feature: Option<ClassSet>,
    /// Vendor CSR baseline.
    pub mkl: f64,
    /// Vendor autotuned baseline.
    pub mkl_ie: f64,
    /// The paper's own baseline CSR.
    pub baseline: f64,
    /// Best plan found by exhaustive search, with its performance.
    pub oracle: f64,
    /// The oracle's winning plan.
    pub oracle_plan: OptimizationPlan,
    /// Profile-guided adaptive optimizer.
    pub prof: f64,
    /// Profile-guided plan.
    pub prof_plan: OptimizationPlan,
    /// Feature-guided adaptive optimizer (when a classifier is supplied).
    pub feat: Option<f64>,
}

/// Simulated optimizer study on one modeled platform.
pub struct SimOptimizerStudy {
    profiler: SimBoundsProfiler,
    classifier: ProfileGuidedClassifier,
}

impl SimOptimizerStudy {
    /// Creates a study for `platform` with the paper's tuned thresholds.
    pub fn new(platform: Platform) -> Self {
        Self {
            profiler: SimBoundsProfiler::new(platform),
            classifier: ProfileGuidedClassifier::new(),
        }
    }

    /// Overrides the profile-guided thresholds (used by the tuning harness).
    pub fn with_classifier(mut self, classifier: ProfileGuidedClassifier) -> Self {
        self.classifier = classifier;
        self
    }

    /// The modeled platform.
    pub fn platform(&self) -> &Platform {
        self.profiler.platform()
    }

    /// The bounds profiler (shared with labeling pipelines).
    pub fn profiler(&self) -> &SimBoundsProfiler {
        &self.profiler
    }

    /// Gflop/s of an arbitrary plan on this platform.
    pub fn plan_gflops(&self, profile: &SimMatrixProfile, plan: &OptimizationPlan) -> f64 {
        simulate(profile, self.platform(), &plan.to_sim_config()).gflops
    }

    /// Full Fig. 7 evaluation of one matrix at scale 1.
    pub fn evaluate(
        &self,
        csr: &Arc<CsrMatrix>,
        features: &MatrixFeatures,
        feature_classifier: Option<&FeatureGuidedClassifier>,
    ) -> MatrixEvaluation {
        self.evaluate_scaled(csr, features, 1.0, 1.0, feature_classifier)
    }

    /// Full Fig. 7 evaluation of one matrix standing in for an original
    /// `scale`× larger (see `SimMatrixProfile::analyze_scaled` for the two
    /// scale factors).
    pub fn evaluate_scaled(
        &self,
        csr: &Arc<CsrMatrix>,
        features: &MatrixFeatures,
        scale: f64,
        locality_scale: f64,
        feature_classifier: Option<&FeatureGuidedClassifier>,
    ) -> MatrixEvaluation {
        let profile = self.profiler.profile_scaled(csr, scale, locality_scale);
        let bounds = self.profiler.measure_profile(&profile);
        let platform = self.platform();

        let baseline = simulate(&profile, platform, &SimKernelConfig::baseline()).gflops;
        let mkl = simulate(&profile, platform, &mkl_sim_config(platform)).gflops;
        let mkl_ie = simulate(&profile, platform, &inspector_executor_sim_config()).gflops;

        // Oracle: the top of the shared candidate ranking (baseline +
        // deduplicated singles + pairs — the same list the tuner draws its
        // measurement candidates from).
        let top = ranked_candidates(&profile, platform, features)
            .into_iter()
            .next()
            .expect("candidate list is never empty");
        let (oracle, oracle_plan) = (top.modeled_gflops, top.plan);

        // Profile-guided adaptive plan, run through the sim-backed no-loss
        // guard: the recorded plan is whatever the guard actually keeps.
        let classes_profile = self.classifier.classify(&bounds);
        let raw = OptimizationPlan::from_classes(classes_profile, features);
        let (prof_plan, prof) = if raw.is_noop() {
            (raw, baseline)
        } else {
            guard_plan(&profile, platform, raw)
        };

        // Feature-guided adaptive plan, guarded the same way.
        let (classes_feature, feat) = match feature_classifier {
            None => (None, None),
            Some(clf) => {
                let classes = clf.classify(features);
                let plan = OptimizationPlan::from_classes(classes, features);
                let g = if plan.is_noop() {
                    baseline
                } else {
                    guard_plan(&profile, platform, plan).1
                };
                (Some(classes), Some(g))
            }
        };

        MatrixEvaluation {
            bounds,
            classes_profile,
            classes_feature,
            mkl,
            mkl_ie,
            baseline,
            oracle,
            oracle_plan,
            prof,
            prof_plan,
            feat,
        }
    }
}

/// Host-side adaptive optimizer: profiles (or feature-classifies) a matrix
/// on the actual machine and returns a runnable optimized kernel.
pub struct AdaptiveOptimizer {
    ctx: Arc<ExecCtx>,
    classifier: ProfileGuidedClassifier,
    /// LLC size used for the `size` feature, bytes.
    pub llc_bytes: usize,
    /// Modeled platform backing the sim no-loss guard ([`guard_plan`])
    /// applied to every classified plan before it is built: a plan the
    /// model ranks slower than scalar CSR on this platform is downgraded
    /// rather than shipped. Defaults to the commodity Broadwell model, the
    /// closest stand-in for a typical host.
    pub guard_platform: Platform,
}

/// Outcome of a host-side optimization.
pub struct OptimizedKernel {
    /// The runnable operator (full `{NoTrans, Trans} × {vec, multivec}`
    /// application space; query `kernel.capabilities()` for what the built
    /// operator supports — it was validated against the consumer's
    /// [`OpRequirements`] at build time).
    pub kernel: Box<dyn SparseLinOp>,
    /// Detected classes.
    pub classes: ClassSet,
    /// The applied plan.
    pub plan: OptimizationPlan,
    /// The bounds that drove the decision (profile-guided path only).
    pub bounds: Option<PerClassBounds>,
}

impl AdaptiveOptimizer {
    /// Creates an optimizer bound to an execution context.
    pub fn new(ctx: Arc<ExecCtx>) -> Self {
        Self {
            ctx,
            classifier: ProfileGuidedClassifier::new(),
            llc_bytes: 32 * 1024 * 1024,
            guard_platform: Platform::broadwell(),
        }
    }

    /// The execution context kernels are built against (shared with the
    /// tuning layer, which builds and measures candidate operators).
    pub fn ctx(&self) -> &Arc<ExecCtx> {
        &self.ctx
    }

    /// Profile-guided optimization: measures the per-class bounds with the
    /// supplied profiler, classifies, and builds the optimized operator for
    /// a forward single-vector consumer.
    pub fn optimize_profiled(
        &self,
        csr: &Arc<CsrMatrix>,
        profiler: &dyn BoundsProfiler,
    ) -> OptimizedKernel {
        self.optimize_profiled_for(csr, profiler, &OpRequirements::spmv())
    }

    /// Profile-guided optimization for a consumer with explicit operator
    /// requirements — the entry point transpose-consuming solvers (BiCG,
    /// LSQR/CGNR) and block-Krylov drivers use. The returned operator is
    /// guaranteed to satisfy `reqs`; if the classified plan's operator ever
    /// could not, the *recorded* plan falls back to baseline along with the
    /// kernel, so `OptimizedKernel::plan` always describes the operator
    /// that actually runs.
    pub fn optimize_profiled_for(
        &self,
        csr: &Arc<CsrMatrix>,
        profiler: &dyn BoundsProfiler,
        reqs: &OpRequirements,
    ) -> OptimizedKernel {
        let bounds = profiler.measure(csr);
        let classes = self.classifier.classify(&bounds);
        let features = MatrixFeatures::extract(csr, self.llc_bytes);
        let (plan, kernel) = self.plan_and_build(csr, classes, &features, reqs);
        OptimizedKernel {
            kernel,
            classes,
            plan,
            bounds: Some(bounds),
        }
    }

    /// Builds the class-derived plan's operator, falling back to the
    /// baseline plan + operator *together* when the requirements cannot be
    /// met (baseline CSR always covers the full application space).
    fn plan_and_build(
        &self,
        csr: &Arc<CsrMatrix>,
        classes: ClassSet,
        features: &MatrixFeatures,
        reqs: &OpRequirements,
    ) -> (OptimizationPlan, Box<dyn SparseLinOp>) {
        let plan = OptimizationPlan::from_classes(classes, features);
        // No-loss guard: never build a plan the model ranks below scalar
        // CSR (the pre-SELL "vectorize" recommendation did exactly that).
        let plan = if plan.is_noop() {
            plan
        } else {
            let profile = SimMatrixProfile::analyze(csr, &self.guard_platform);
            guard_plan(&profile, &self.guard_platform, plan).0
        };
        let kernel = plan.build_host_kernel(csr, self.ctx.clone());
        if kernel.capabilities().satisfies(&reqs.as_capabilities()) {
            (plan, kernel)
        } else {
            let baseline = OptimizationPlan::baseline();
            let kernel = baseline.build_host_kernel(csr, self.ctx.clone());
            (baseline, kernel)
        }
    }

    /// Feature-guided optimization: extracts features on the fly and queries
    /// a pre-trained classifier. This is the paper's lightweight path.
    pub fn optimize_feature_guided(
        &self,
        csr: &Arc<CsrMatrix>,
        clf: &FeatureGuidedClassifier,
    ) -> OptimizedKernel {
        self.optimize_feature_guided_for(csr, clf, &OpRequirements::spmv())
    }

    /// Feature-guided optimization with explicit operator requirements
    /// (same plan-and-kernel fallback contract as
    /// [`Self::optimize_profiled_for`]).
    pub fn optimize_feature_guided_for(
        &self,
        csr: &Arc<CsrMatrix>,
        clf: &FeatureGuidedClassifier,
        reqs: &OpRequirements,
    ) -> OptimizedKernel {
        let features = MatrixFeatures::extract(csr, self.llc_bytes);
        let classes = clf.classify(&features);
        let (plan, kernel) = self.plan_and_build(csr, classes, &features, reqs);
        OptimizedKernel {
            kernel,
            classes,
            plan,
            bounds: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_matrix::generators as g;

    fn arc(m: sparseopt_core::coo::CooMatrix) -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_coo(&m))
    }

    #[test]
    fn oracle_dominates_everything_simulated() {
        let study = SimOptimizerStudy::new(Platform::knc());
        for csr in [
            arc(g::banded(20_000, 3)),
            arc(g::random_uniform(15_000, 8, 1)),
            arc(g::few_dense_rows(15_000, 2, 3, 2)),
        ] {
            let f = MatrixFeatures::extract(&csr, 30 * 1024 * 1024);
            let e = study.evaluate(&csr, &f, None);
            assert!(e.oracle >= e.baseline - 1e-9);
            assert!(
                e.oracle >= e.prof - 1e-9,
                "oracle {} < prof {}",
                e.oracle,
                e.prof
            );
        }
    }

    #[test]
    fn profile_guided_beats_mkl_on_skewed_matrix() {
        let study = SimOptimizerStudy::new(Platform::knc());
        let csr = arc(g::few_dense_rows(20_000, 2, 4, 3));
        let f = MatrixFeatures::extract(&csr, 30 * 1024 * 1024);
        let e = study.evaluate(&csr, &f, None);
        assert!(
            e.prof > 1.5 * e.mkl,
            "adaptive must beat vendor CSR on imbalance: {} vs {}",
            e.prof,
            e.mkl
        );
        assert!(
            !e.classes_profile.is_empty(),
            "classes: {}",
            e.classes_profile
        );
    }

    #[test]
    fn ie_beats_mkl_on_skew_but_loses_to_adaptive() {
        let study = SimOptimizerStudy::new(Platform::knl());
        let csr = arc(g::few_dense_rows(20_000, 2, 4, 4));
        let f = MatrixFeatures::extract(&csr, 34 * 1024 * 1024);
        let e = study.evaluate(&csr, &f, None);
        assert!(
            e.mkl_ie >= e.mkl * 0.95,
            "IE should not trail MKL meaningfully"
        );
        assert!(e.prof >= e.mkl_ie, "adaptive {} vs IE {}", e.prof, e.mkl_ie);
    }

    #[test]
    fn host_adaptive_optimizer_produces_correct_kernel() {
        let csr = arc(g::few_dense_rows(500, 3, 2, 5));
        let ctx = ExecCtx::new(2);
        let opt = AdaptiveOptimizer::new(ctx.clone());
        // Use the simulated profiler for decision making (deterministic) but
        // build and run the real kernel.
        let profiler = SimBoundsProfiler::new(Platform::knc());
        let result = opt.optimize_profiled(&csr, &profiler);

        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.02).cos()).collect();
        let mut y = vec![0.0; 500];
        result.kernel.spmv(&x, &mut y);
        let mut expect = vec![0.0; 500];
        SerialCsr::new(csr.clone()).spmv(&x, &mut expect);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
        assert!(result.bounds.is_some());
    }

    #[test]
    fn transpose_capable_plans_apply_the_transpose_correctly() {
        // A skewed matrix drives the optimizer to a non-CSR format
        // (decomposition); the requirements-aware path must still hand back
        // an operator whose Aᵀ·x matches the serial reference.
        let csr = arc(g::few_dense_rows(600, 3, 2, 5));
        let ctx = ExecCtx::new(3);
        let opt = AdaptiveOptimizer::new(ctx.clone());
        let profiler = SimBoundsProfiler::new(Platform::knc());
        let result = opt.optimize_profiled_for(&csr, &profiler, &OpRequirements::full());
        let caps = result.kernel.capabilities();
        assert!(caps.transpose && caps.multi_vec);

        let x: Vec<f64> = (0..600).map(|i| (i as f64 * 0.03).sin() + 0.5).collect();
        let mut got = vec![f64::NAN; 600];
        result.kernel.apply(Apply::Trans, &x, &mut got);
        let mut want = vec![0.0; 600];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "row {i}: {a} vs {b} under plan {}",
                result.plan.label()
            );
        }
    }

    #[test]
    fn guard_never_returns_a_modeled_loss() {
        use crate::pool::Optimization;
        let platform = Platform::knl();
        let study = SimOptimizerStudy::new(platform.clone());
        // Very short irregular rows: the historical `delta+Simd` pathology,
        // where the per-row vector remainder cost swamps 3-element rows.
        let csr = arc(g::random_uniform(10_000, 3, 8));
        let f = MatrixFeatures::extract(&csr, 30 * 1024 * 1024);
        let profile = study.profiler().profile_scaled(&csr, 1.0, 1.0);
        let mut plan = OptimizationPlan::from_optimizations(&[Optimization::CompressVectorize], &f);
        plan.inner = InnerLoop::Simd;
        let base = simulate(&profile, &platform, &SimKernelConfig::baseline()).gflops;
        let raw = simulate(&profile, &platform, &plan.to_sim_config()).gflops;
        let (guarded, g) = guard_plan(&profile, &platform, plan);
        assert!(
            g >= base,
            "guard must never hand back a modeled loss: {g} vs baseline {base}"
        );
        if raw < base {
            assert_ne!(
                guarded.inner,
                InnerLoop::Simd,
                "a losing Simd pairing must be downgraded"
            );
        }
    }

    #[test]
    fn vendor_baselines_are_distinct_configs() {
        for p in Platform::paper_platforms() {
            assert_ne!(mkl_sim_config(&p), inspector_executor_sim_config());
            assert_eq!(mkl_sim_config(&p).schedule, Schedule::StaticRows);
        }
        assert_eq!(
            inspector_executor_sim_config().schedule,
            Schedule::StaticNnz
        );
        // The KNL legacy path is unvectorized (see mkl_sim_config docs).
        assert_eq!(mkl_sim_config(&Platform::knl()).inner, InnerLoop::Scalar);
        assert_eq!(mkl_sim_config(&Platform::knc()).inner, InnerLoop::Simd);
    }
}
