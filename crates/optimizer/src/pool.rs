//! The optimization pool — Table II of the paper.
//!
//! | class | optimization |
//! |---|---|
//! | MB | column-index delta compression + vectorization |
//! | ML | software prefetching on `x` |
//! | IMB | matrix decomposition *or* OpenMP-style auto scheduling |
//! | CMP | inner-loop unrolling + vectorization |
//!
//! When several bottlenecks are detected the optimizations are applied
//! jointly. The IMB subcategory choice follows Section III-E: highly uneven
//! row lengths (detected via `nnz_max` vs `nnz_avg`) ⇒ decomposition;
//! computational unevenness (detected via `bw_sd`) ⇒ auto scheduling.

use sparseopt_classifier::{Bottleneck, ClassSet};
use sparseopt_core::prelude::*;
use sparseopt_core::CsrKernelConfig;
use sparseopt_matrix::MatrixFeatures;
use sparseopt_sim::{SimFormat, SimKernelConfig};
use std::sync::Arc;

/// An individual optimization from the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Optimization {
    /// Delta-compress column indices + vectorize (MB).
    CompressVectorize,
    /// Software prefetching on `x` (ML).
    Prefetch,
    /// Split out long rows (IMB, uneven row lengths).
    Decompose,
    /// Delegate scheduling to the runtime heuristic (IMB, uneven regions).
    AutoSchedule,
    /// Unroll + vectorize the inner loop (CMP).
    UnrollVectorize,
}

impl Optimization {
    /// All pool members (the paper's "total of 5").
    pub const ALL: [Optimization; 5] = [
        Optimization::CompressVectorize,
        Optimization::Prefetch,
        Optimization::Decompose,
        Optimization::AutoSchedule,
        Optimization::UnrollVectorize,
    ];

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Optimization::CompressVectorize => "compress+vec",
            Optimization::Prefetch => "prefetch",
            Optimization::Decompose => "decompose",
            Optimization::AutoSchedule => "auto-sched",
            Optimization::UnrollVectorize => "unroll+vec",
        }
    }

    /// The class this optimization addresses (Table II row).
    pub fn target_class(self) -> Bottleneck {
        match self {
            Optimization::CompressVectorize => Bottleneck::Mb,
            Optimization::Prefetch => Bottleneck::Ml,
            Optimization::Decompose | Optimization::AutoSchedule => Bottleneck::Imb,
            Optimization::UnrollVectorize => Bottleneck::Cmp,
        }
    }
}

/// Row-length skew factor above which the IMB optimization decomposes rather
/// than reschedules (`nnz_max > LONG_ROW_SKEW · nnz_avg`).
pub const LONG_ROW_SKEW: f64 = 16.0;

/// Long-row threshold factor handed to the decomposition
/// (`threshold = LONG_ROW_FACTOR · nnz_avg`).
pub const LONG_ROW_FACTOR: f64 = 4.0;

/// Minimum average row length for the vectorized inner loop to pay off:
/// below this, gather setup and remainder handling dominate and the JIT
/// emits the unrolled scalar loop instead (the paper's codegen decides
/// per matrix; blind vectorization of short rows is a Fig. 1 slowdown).
pub const VECTOR_MIN_AVG_ROW: f64 = 8.0;

/// Maps a detected class set to the jointly applied optimizations,
/// using features to disambiguate the IMB subcategory.
pub fn select_optimizations(classes: ClassSet, features: &MatrixFeatures) -> Vec<Optimization> {
    let mut opts = Vec::new();
    if classes.contains(Bottleneck::Mb) {
        opts.push(Optimization::CompressVectorize);
    }
    if classes.contains(Bottleneck::Ml) {
        opts.push(Optimization::Prefetch);
    }
    if classes.contains(Bottleneck::Imb) {
        if features.nnz_max > LONG_ROW_SKEW * features.nnz_avg.max(1e-12) {
            opts.push(Optimization::Decompose);
        } else {
            opts.push(Optimization::AutoSchedule);
        }
    }
    if classes.contains(Bottleneck::Cmp) {
        opts.push(Optimization::UnrollVectorize);
    }
    opts
}

/// What a consumer needs from the operator a plan builds. Solvers that
/// apply `Aᵀ` (BiCG, LSQR/CGNR) or whole multi-vectors (block Krylov) pass
/// their requirements through the adaptive optimizer, which validates the
/// built operator's [`OpCapabilities`] against them — the plan carries the
/// requirement, the operator carries the capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OpRequirements {
    /// Transposed application will be called.
    pub transpose: bool,
    /// Multi-vector application will be called.
    pub multi_vec: bool,
}

impl OpRequirements {
    /// Forward single-vector consumers (CG, BiCGSTAB, GMRES).
    pub const fn spmv() -> Self {
        Self {
            transpose: false,
            multi_vec: false,
        }
    }

    /// The full application space (transpose-consuming block solvers).
    pub const fn full() -> Self {
        Self {
            transpose: true,
            multi_vec: true,
        }
    }

    /// The capability record an operator must satisfy.
    pub fn as_capabilities(&self) -> OpCapabilities {
        OpCapabilities {
            transpose: self.transpose,
            multi_vec: self.multi_vec,
        }
    }
}

/// A concrete, jointly-applied optimization plan.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizationPlan {
    /// Detected classes this plan addresses.
    pub classes: ClassSet,
    /// The pool members applied.
    pub optimizations: Vec<Optimization>,
    /// Long-row threshold when decomposition participates.
    pub decompose_threshold: Option<usize>,
    /// Inner-loop flavor the "vectorization" optimizations resolve to for
    /// this matrix (SIMD for long rows, unrolled for short ones).
    pub inner: InnerLoop,
}

impl OptimizationPlan {
    /// Builds the plan for a class set (Table II composition rules).
    pub fn from_classes(classes: ClassSet, features: &MatrixFeatures) -> Self {
        let optimizations = select_optimizations(classes, features);
        Self::assemble(classes, optimizations, features)
    }

    /// Shared constructor: resolves the threshold and inner-loop choices.
    fn assemble(
        classes: ClassSet,
        optimizations: Vec<Optimization>,
        features: &MatrixFeatures,
    ) -> Self {
        let decompose_threshold = optimizations
            .contains(&Optimization::Decompose)
            .then(|| ((features.nnz_avg * LONG_ROW_FACTOR).ceil() as usize).max(8));
        let wants_vector = optimizations.iter().any(|o| {
            matches!(
                o,
                Optimization::CompressVectorize | Optimization::UnrollVectorize
            )
        });
        let inner = if !wants_vector {
            InnerLoop::Scalar
        } else if features.nnz_avg >= VECTOR_MIN_AVG_ROW {
            InnerLoop::Simd
        } else {
            InnerLoop::Unrolled4
        };
        Self {
            classes,
            optimizations,
            decompose_threshold,
            inner,
        }
    }

    /// The explicit no-op plan (baseline kernel).
    pub fn baseline() -> Self {
        Self {
            classes: ClassSet::EMPTY,
            optimizations: Vec::new(),
            decompose_threshold: None,
            inner: InnerLoop::Scalar,
        }
    }

    /// Builds a plan for an explicit optimization combination (used by the
    /// trivial optimizers and the oracle sweep).
    pub fn from_optimizations(opts: &[Optimization], features: &MatrixFeatures) -> Self {
        let mut classes = ClassSet::EMPTY;
        for o in opts {
            classes.insert(o.target_class());
        }
        Self::assemble(classes, opts.to_vec(), features)
    }

    /// True when this plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.optimizations.is_empty()
    }

    /// The modeled kernel configuration for the simulator.
    pub fn to_sim_config(&self) -> SimKernelConfig {
        let has = |o: Optimization| self.optimizations.contains(&o);
        let format = if let Some(t) = self.decompose_threshold {
            SimFormat::Decomposed { threshold: t }
        } else if has(Optimization::CompressVectorize) {
            SimFormat::DeltaCsr
        } else {
            SimFormat::Csr
        };
        let schedule = if has(Optimization::AutoSchedule) {
            Schedule::Auto
        } else {
            Schedule::StaticNnz
        };
        SimKernelConfig {
            format,
            inner: self.inner,
            prefetch: has(Optimization::Prefetch),
            schedule,
        }
    }

    /// Builds the real, runnable operator implementing the plan on the
    /// host. Precedence when format-changing optimizations collide:
    /// decomposition wins over compression (a decomposed matrix keeps plain
    /// indices). Every format operator covers the full
    /// `{NoTrans, Trans} × {vec, multivec}` space, so the result serves any
    /// consumer; [`Self::build_host_op`] additionally checks an explicit
    /// requirement set.
    pub fn build_host_kernel(
        &self,
        csr: &Arc<CsrMatrix>,
        ctx: Arc<ExecCtx>,
    ) -> Box<dyn SparseLinOp> {
        let has = |o: Optimization| self.optimizations.contains(&o);
        let inner = self.inner;
        let prefetch = has(Optimization::Prefetch);
        let schedule = if has(Optimization::AutoSchedule) {
            Schedule::Auto
        } else {
            Schedule::StaticNnz
        };

        if let Some(threshold) = self.decompose_threshold {
            let dec = Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold));
            Box::new(DecomposedKernel::new(dec, inner, prefetch, schedule, ctx))
        } else if has(Optimization::CompressVectorize) {
            let delta = Arc::new(DeltaCsrMatrix::from_csr(csr));
            Box::new(DeltaKernel::new(delta, inner, prefetch, schedule, ctx))
        } else {
            let cfg = CsrKernelConfig {
                inner,
                prefetch,
                schedule,
            };
            Box::new(ParallelCsr::new(csr.clone(), cfg, ctx))
        }
    }

    /// Builds the plan's operator and validates it against the consumer's
    /// requirements.
    ///
    /// # Panics
    /// Panics if the built operator cannot satisfy `reqs` — loud by design:
    /// a silent substitute would leave this plan's label and preprocessing
    /// cost describing an operator that never ran. Callers wanting a
    /// fallback handle it themselves and record the substituted plan (see
    /// `AdaptiveOptimizer::optimize_profiled_for`). Every format operator
    /// currently covers the full application space, so this only fires if a
    /// restricted operator is ever added to the plan space.
    pub fn build_host_op(
        &self,
        csr: &Arc<CsrMatrix>,
        ctx: Arc<ExecCtx>,
        reqs: &OpRequirements,
    ) -> Box<dyn SparseLinOp> {
        let op = self.build_host_kernel(csr, ctx);
        assert!(
            op.capabilities().satisfies(&reqs.as_capabilities()),
            "plan `{}` built operator `{}` lacking required capabilities {reqs:?}",
            self.label(),
            op.name(),
        );
        op
    }

    /// Display string, e.g. `prefetch+decompose`.
    pub fn label(&self) -> String {
        if self.is_noop() {
            return "baseline".into();
        }
        self.optimizations
            .iter()
            .map(|o| o.label())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// All 5 single-optimization plans (the paper's trivial-single sweep).
pub fn single_plans(features: &MatrixFeatures) -> Vec<OptimizationPlan> {
    Optimization::ALL
        .iter()
        .map(|&o| OptimizationPlan::from_optimizations(&[o], features))
        .collect()
}

/// All C(5,2) = 10 pairs, totaling 15 plans with the singles (the paper's
/// trivial-combined sweep: "combinations of 2 (total of 15)").
pub fn single_and_pair_plans(features: &MatrixFeatures) -> Vec<OptimizationPlan> {
    let mut plans = single_plans(features);
    let all = Optimization::ALL;
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            // Decompose + AutoSchedule are alternatives for the same class;
            // their pair is still enumerated (the trivial optimizer is blind).
            plans.push(OptimizationPlan::from_optimizations(
                &[all[i], all[j]],
                features,
            ));
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_matrix::generators as g;

    const LLC: usize = 32 * 1024 * 1024;

    fn feats(csr: &CsrMatrix) -> MatrixFeatures {
        MatrixFeatures::extract(csr, LLC)
    }

    #[test]
    fn table2_mapping() {
        let m = CsrMatrix::from_coo(&g::banded(500, 2));
        let f = feats(&m);
        let one = |c| select_optimizations(ClassSet::from_classes(&[c]), &f);
        assert_eq!(one(Bottleneck::Mb), vec![Optimization::CompressVectorize]);
        assert_eq!(one(Bottleneck::Ml), vec![Optimization::Prefetch]);
        assert_eq!(one(Bottleneck::Cmp), vec![Optimization::UnrollVectorize]);
        // Regular row lengths: IMB resolves to auto scheduling.
        assert_eq!(one(Bottleneck::Imb), vec![Optimization::AutoSchedule]);
    }

    #[test]
    fn imb_decomposes_on_skewed_rows() {
        let m = CsrMatrix::from_coo(&g::few_dense_rows(3000, 2, 3, 1));
        let f = feats(&m);
        let opts = select_optimizations(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert_eq!(opts, vec![Optimization::Decompose]);
        let plan = OptimizationPlan::from_classes(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert!(plan.decompose_threshold.is_some());
    }

    #[test]
    fn joint_plan_composes() {
        let m = CsrMatrix::from_coo(&g::random_uniform(2000, 6, 3));
        let f = feats(&m);
        let classes = ClassSet::from_classes(&[Bottleneck::Ml, Bottleneck::Imb]);
        let plan = OptimizationPlan::from_classes(classes, &f);
        assert_eq!(plan.optimizations.len(), 2);
        let cfg = plan.to_sim_config();
        assert!(cfg.prefetch);
        assert_eq!(cfg.schedule, Schedule::Auto);
    }

    #[test]
    fn plan_counts_match_paper() {
        let m = CsrMatrix::from_coo(&g::banded(300, 1));
        let f = feats(&m);
        assert_eq!(single_plans(&f).len(), 5);
        assert_eq!(single_and_pair_plans(&f).len(), 15);
    }

    #[test]
    fn host_kernels_all_compute_correctly() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(400, 3, 2, 9)));
        let f = feats(&csr);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut reference = vec![0.0; 400];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let ctx = ExecCtx::new(3);
        for plan in single_and_pair_plans(&f) {
            let k = plan.build_host_kernel(&csr, ctx.clone());
            let mut y = vec![f64::NAN; 400];
            k.spmv(&x, &mut y);
            for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "row {i} mismatch under plan {}",
                    plan.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_informative() {
        let m = CsrMatrix::from_coo(&g::banded(300, 1));
        let f = feats(&m);
        let plan = OptimizationPlan::from_optimizations(
            &[Optimization::Prefetch, Optimization::UnrollVectorize],
            &f,
        );
        assert_eq!(plan.label(), "prefetch+unroll+vec");
        assert_eq!(OptimizationPlan::baseline().label(), "baseline");
    }
}
