//! The optimization pool — Table II of the paper, extended with the
//! merge-path nonzero split.
//!
//! | class | optimization |
//! |---|---|
//! | MB | symmetric (SSS) storage *or* column-index delta compression, + vectorization |
//! | ML | software prefetching on `x` |
//! | IMB | merge-path nonzero split, matrix decomposition, *or* OpenMP-style auto scheduling |
//! | CMP | SELL-C-σ conversion + vectorized chunk kernels |
//!
//! When several bottlenecks are detected the optimizations are applied
//! jointly. The IMB subcategory choice extends Section III-E: a row heavy
//! enough that *no* whole-row distribution can balance it (its share of all
//! nonzeros exceeds [`MERGE_ROW_SHARE`]) or a heavy-tailed row-length
//! variance (`nnz_sd` beyond [`MERGE_SD_SKEW`]`·nnz_avg`) ⇒ merge-path
//! nonzero split; highly uneven row lengths below that (`nnz_max` vs
//! `nnz_avg`) ⇒ decomposition; computational unevenness ⇒ auto scheduling.
//!
//! The MB subcategory choice is the symmetric extension: an **exactly
//! symmetric** matrix (`features.is_symmetric`) takes the SSS triangle
//! split — each stored off-diagonal element is streamed once and used twice,
//! halving the matrix line traffic where delta compression only shaves the
//! index stream — and an asymmetric one keeps delta compression.

use sparseopt_classifier::{Bottleneck, ClassSet};
use sparseopt_core::prelude::*;
use sparseopt_core::CsrKernelConfig;
use sparseopt_matrix::MatrixFeatures;
use sparseopt_sim::{SimFormat, SimKernelConfig};
use std::sync::Arc;

/// An individual optimization from the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Optimization {
    /// Delta-compress column indices + vectorize (MB).
    CompressVectorize,
    /// Symmetric (SSS) storage — lower triangle + diagonal only — +
    /// vectorize (MB, symmetric matrices): the other classic traffic
    /// halver, cutting the value stream too, not just the index stream.
    SymCompress,
    /// Software prefetching on `x` (ML).
    Prefetch,
    /// Split out long rows (IMB, uneven row lengths).
    Decompose,
    /// Merge-path nonzero split (IMB, dominant rows / heavy-tailed
    /// variance): balance *within* rows, no format conversion.
    MergeSplit,
    /// Delegate scheduling to the runtime heuristic (IMB, uneven regions).
    AutoSchedule,
    /// Vectorize via SELL-C-σ conversion (CMP): rows sorted by length
    /// within σ windows and packed into C-row chunks whose slot-major
    /// layout feeds vector lanes with stride-1 value/index streams. This
    /// replaced the historical "unroll + vectorize the CSR inner loop"
    /// remediation, whose per-row remainder/masking cost made blind
    /// vectorization *slower* than scalar on short-row matrices (paper
    /// Fig. 1 — and our own bench trajectory, where `csr-simd` sat at
    /// 0.6–0.75× of the scalar baseline on every suite matrix).
    Vectorize,
}

impl Optimization {
    /// All pool members: the paper's "total of 5" plus the merge-path
    /// nonzero split and the symmetric-storage compression.
    pub const ALL: [Optimization; 7] = [
        Optimization::CompressVectorize,
        Optimization::SymCompress,
        Optimization::Prefetch,
        Optimization::Decompose,
        Optimization::MergeSplit,
        Optimization::AutoSchedule,
        Optimization::Vectorize,
    ];

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Optimization::CompressVectorize => "compress+vec",
            Optimization::SymCompress => "sym-compress",
            Optimization::Prefetch => "prefetch",
            Optimization::Decompose => "decompose",
            Optimization::MergeSplit => "merge-split",
            Optimization::AutoSchedule => "auto-sched",
            Optimization::Vectorize => "vectorize",
        }
    }

    /// Inverse of [`Self::label`] — used by the persistent plan cache to
    /// round-trip serialized plans. `None` for unknown labels, so a
    /// hand-edited cache entry is rejected rather than misread.
    pub fn parse_label(label: &str) -> Option<Optimization> {
        Optimization::ALL.into_iter().find(|o| o.label() == label)
    }

    /// The class this optimization addresses (Table II row).
    pub fn target_class(self) -> Bottleneck {
        match self {
            Optimization::CompressVectorize | Optimization::SymCompress => Bottleneck::Mb,
            Optimization::Prefetch => Bottleneck::Ml,
            Optimization::Decompose | Optimization::MergeSplit | Optimization::AutoSchedule => {
                Bottleneck::Imb
            }
            Optimization::Vectorize => Bottleneck::Cmp,
        }
    }
}

/// Row-length skew factor above which the IMB optimization decomposes rather
/// than reschedules (`nnz_max > LONG_ROW_SKEW · nnz_avg`).
pub const LONG_ROW_SKEW: f64 = 16.0;

/// Share of all nonzeros a single row must hold before the IMB remediation
/// is the merge-path nonzero split: above this no whole-row quota (for any
/// realistic thread count) can contain the row, so balance must come from
/// splitting *inside* it.
pub const MERGE_ROW_SHARE: f64 = 0.25;

/// Row-length standard deviation factor (`nnz_sd > MERGE_SD_SKEW · nnz_avg`)
/// marking a heavy-tailed distribution: many medium-long rows fragment every
/// whole-row quota, which the nonzero split absorbs without the format
/// conversion a decomposition pays.
pub const MERGE_SD_SKEW: f64 = 8.0;

/// Long-row threshold factor handed to the decomposition
/// (`threshold = LONG_ROW_FACTOR · nnz_avg`).
pub const LONG_ROW_FACTOR: f64 = 4.0;

/// Minimum average row length for the vectorized inner loop to pay off:
/// below this, gather setup and remainder handling dominate and the JIT
/// emits the unrolled scalar loop instead (the paper's codegen decides
/// per matrix; blind vectorization of short rows is a Fig. 1 slowdown).
pub const VECTOR_MIN_AVG_ROW: f64 = 8.0;

/// Maps a detected class set to the jointly applied optimizations,
/// using features to disambiguate the IMB subcategory.
pub fn select_optimizations(classes: ClassSet, features: &MatrixFeatures) -> Vec<Optimization> {
    let mut opts = Vec::new();
    if classes.contains(Bottleneck::Mb) {
        // MB subcategory: an exactly symmetric matrix halves the whole
        // matrix stream with the SSS triangle split; anything else can only
        // shave the index stream with delta compression.
        if features.is_symmetric > 0.5 {
            opts.push(Optimization::SymCompress);
        } else {
            opts.push(Optimization::CompressVectorize);
        }
    }
    if classes.contains(Bottleneck::Ml) {
        opts.push(Optimization::Prefetch);
    }
    if classes.contains(Bottleneck::Imb) {
        let avg = features.nnz_avg.max(1e-12);
        // Order matters: by the Bhatia–Davis inequality `sd² ≤ avg·max` for
        // non-negative row lengths, `sd > 8·avg` implies `max > 64·avg`, so
        // the heavy-tail check must come *before* the long-row check or it
        // could never fire.
        if features.nnz_max > MERGE_ROW_SHARE * features.nnz as f64 {
            // A single row dominates the whole matrix: split within it.
            opts.push(Optimization::MergeSplit);
        } else if features.nnz_sd > MERGE_SD_SKEW * avg {
            // Heavy tail: enough long-row mass to fragment every whole-row
            // quota — balance within rows, no format conversion.
            opts.push(Optimization::MergeSplit);
        } else if features.nnz_max > LONG_ROW_SKEW * avg {
            // A few isolated long rows over a regular background (extreme
            // max, modest overall dispersion): splitting just those rows
            // out is cheap and keeps the plain row kernel for the rest.
            opts.push(Optimization::Decompose);
        } else {
            opts.push(Optimization::AutoSchedule);
        }
    }
    if classes.contains(Bottleneck::Cmp) {
        opts.push(Optimization::Vectorize);
    }
    opts
}

/// What a consumer needs from the operator a plan builds. Solvers that
/// apply `Aᵀ` (BiCG, LSQR/CGNR) or whole multi-vectors (block Krylov) pass
/// their requirements through the adaptive optimizer, which validates the
/// built operator's [`OpCapabilities`] against them — the plan carries the
/// requirement, the operator carries the capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OpRequirements {
    /// Transposed application will be called.
    pub transpose: bool,
    /// Multi-vector application will be called.
    pub multi_vec: bool,
}

impl OpRequirements {
    /// Forward single-vector consumers (CG, BiCGSTAB, GMRES).
    pub const fn spmv() -> Self {
        Self {
            transpose: false,
            multi_vec: false,
        }
    }

    /// The full application space (transpose-consuming block solvers).
    pub const fn full() -> Self {
        Self {
            transpose: true,
            multi_vec: true,
        }
    }

    /// The capability record an operator must satisfy.
    pub fn as_capabilities(&self) -> OpCapabilities {
        OpCapabilities {
            transpose: self.transpose,
            multi_vec: self.multi_vec,
        }
    }
}

/// A concrete, jointly-applied optimization plan.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizationPlan {
    /// Detected classes this plan addresses.
    pub classes: ClassSet,
    /// The pool members applied.
    pub optimizations: Vec<Optimization>,
    /// Long-row threshold when decomposition participates.
    pub decompose_threshold: Option<usize>,
    /// Inner-loop flavor the "vectorization" optimizations resolve to for
    /// this matrix (SIMD for long rows, unrolled for short ones).
    pub inner: InnerLoop,
}

impl OptimizationPlan {
    /// Builds the plan for a class set (Table II composition rules).
    pub fn from_classes(classes: ClassSet, features: &MatrixFeatures) -> Self {
        let optimizations = select_optimizations(classes, features);
        Self::assemble(classes, optimizations, features)
    }

    /// Shared constructor: resolves the threshold and inner-loop choices.
    fn assemble(
        classes: ClassSet,
        optimizations: Vec<Optimization>,
        features: &MatrixFeatures,
    ) -> Self {
        let decompose_threshold = optimizations
            .contains(&Optimization::Decompose)
            .then(|| ((features.nnz_avg * LONG_ROW_FACTOR).ceil() as usize).max(8));
        let wants_vector = optimizations.iter().any(|o| {
            matches!(
                o,
                Optimization::CompressVectorize
                    | Optimization::SymCompress
                    | Optimization::Vectorize
            )
        });
        let inner = if !wants_vector {
            InnerLoop::Scalar
        } else if features.nnz_avg >= VECTOR_MIN_AVG_ROW {
            InnerLoop::Simd
        } else {
            InnerLoop::Unrolled4
        };
        Self {
            classes,
            optimizations,
            decompose_threshold,
            inner,
        }
    }

    /// The explicit no-op plan (baseline kernel).
    pub fn baseline() -> Self {
        Self {
            classes: ClassSet::EMPTY,
            optimizations: Vec::new(),
            decompose_threshold: None,
            inner: InnerLoop::Scalar,
        }
    }

    /// Builds a plan for an explicit optimization combination (used by the
    /// trivial optimizers and the oracle sweep).
    pub fn from_optimizations(opts: &[Optimization], features: &MatrixFeatures) -> Self {
        let mut classes = ClassSet::EMPTY;
        for o in opts {
            classes.insert(o.target_class());
        }
        Self::assemble(classes, opts.to_vec(), features)
    }

    /// Reconstructs a plan from its serialized parts (the persistent plan
    /// cache's deserialization path). Classes are re-derived from each
    /// optimization's target class; the inner loop and decomposition
    /// threshold are taken verbatim — a cached winner must rebuild exactly
    /// the operator that was measured, not re-resolve against features.
    pub fn from_saved(
        optimizations: Vec<Optimization>,
        inner: InnerLoop,
        decompose_threshold: Option<usize>,
    ) -> Self {
        let mut classes = ClassSet::EMPTY;
        for o in &optimizations {
            classes.insert(o.target_class());
        }
        Self {
            classes,
            optimizations,
            decompose_threshold,
            inner,
        }
    }

    /// True when this plan changes nothing.
    pub fn is_noop(&self) -> bool {
        self.optimizations.is_empty()
    }

    /// The modeled kernel configuration for the simulator. Precedence among
    /// format/partitioning changes mirrors [`Self::build_host_kernel`]:
    /// merge split > decomposition > compression > SELL-C-σ.
    pub fn to_sim_config(&self) -> SimKernelConfig {
        let has = |o: Optimization| self.optimizations.contains(&o);
        let format = if has(Optimization::MergeSplit) {
            SimFormat::MergeCsr
        } else if let Some(t) = self.decompose_threshold {
            SimFormat::Decomposed { threshold: t }
        } else if has(Optimization::SymCompress) {
            SimFormat::SymCsr
        } else if has(Optimization::CompressVectorize) {
            SimFormat::DeltaCsr
        } else if has(Optimization::Vectorize) {
            SimFormat::SellCs
        } else {
            SimFormat::Csr
        };
        let schedule = if has(Optimization::AutoSchedule) {
            Schedule::Auto
        } else {
            Schedule::StaticNnz
        };
        SimKernelConfig {
            format,
            inner: self.inner,
            prefetch: has(Optimization::Prefetch),
            schedule,
        }
    }

    /// Builds the real, runnable operator implementing the plan on the
    /// host. Precedence when format/partitioning-changing optimizations
    /// collide: the merge-path nonzero split wins over decomposition (it
    /// subsumes the long-row remediation without a format conversion),
    /// which wins over the symmetric triangle split, which wins over delta
    /// compression (a decomposed matrix keeps plain indices), which wins
    /// over the SELL-C-σ conversion (the delta kernel already vectorizes
    /// its decoded rows). A
    /// `sym-compress` plan built against a matrix that turns out not to be
    /// exactly symmetric (possible only through the blind
    /// [`OptimizationPlan::from_optimizations`] path — the class-derived
    /// selection gates on `features.is_symmetric`) degrades to delta
    /// compression, the other MB remediation. Every format operator covers
    /// the full `{NoTrans, Trans} × {vec, multivec}` space, so the result
    /// serves any consumer; [`Self::build_host_op`] additionally checks an
    /// explicit requirement set.
    pub fn build_host_kernel(
        &self,
        csr: &Arc<CsrMatrix>,
        ctx: Arc<ExecCtx>,
    ) -> Box<dyn SparseLinOp> {
        let has = |o: Optimization| self.optimizations.contains(&o);
        let inner = self.inner;
        let prefetch = has(Optimization::Prefetch);
        let schedule = if has(Optimization::AutoSchedule) {
            Schedule::Auto
        } else {
            Schedule::StaticNnz
        };

        if has(Optimization::MergeSplit) {
            // The nonzero split replaces scheduling entirely: its 2-D
            // partition is the schedule.
            Box::new(MergeCsr::new(csr.clone(), inner, prefetch, ctx))
        } else if let Some(threshold) = self.decompose_threshold {
            let dec = Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold));
            Box::new(DecomposedKernel::new(dec, inner, prefetch, schedule, ctx))
        } else if has(Optimization::SymCompress) {
            match SssCsr::try_from_csr(csr) {
                Some(sss) => Box::new(SymCsr::new(Arc::new(sss), inner, prefetch, ctx)),
                // Blindly-assembled plan on an asymmetric matrix: degrade to
                // the other MB remediation instead of computing nonsense.
                None => {
                    let delta = Arc::new(DeltaCsrMatrix::from_csr(csr));
                    Box::new(DeltaKernel::new(delta, inner, prefetch, schedule, ctx))
                }
            }
        } else if has(Optimization::CompressVectorize) {
            let delta = Arc::new(DeltaCsrMatrix::from_csr(csr));
            Box::new(DeltaKernel::new(delta, inner, prefetch, schedule, ctx))
        } else if has(Optimization::Vectorize) {
            // The CMP remediation is a format conversion now: SELL-C-σ with
            // the per-chunk vectorized/unrolled kernels (the chunk kernel
            // dispatches itself by lane width, so the plan's `inner` hint is
            // subsumed; prefetch does not apply to the stride-1 streams).
            let sell = Arc::new(SellMatrix::from_csr(csr));
            Box::new(SellKernel::vectorized(sell, ctx))
        } else {
            let cfg = CsrKernelConfig {
                inner,
                prefetch,
                schedule,
            };
            Box::new(ParallelCsr::new(csr.clone(), cfg, ctx))
        }
    }

    /// Builds the plan's operator and validates it against the consumer's
    /// requirements.
    ///
    /// # Panics
    /// Panics if the built operator cannot satisfy `reqs` — loud by design:
    /// a silent substitute would leave this plan's label and preprocessing
    /// cost describing an operator that never ran. Callers wanting a
    /// fallback handle it themselves and record the substituted plan (see
    /// `AdaptiveOptimizer::optimize_profiled_for`). Every format operator
    /// currently covers the full application space, so this only fires if a
    /// restricted operator is ever added to the plan space.
    pub fn build_host_op(
        &self,
        csr: &Arc<CsrMatrix>,
        ctx: Arc<ExecCtx>,
        reqs: &OpRequirements,
    ) -> Box<dyn SparseLinOp> {
        let op = self.build_host_kernel(csr, ctx);
        assert!(
            op.capabilities().satisfies(&reqs.as_capabilities()),
            "plan `{}` built operator `{}` lacking required capabilities {reqs:?}",
            self.label(),
            op.name(),
        );
        op
    }

    /// Display string, e.g. `prefetch+decompose`.
    pub fn label(&self) -> String {
        if self.is_noop() {
            return "baseline".into();
        }
        self.optimizations
            .iter()
            .map(|o| o.label())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// The pool members applicable to one matrix: `sym-compress` only enters a
/// sweep when the matrix is exactly symmetric — on anything else its
/// operator cannot even be built, so enumerating (and simulating) it would
/// let the oracle pick a plan that can never run.
fn applicable_pool(features: &MatrixFeatures) -> Vec<Optimization> {
    Optimization::ALL
        .iter()
        .copied()
        .filter(|&o| o != Optimization::SymCompress || features.is_symmetric > 0.5)
        .collect()
}

/// All single-optimization plans (the paper's trivial-single sweep over the
/// 5 Table II members, widened by the merge split and — for symmetric
/// matrices — the SSS triangle split: 6 or 7 singles).
pub fn single_plans(features: &MatrixFeatures) -> Vec<OptimizationPlan> {
    applicable_pool(features)
        .into_iter()
        .map(|o| OptimizationPlan::from_optimizations(&[o], features))
        .collect()
}

/// All singles plus every pair — the paper's trivial-combined sweep
/// ("combinations of 2"): 6 + C(6,2) = 21 plans on a general matrix,
/// 7 + C(7,2) = 28 on a symmetric one.
pub fn single_and_pair_plans(features: &MatrixFeatures) -> Vec<OptimizationPlan> {
    let mut plans = single_plans(features);
    let all = applicable_pool(features);
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            // The IMB remediations are alternatives for the same class;
            // their pairs are still enumerated (the trivial optimizer is
            // blind) and resolve by the build precedence.
            plans.push(OptimizationPlan::from_optimizations(
                &[all[i], all[j]],
                features,
            ));
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_matrix::generators as g;

    const LLC: usize = 32 * 1024 * 1024;

    fn feats(csr: &CsrMatrix) -> MatrixFeatures {
        MatrixFeatures::extract(csr, LLC)
    }

    #[test]
    fn table2_mapping() {
        let m = CsrMatrix::from_coo(&g::banded(500, 2));
        let f = feats(&m);
        let one = |c| select_optimizations(ClassSet::from_classes(&[c]), &f);
        assert_eq!(one(Bottleneck::Mb), vec![Optimization::CompressVectorize]);
        assert_eq!(one(Bottleneck::Ml), vec![Optimization::Prefetch]);
        assert_eq!(one(Bottleneck::Cmp), vec![Optimization::Vectorize]);
        // Regular row lengths: IMB resolves to auto scheduling.
        assert_eq!(one(Bottleneck::Imb), vec![Optimization::AutoSchedule]);
    }

    #[test]
    fn imb_decomposes_on_isolated_long_rows() {
        // A few isolated long rows over a large regular background: extreme
        // max/avg (> LONG_ROW_SKEW) but modest dispersion (sd below
        // MERGE_SD_SKEW·avg) and a tiny nonzero share — the shape where
        // splitting out the handful of long rows stays the right call.
        let mut coo = sparseopt_core::coo::CooMatrix::new(5000, 5000);
        for i in 0..5000 {
            for j in 0..5 {
                coo.push(i, (i + j * 7) % 5000, 1.0);
            }
        }
        for r in [100usize, 2500, 4900] {
            for j in 0..300 {
                coo.push(r, (j * 13) % 5000, 0.5);
            }
        }
        let m = CsrMatrix::from_coo(&coo);
        let f = feats(&m);
        assert!(f.nnz_max > LONG_ROW_SKEW * f.nnz_avg);
        assert!(f.nnz_sd <= MERGE_SD_SKEW * f.nnz_avg, "sd {}", f.nnz_sd);
        let opts = select_optimizations(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert_eq!(opts, vec![Optimization::Decompose]);
        let plan = OptimizationPlan::from_classes(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert!(plan.decompose_threshold.is_some());
    }

    #[test]
    fn imb_merge_splits_on_heavy_tail_without_dominant_row() {
        // Many dense-ish rows, none holding MERGE_ROW_SHARE of the matrix:
        // the heavy-tail rule (sd > MERGE_SD_SKEW·avg) must pick the
        // nonzero split — this branch sits *before* the long-row check
        // because sd² ≤ avg·max makes it unreachable afterwards.
        let m = CsrMatrix::from_coo(&g::few_dense_rows(3000, 2, 3, 1));
        let f = feats(&m);
        assert!(f.nnz_max < MERGE_ROW_SHARE * f.nnz as f64 + 1.0);
        assert!(f.nnz_sd > MERGE_SD_SKEW * f.nnz_avg);
        let opts = select_optimizations(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert_eq!(opts, vec![Optimization::MergeSplit]);
    }

    #[test]
    fn joint_plan_composes() {
        let m = CsrMatrix::from_coo(&g::random_uniform(2000, 6, 3));
        let f = feats(&m);
        let classes = ClassSet::from_classes(&[Bottleneck::Ml, Bottleneck::Imb]);
        let plan = OptimizationPlan::from_classes(classes, &f);
        assert_eq!(plan.optimizations.len(), 2);
        let cfg = plan.to_sim_config();
        assert!(cfg.prefetch);
        assert_eq!(cfg.schedule, Schedule::Auto);
    }

    #[test]
    fn plan_counts_cover_the_widened_pool() {
        // Asymmetric matrix: the paper's 5 + merge split = 6 singles, plus
        // C(6,2) pairs (sym-compress is inapplicable and filtered out).
        let m = CsrMatrix::from_coo(&g::banded(300, 1));
        let f = feats(&m);
        assert_eq!(f.is_symmetric, 0.0);
        assert_eq!(single_plans(&f).len(), 6);
        assert_eq!(single_and_pair_plans(&f).len(), 21);

        // Symmetric matrix: the SSS triangle split joins the sweep.
        let m = CsrMatrix::from_coo(&g::poisson2d(20, 20));
        let f = feats(&m);
        assert_eq!(f.is_symmetric, 1.0);
        assert_eq!(single_plans(&f).len(), 7);
        assert_eq!(single_and_pair_plans(&f).len(), 28);
    }

    #[test]
    fn mb_picks_sym_compress_on_symmetric_matrices_only() {
        let mb = ClassSet::from_classes(&[Bottleneck::Mb]);

        let sym = CsrMatrix::from_coo(&g::symmetric_banded(2000, 3));
        let f = feats(&sym);
        let opts = select_optimizations(mb, &f);
        assert_eq!(opts, vec![Optimization::SymCompress]);
        let plan = OptimizationPlan::from_classes(mb, &f);
        assert_eq!(plan.to_sim_config().format, SimFormat::SymCsr);
        let csr = Arc::new(sym);
        let op = plan.build_host_kernel(&csr, ExecCtx::new(2));
        assert!(op.name().starts_with("sym-sss"), "got {}", op.name());
        // And it computes the right product.
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut y = vec![f64::NAN; 2000];
        op.spmv(&x, &mut y);
        let mut want = vec![0.0; 2000];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }

        // Asymmetric MB matrix keeps delta compression.
        let gen = CsrMatrix::from_coo(&g::banded(2000, 3));
        let f = feats(&gen);
        assert_eq!(
            select_optimizations(mb, &f),
            vec![Optimization::CompressVectorize]
        );
    }

    #[test]
    fn blind_sym_compress_plan_degrades_to_delta_on_asymmetric_matrix() {
        // Only the blind from_optimizations path can pair sym-compress with
        // an asymmetric matrix; the build must fall back to the other MB
        // remediation rather than panic or compute with a wrong matrix.
        let m = CsrMatrix::from_coo(&g::random_uniform(500, 4, 9));
        let f = feats(&m);
        let plan = OptimizationPlan::from_optimizations(&[Optimization::SymCompress], &f);
        let csr = Arc::new(m);
        let op = plan.build_host_kernel(&csr, ExecCtx::new(2));
        assert!(op.name().starts_with("csr-delta"), "got {}", op.name());
        let x: Vec<f64> = (0..500).map(|i| 0.5 + (i as f64 * 0.3).cos()).collect();
        let mut y = vec![f64::NAN; 500];
        op.spmv(&x, &mut y);
        let mut want = vec![0.0; 500];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn imb_merge_splits_on_dominant_row() {
        // The power-law hub concentrates ≥ 30% of nonzeros in one row:
        // beyond any whole-row quota, so the pool must pick the nonzero
        // split over decomposition.
        let m = CsrMatrix::from_coo(&g::power_law_hub(4000, 2, 7));
        let f = feats(&m);
        assert!(
            f.nnz_max > MERGE_ROW_SHARE * f.nnz as f64,
            "hub must dominate: max {} of {}",
            f.nnz_max,
            f.nnz
        );
        let opts = select_optimizations(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert_eq!(opts, vec![Optimization::MergeSplit]);
        let plan = OptimizationPlan::from_classes(ClassSet::from_classes(&[Bottleneck::Imb]), &f);
        assert_eq!(plan.to_sim_config().format, SimFormat::MergeCsr);
        let op = plan.build_host_kernel(&Arc::new(m), ExecCtx::new(2));
        assert!(op.name().starts_with("csr-merge"), "got {}", op.name());
    }

    #[test]
    fn merge_split_takes_precedence_in_joint_plans() {
        let m = CsrMatrix::from_coo(&g::power_law_hub(2000, 2, 3));
        let f = feats(&m);
        let plan = OptimizationPlan::from_optimizations(
            &[Optimization::MergeSplit, Optimization::Decompose],
            &f,
        );
        assert_eq!(plan.to_sim_config().format, SimFormat::MergeCsr);
        let csr = Arc::new(m);
        let op = plan.build_host_kernel(&csr, ExecCtx::new(2));
        assert!(op.name().starts_with("csr-merge"), "got {}", op.name());
        // And the built operator still computes A·x correctly.
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut y = vec![f64::NAN; csr.nrows()];
        op.spmv(&x, &mut y);
        let mut want = vec![0.0; csr.nrows()];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn cmp_plan_builds_the_sell_operator() {
        // The CMP remediation is the SELL-C-σ conversion now — both the
        // modeled format and the built host operator must say so.
        let m = CsrMatrix::from_coo(&g::random_uniform(2000, 12, 5));
        let f = feats(&m);
        let cmp = ClassSet::from_classes(&[Bottleneck::Cmp]);
        let plan = OptimizationPlan::from_classes(cmp, &f);
        assert_eq!(plan.optimizations, vec![Optimization::Vectorize]);
        assert_eq!(plan.to_sim_config().format, SimFormat::SellCs);
        let csr = Arc::new(m);
        let op = plan.build_host_kernel(&csr, ExecCtx::new(2));
        assert!(op.name().starts_with("sell-c"), "got {}", op.name());
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut y = vec![f64::NAN; 2000];
        op.spmv(&x, &mut y);
        let mut want = vec![0.0; 2000];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for (a, b) in y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn host_kernels_all_compute_correctly() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(400, 3, 2, 9)));
        let f = feats(&csr);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut reference = vec![0.0; 400];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let ctx = ExecCtx::new(3);
        for plan in single_and_pair_plans(&f) {
            let k = plan.build_host_kernel(&csr, ctx.clone());
            let mut y = vec![f64::NAN; 400];
            k.spmv(&x, &mut y);
            for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "row {i} mismatch under plan {}",
                    plan.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_informative() {
        let m = CsrMatrix::from_coo(&g::banded(300, 1));
        let f = feats(&m);
        let plan = OptimizationPlan::from_optimizations(
            &[Optimization::Prefetch, Optimization::Vectorize],
            &f,
        );
        assert_eq!(plan.label(), "prefetch+vectorize");
        assert_eq!(OptimizationPlan::baseline().label(), "baseline");
    }
}
