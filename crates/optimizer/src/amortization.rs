//! Amortization analysis — Table V of the paper (Section IV-D).
//!
//! An optimizer is worthwhile inside an iterative solver once its one-time
//! overhead `t_pre` is repaid by the per-iteration SpMV savings:
//!
//! ```text
//! N_iters,min = t_pre / (t_MKL − t_optimizer)
//! ```
//!
//! `t_pre` is modeled in units of one baseline SpMV execution, with the
//! paper's protocol costs: each empirical trial runs 64 SpMV iterations "to
//! get valid timing measurements"; compression/decomposition pay format
//! conversion passes; runtime code generation (JIT) pays a fixed cost.

use crate::pool::{Optimization, OptimizationPlan};

/// Empirical-trial iteration count (paper: "We run 64 SpMV iterations").
pub const TRIAL_ITERS: f64 = 64.0;

/// JIT code-generation cost, in baseline-SpMV equivalents.
pub const JIT_COST_SPMV: f64 = 30.0;

/// Format-conversion costs, in baseline-SpMV equivalents.
pub fn conversion_cost_spmv(opt: Optimization) -> f64 {
    match opt {
        // Delta encoding: width scan + encode pass + copy.
        Optimization::CompressVectorize => 3.0,
        // Triangle split: exact symmetry verification (one binary search
        // per off-diagonal element) + lower-triangle rebuild + the windowed
        // scatter-plan construction — slightly cheaper than delta encoding
        // (no per-element re-encoding), dearer than decomposition.
        Optimization::SymCompress => 2.5,
        // Decomposition: long-row scan + array rebuild.
        Optimization::Decompose => 2.0,
        // Merge-path split: `nthreads · log nrows` diagonal searches plus
        // the segment table — no matrix rebuild, far below one SpMV, but
        // not free (the searches touch the whole row pointer range).
        Optimization::MergeSplit => 0.5,
        // SELL-C-σ conversion: σ-window sort, slot-major pack, permutation
        // table — a full rebuild, comparable to decomposition's.
        Optimization::Vectorize => 2.0,
        // Scheduling / prefetch only parameterize the generated kernel;
        // their cost is inside the JIT constant.
        Optimization::AutoSchedule | Optimization::Prefetch => 0.0,
    }
}

/// Total conversion cost of a plan.
pub fn plan_conversion_cost_spmv(plan: &OptimizationPlan) -> f64 {
    plan.optimizations
        .iter()
        .map(|&o| conversion_cost_spmv(o))
        .sum()
}

/// Setup cost of a plan in baseline-SpMV equivalents, preferring a
/// *measured* value when the tuning layer recorded one.
///
/// The fixed per-optimization charges in [`conversion_cost_spmv`] model the
/// paper's Table V protocol and remain the cold-start fallback; once the
/// empirical tuner has timed the actual conversion + operator construction
/// on the target matrix (see `PlanTuner`), that wall-clock number — already
/// normalized to baseline-SpMV units — replaces the model.
pub fn plan_setup_cost_spmv(plan: &OptimizationPlan, measured: Option<f64>) -> f64 {
    match measured {
        Some(m) if m.is_finite() && m >= 0.0 => m,
        _ => plan_conversion_cost_spmv(plan),
    }
}

/// The five optimizer strategies Table V compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Runs all 5 single optimizations empirically, keeps the best.
    TrivialSingle,
    /// Runs all 15 single+pair combinations empirically, keeps the best.
    TrivialCombined,
    /// Profile-guided classification (micro-benchmarks) + selected plan.
    ProfileGuided,
    /// Feature-guided classification (feature pass + tree query) + plan.
    FeatureGuided,
    /// MKL Inspector-Executor (inspection pass + tuned kernel).
    InspectorExecutor,
}

impl OptimizerKind {
    /// All strategies in Table V row order.
    pub const ALL: [OptimizerKind; 5] = [
        OptimizerKind::TrivialSingle,
        OptimizerKind::TrivialCombined,
        OptimizerKind::ProfileGuided,
        OptimizerKind::FeatureGuided,
        OptimizerKind::InspectorExecutor,
    ];

    /// Table V row label.
    pub fn label(self) -> &'static str {
        match self {
            OptimizerKind::TrivialSingle => "trivial-single",
            OptimizerKind::TrivialCombined => "trivial-combined",
            OptimizerKind::ProfileGuided => "profile-guided",
            OptimizerKind::FeatureGuided => "feature-guided",
            OptimizerKind::InspectorExecutor => "MKL Inspector-Executor",
        }
    }

    /// Models `t_pre` in baseline-SpMV equivalents.
    ///
    /// * `selected` — the plan the optimizer ends up applying (its conversion
    ///   cost is always paid);
    /// * `all_plans_cost` — summed conversion cost of every plan a trivial
    ///   optimizer must set up;
    /// * `nnz_over_n` — average row length, scaling the feature-extraction
    ///   pass relative to one SpMV.
    pub fn preprocessing_spmv_equiv(
        self,
        selected: &OptimizationPlan,
        all_single_cost: f64,
        all_pair_cost: f64,
    ) -> f64 {
        let selected_cost = plan_conversion_cost_spmv(selected) + JIT_COST_SPMV;
        // Candidate counts follow the pool size (7 singles, 7 + C(7,2) = 28
        // single+pair combinations since the merge split and the symmetric
        // triangle split joined the pool; on asymmetric matrices the sweep
        // skips sym-compress, which this upper bound conservatively keeps).
        let n = Optimization::ALL.len() as f64;
        let n_combined = n + n * (n - 1.0) / 2.0;
        match self {
            // Every single-optimization kernel converted, JIT-ed and timed.
            OptimizerKind::TrivialSingle => all_single_cost + n * (TRIAL_ITERS + JIT_COST_SPMV),
            // Every single + pair combination.
            OptimizerKind::TrivialCombined => {
                all_pair_cost + n_combined * (TRIAL_ITERS + JIT_COST_SPMV)
            }
            // Micro-benchmarks: baseline + P_ML kernel + P_CMP kernel, each
            // timed over TRIAL_ITERS; then the chosen plan's setup.
            OptimizerKind::ProfileGuided => 3.0 * TRIAL_ITERS + selected_cost,
            // One feature-extraction pass (≈ half an SpMV: read-only, no y
            // write-back) + O(log n) tree query + the chosen plan's setup.
            OptimizerKind::FeatureGuided => 0.5 + selected_cost,
            // One inspection pass + internal tuning heuristics.
            OptimizerKind::InspectorExecutor => 1.0 + 10.0,
        }
    }
}

/// Minimum solver iterations to amortize `t_pre` (all in seconds):
/// `N = t_pre / (t_mkl − t_opt)`. Returns `None` when the optimizer is not
/// faster than MKL (never amortizes).
pub fn amortization_iters(t_pre: f64, t_mkl: f64, t_opt: f64) -> Option<f64> {
    let gain = t_mkl - t_opt;
    if gain <= 0.0 {
        None
    } else {
        Some(t_pre / gain)
    }
}

/// Best / average / worst amortization rows as printed in Table V.
#[derive(Clone, Debug, Default)]
pub struct AmortizationRow {
    /// Strategy.
    pub label: &'static str,
    /// Minimum over the suite (best case).
    pub best: f64,
    /// Mean over matrices that do amortize.
    pub avg: f64,
    /// Maximum over the suite (worst case).
    pub worst: f64,
    /// Matrices that never amortize (optimizer not faster than MKL).
    pub never: usize,
}

/// Summarizes per-matrix amortization counts into a Table V row.
pub fn summarize(label: &'static str, iters: &[Option<f64>]) -> AmortizationRow {
    let finite: Vec<f64> = iters.iter().flatten().copied().collect();
    let never = iters.len() - finite.len();
    if finite.is_empty() {
        return AmortizationRow {
            label,
            best: f64::NAN,
            avg: f64::NAN,
            worst: f64::NAN,
            never,
        };
    }
    AmortizationRow {
        label,
        best: finite.iter().copied().fold(f64::INFINITY, f64::min),
        avg: finite.iter().sum::<f64>() / finite.len() as f64,
        worst: finite.iter().copied().fold(0.0, f64::max),
        never,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::OptimizationPlan;
    use sparseopt_core::csr::CsrMatrix;
    use sparseopt_matrix::{generators as g, MatrixFeatures};

    fn plan(opts: &[Optimization]) -> OptimizationPlan {
        let m = CsrMatrix::from_coo(&g::banded(200, 1));
        let f = MatrixFeatures::extract(&m, 1 << 25);
        OptimizationPlan::from_optimizations(opts, &f)
    }

    #[test]
    fn amortization_formula() {
        assert_eq!(amortization_iters(10.0, 2.0, 1.0), Some(10.0));
        assert_eq!(amortization_iters(10.0, 1.0, 2.0), None);
        assert_eq!(amortization_iters(10.0, 1.0, 1.0), None);
    }

    #[test]
    fn feature_guided_is_cheapest_of_our_strategies() {
        // Table V: feature-guided is "by far the most lightweight" of the
        // classifier-driven optimizers; the Inspector-Executor's raw setup is
        // also small (its disadvantage in Table V comes from smaller
        // per-iteration gains, which the amortization denominator captures).
        let p = plan(&[Optimization::Prefetch]);
        let single: f64 = Optimization::ALL
            .iter()
            .map(|&o| conversion_cost_spmv(o))
            .sum();
        let pair = single * 4.0; // loose bound, shape only
        let feature = OptimizerKind::FeatureGuided.preprocessing_spmv_equiv(&p, single, pair);
        for kind in [
            OptimizerKind::TrivialSingle,
            OptimizerKind::TrivialCombined,
            OptimizerKind::ProfileGuided,
        ] {
            let c = kind.preprocessing_spmv_equiv(&p, single, pair);
            assert!(
                feature < c,
                "{:?} ({c}) should cost more than feature ({feature})",
                kind
            );
        }
    }

    #[test]
    fn trivial_combined_costs_most() {
        let p = plan(&[]);
        let tc = OptimizerKind::TrivialCombined.preprocessing_spmv_equiv(&p, 5.0, 15.0);
        let ts = OptimizerKind::TrivialSingle.preprocessing_spmv_equiv(&p, 5.0, 15.0);
        let pg = OptimizerKind::ProfileGuided.preprocessing_spmv_equiv(&p, 5.0, 15.0);
        assert!(tc > ts && ts > pg);
    }

    #[test]
    fn conversion_costs_follow_format_changes() {
        assert!(conversion_cost_spmv(Optimization::CompressVectorize) > 0.0);
        assert!(conversion_cost_spmv(Optimization::Decompose) > 0.0);
        assert_eq!(conversion_cost_spmv(Optimization::Prefetch), 0.0);
        let p = plan(&[Optimization::CompressVectorize, Optimization::Prefetch]);
        assert_eq!(plan_conversion_cost_spmv(&p), 3.0);
    }

    #[test]
    fn measured_setup_overrides_fixed_charges() {
        let p = plan(&[Optimization::CompressVectorize]);
        assert_eq!(plan_setup_cost_spmv(&p, None), 3.0);
        assert_eq!(plan_setup_cost_spmv(&p, Some(1.25)), 1.25);
        // Garbage measurements fall back to the model rather than poisoning
        // the amortization analysis.
        assert_eq!(plan_setup_cost_spmv(&p, Some(f64::NAN)), 3.0);
        assert_eq!(plan_setup_cost_spmv(&p, Some(-1.0)), 3.0);
    }

    #[test]
    fn summarize_handles_never_amortizing() {
        let rows = summarize("x", &[Some(10.0), None, Some(30.0)]);
        assert_eq!(rows.best, 10.0);
        assert_eq!(rows.avg, 20.0);
        assert_eq!(rows.worst, 30.0);
        assert_eq!(rows.never, 1);
        let empty = summarize("y", &[None]);
        assert!(empty.best.is_nan());
        assert_eq!(empty.never, 1);
    }
}
