//! Per-shard plan selection over an on-disk shard container.
//!
//! The out-of-core half of the adaptive optimizer: each row-block shard of
//! a [`ShardStore`](sparseopt_matrix::ShardStore) is streamed through the
//! [`PlanTuner`] *independently* —
//! its own [`MatrixFingerprint`](sparseopt_matrix::MatrixFingerprint), its
//! own classifier/tuner run, its own plan-cache entry — and the chosen
//! [`OptimizationPlan`]s are baked into a `ShardedOp`'s per-shard builder
//! closures. This is the paper's decomposed-class insight hoisted to
//! container granularity: a degree-sorted web crawl's hub-heavy head shard
//! and short-row tail shards legitimately tune to *different* formats.
//!
//! Because the plan cache is keyed by each shard's structural fingerprint,
//! a later process that re-opens the same container (or any container with
//! structurally equivalent shards) warms every shard plan without a single
//! classifier call or timed trial.
//!
//! Compaction re-tuning: when a shard's delta overlay is folded in, the
//! shard's structure has changed, so the builder re-runs the one-shot
//! profile-guided classifier (on the sim profiler for the configured
//! platform) against the merged fragment and adopts the new plan. That path
//! is deliberately measurement-free — it runs on a background thread and
//! must not contend for the timed thread pool.

use crate::optimizers::AdaptiveOptimizer;
use crate::pool::{OpRequirements, OptimizationPlan};
use crate::tuner::{PlanTuner, TuneOutcome};
use sparseopt_classifier::{BoundsProfiler, SimBoundsProfiler};
use sparseopt_core::kernels::{BuildReason, ShardSpec, ShardedOp};
use sparseopt_core::prelude::CsrMatrix;
use sparseopt_sim::Platform;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// What the per-shard planner decided for one row-block shard.
#[derive(Clone, Debug)]
pub struct ShardPlanReport {
    /// Global row range of the shard.
    pub rows: Range<usize>,
    /// Nonzeros in the shard's base fragment.
    pub nnz: usize,
    /// Label of the plan selected at registration time
    /// ([`OptimizationPlan::label`]).
    pub plan_label: String,
    /// Tuning provenance (cache hit / promoted / classifier guess).
    pub outcome: TuneOutcome,
}

/// A tuned out-of-core operator plus its per-shard planning record.
pub struct TunedShardedOp {
    /// The streaming operator, ready to register with a server or solver.
    pub op: Arc<ShardedOp>,
    /// One report per shard, in row order.
    pub shard_plans: Vec<ShardPlanReport>,
}

impl TunedShardedOp {
    /// Distinct plan labels across shards — `> 1` means the per-shard
    /// planner actually diversified formats within one matrix.
    pub fn distinct_plan_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .shard_plans
            .iter()
            .map(|p| p.plan_label.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// True when every shard plan came out of the persistent cache.
    pub fn warm(&self) -> bool {
        self.shard_plans
            .iter()
            .all(|p| p.outcome == TuneOutcome::CacheHit)
    }
}

impl PlanTuner {
    /// Tunes every shard of `store` independently and assembles the
    /// streaming [`ShardedOp`] with per-shard builder closures.
    ///
    /// Shards are loaded **one at a time** — tuning never holds more than a
    /// single fragment resident, so registration respects the same
    /// out-of-core discipline as application. Empty shards (zero nonzeros)
    /// skip classification and get the baseline plan. `retune_platform`
    /// drives the measurement-free re-classification that compaction
    /// triggers after a delta merge.
    ///
    /// The tuned kernels themselves are *not* kept: the `ShardedOp` builds
    /// each shard's kernel lazily from its recorded plan when the shard
    /// enters the streaming window, so cold start costs one build per
    /// window entry, not one per shard.
    pub fn optimize_sharded(
        &self,
        store: Arc<sparseopt_matrix::ShardStore>,
        profiler: &dyn BoundsProfiler,
        retune_platform: Platform,
        window: usize,
    ) -> Result<TunedShardedOp, sparseopt_matrix::ShardError> {
        let reqs = OpRequirements::full();
        let mut specs = Vec::with_capacity(store.nshards());
        let mut shard_plans = Vec::with_capacity(store.nshards());

        for i in 0..store.nshards() {
            let meta = store.meta(i).clone();
            let fragment = Arc::new(store.load(i)?);
            let (plan, outcome) = if fragment.nnz() == 0 {
                (OptimizationPlan::baseline(), TuneOutcome::ClassifierGuess)
            } else {
                let tuned = self.optimize_profiled_for(&fragment, profiler, &reqs);
                (tuned.plan, tuned.outcome)
            };
            shard_plans.push(ShardPlanReport {
                rows: meta.rows.clone(),
                nnz: meta.nnz,
                plan_label: plan.label(),
                outcome,
            });

            let loader_store = store.clone();
            let plan_slot = Arc::new(Mutex::new(plan));
            let ctx = self.ctx().clone();
            let platform = retune_platform.clone();
            specs.push(ShardSpec {
                rows: meta.rows.clone(),
                nnz: meta.nnz,
                loader: Arc::new(move || loader_store.load(i).map_err(|e| e.to_string())),
                builder: Arc::new(move |csr: &Arc<CsrMatrix>, reason| {
                    if reason == BuildReason::Compaction && csr.nnz() > 0 {
                        // Structure changed: re-classify on the sim profiler
                        // (no timed trials — this runs on a background
                        // thread) and adopt the new plan for later rebuilds.
                        let opt = AdaptiveOptimizer::new(ctx.clone());
                        let sim = SimBoundsProfiler::new(platform.clone());
                        let k = opt.optimize_profiled_for(csr, &sim, &OpRequirements::full());
                        *plan_slot.lock().expect("plan slot") = k.plan;
                        return k.kernel;
                    }
                    plan_slot
                        .lock()
                        .expect("plan slot")
                        .build_host_kernel(csr, ctx.clone())
                }),
            });
        }

        let op = Arc::new(ShardedOp::new(
            (store.nrows(), store.ncols()),
            specs,
            window,
        ));
        Ok(TunedShardedOp { op, shard_plans })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::prelude::*;
    use sparseopt_matrix::shard::write_shard_file;
    use sparseopt_matrix::{generators, ShardStore};
    use std::sync::Arc;

    fn store_for(csr: &CsrMatrix, rows_per_shard: usize, name: &str) -> Arc<ShardStore> {
        let path = std::env::temp_dir().join(format!(
            "sparseopt-opt-shard-{}-{name}.shards",
            std::process::id()
        ));
        write_shard_file(&path, csr, rows_per_shard).expect("write");
        let store = Arc::new(ShardStore::open(&path).expect("open"));
        std::fs::remove_file(&path).ok(); // fd/mapping stays valid on unix
        store
    }

    #[test]
    fn sharded_matches_whole_matrix_and_bounds_residency() {
        let csr = CsrMatrix::from_coo(&generators::power_law_sorted(600, 6, 0.9, 11));
        let store = store_for(&csr, 150, "match");
        let ctx = ExecCtx::new(2);
        let tuner = PlanTuner::new(ctx.clone()).with_budget(crate::TuneBudget::minimal());
        let profiler = SimBoundsProfiler::new(Platform::broadwell());
        let tuned = tuner
            .optimize_sharded(store, &profiler, Platform::broadwell(), 2)
            .expect("tune");
        assert_eq!(tuned.shard_plans.len(), 4);

        let reference = SerialCsr::new(Arc::new(csr));
        for apply in Apply::ALL {
            let (out, inp) = apply.out_in(tuned.op.shape());
            let x: Vec<f64> = (0..inp).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let (mut got, mut want) = (vec![0.0; out], vec![0.0; out]);
            tuned.op.apply(apply, &x, &mut got);
            reference.apply(apply, &x, &mut want);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0), "{apply:?}");
            }
        }
        assert!(tuned.op.cached_shards() <= 2);
    }

    #[test]
    fn shard_plans_warm_from_the_cache_on_reopen() {
        let csr = CsrMatrix::from_coo(&generators::power_law_sorted(400, 6, 0.9, 23));
        let store = store_for(&csr, 100, "warm");
        let cache_path = std::env::temp_dir().join(format!(
            "sparseopt-opt-shard-cache-{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&cache_path).ok();
        let profiler = SimBoundsProfiler::new(Platform::broadwell());

        let cold = PlanTuner::with_cache(
            ExecCtx::new(1),
            crate::PlanCache::at_path(cache_path.clone()).0,
        )
        .with_budget(crate::TuneBudget::minimal())
        .optimize_sharded(store.clone(), &profiler, Platform::broadwell(), 2)
        .expect("cold tune");
        assert!(!cold.warm(), "first run cannot be fully warm");

        let (warm_cache, warning) = crate::PlanCache::at_path(cache_path.clone());
        assert!(warning.is_none(), "cache must reload cleanly: {warning:?}");
        let warm = PlanTuner::with_cache(ExecCtx::new(1), warm_cache)
            .with_budget(crate::TuneBudget::minimal())
            .optimize_sharded(store, &profiler, Platform::broadwell(), 2)
            .expect("warm tune");
        assert!(warm.warm(), "second run must hit the per-shard plan cache");
        assert_eq!(cold.distinct_plan_labels(), warm.distinct_plan_labels());
        std::fs::remove_file(&cache_path).ok();
    }
}
