//! Shared candidate-plan ranking.
//!
//! Three consumers used to enumerate and score plans independently — the
//! oracle sweep in `SimOptimizerStudy`, the no-loss guard in
//! [`crate::guard_plan`], and (new) the empirical tuner's top-k candidate
//! selection. They now rank from the *same* list through this module, so a
//! plan the study's oracle considers is exactly a plan the tuner can
//! measure and the guard can fall back to.
//!
//! Ordering contract: candidates are scored by modeled Gflop/s and sorted
//! descending with a **stable** sort, and [`candidate_plans`] always places
//! the baseline plan first — so on a modeled tie the baseline (or the
//! earlier-enumerated plan) wins, preserving the historical "strictly
//! better or keep what you had" semantics of both the oracle and the guard.

use crate::pool::{single_and_pair_plans, OptimizationPlan};
use sparseopt_matrix::MatrixFeatures;
use sparseopt_sim::{simulate, Platform, SimMatrixProfile};

/// One scored candidate.
#[derive(Clone, Debug)]
pub struct RankedPlan {
    /// The candidate plan.
    pub plan: OptimizationPlan,
    /// Its modeled Gflop/s on the ranking platform.
    pub modeled_gflops: f64,
}

/// The full candidate list one matrix admits: the baseline first, then
/// every single and pair plan from the applicable pool, deduplicated by
/// modeled kernel configuration (pairs whose build precedence collapses
/// them onto an already-listed config — e.g. `merge-split+decompose` onto
/// `merge-split` — would only waste a tuner measurement slot).
pub fn candidate_plans(features: &MatrixFeatures) -> Vec<OptimizationPlan> {
    let mut plans = vec![OptimizationPlan::baseline()];
    plans.extend(single_and_pair_plans(features));
    let mut seen = Vec::new();
    plans.retain(|p| {
        let cfg = p.to_sim_config();
        if seen.contains(&cfg) {
            false
        } else {
            seen.push(cfg);
            true
        }
    });
    plans
}

/// Scores `candidates` on the modeled `platform` and returns them sorted by
/// modeled Gflop/s, descending (stable: ties keep enumeration order).
pub fn rank_plans(
    profile: &SimMatrixProfile,
    platform: &Platform,
    candidates: Vec<OptimizationPlan>,
) -> Vec<RankedPlan> {
    let mut ranked: Vec<RankedPlan> = candidates
        .into_iter()
        .map(|plan| {
            let modeled_gflops = simulate(profile, platform, &plan.to_sim_config()).gflops;
            RankedPlan {
                plan,
                modeled_gflops,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.modeled_gflops
            .partial_cmp(&a.modeled_gflops)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

/// [`candidate_plans`] ranked on `platform` — the one list the oracle
/// sweep, the adaptive guard's fallback space, and the tuner's top-k
/// selection all draw from.
pub fn ranked_candidates(
    profile: &SimMatrixProfile,
    platform: &Platform,
    features: &MatrixFeatures,
) -> Vec<RankedPlan> {
    rank_plans(profile, platform, candidate_plans(features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::csr::CsrMatrix;
    use sparseopt_matrix::generators as g;

    #[test]
    fn candidates_start_with_baseline_and_are_config_unique() {
        let m = CsrMatrix::from_coo(&g::power_law_hub(3000, 2, 5));
        let f = MatrixFeatures::extract(&m, 1 << 25);
        let plans = candidate_plans(&f);
        assert!(plans[0].is_noop(), "baseline must lead the list");
        let mut cfgs = Vec::new();
        for p in &plans {
            let c = p.to_sim_config();
            assert!(!cfgs.contains(&c), "duplicate config from {}", p.label());
            cfgs.push(c);
        }
        // Dedup only removes plans, never invents them.
        assert!(plans.len() <= 1 + crate::pool::single_and_pair_plans(&f).len());
    }

    #[test]
    fn ranking_is_descending_and_complete() {
        let m = CsrMatrix::from_coo(&g::banded(8000, 4));
        let f = MatrixFeatures::extract(&m, 1 << 25);
        let platform = Platform::knc();
        let profile = SimMatrixProfile::analyze(&m, &platform);
        let ranked = ranked_candidates(&profile, &platform, &f);
        assert_eq!(ranked.len(), candidate_plans(&f).len());
        for w in ranked.windows(2) {
            assert!(w[0].modeled_gflops >= w[1].modeled_gflops);
        }
        // The top of the ranking can never be a modeled loss vs baseline —
        // baseline is in the list.
        let base = ranked
            .iter()
            .find(|r| r.plan.is_noop())
            .expect("baseline ranked");
        assert!(ranked[0].modeled_gflops >= base.modeled_gflops);
    }
}
