//! # sparseopt-optimizer
//!
//! The adaptive SpMV optimizer: maps detected bottleneck classes to the
//! Table II optimization pool, builds jointly-optimized kernels (real or
//! modeled), and implements the comparison strategies of the paper's
//! evaluation — trivial single/combined sweeps, the oracle, vendor-like MKL
//! and Inspector-Executor baselines, and the Table V amortization analysis.

pub mod amortization;
pub mod optimizers;
pub mod plan_cache;
pub mod pool;
pub mod rank;
pub mod sharded;
pub mod tuner;

pub use amortization::{
    amortization_iters, plan_conversion_cost_spmv, plan_setup_cost_spmv, summarize,
    AmortizationRow, OptimizerKind, JIT_COST_SPMV, TRIAL_ITERS,
};
pub use optimizers::{
    guard_plan, inspector_executor_host_kernel, inspector_executor_sim_config, mkl_host_kernel,
    mkl_sim_config, AdaptiveOptimizer, MatrixEvaluation, OptimizedKernel, SimOptimizerStudy,
};
pub use plan_cache::{MeasuredCosts, PlanCache, PlanCacheEntry, PLAN_CACHE_SCHEMA};
pub use pool::{
    select_optimizations, single_and_pair_plans, single_plans, OpRequirements, Optimization,
    OptimizationPlan, LONG_ROW_FACTOR, LONG_ROW_SKEW,
};
pub use rank::{candidate_plans, rank_plans, ranked_candidates, RankedPlan};
pub use sharded::{ShardPlanReport, TunedShardedOp};
pub use tuner::{PlanTuner, TuneBudget, TuneOutcome, TunedKernel, TunerStatsSnapshot};
