//! The tuning service: three-stage escalation from classifier guess to
//! measured, cached winner.
//!
//! The classifier answers *instantly* but from a model; the oracle answers
//! *exactly* but only in simulation. This layer closes the loop on the real
//! machine with a bounded amount of work:
//!
//! 1. **Guess** — start from the classifier's plan (profile- or
//!    feature-guided, both already guarded by [`crate::guard_plan`]). A
//!    caller that never tunes pays nothing it didn't pay before.
//! 2. **Search** — spend a budget of real timed trials on the sim-ranked
//!    top-k candidate plans from the *shared* ranking
//!    ([`crate::rank::ranked_candidates`]): each candidate's setup is
//!    wall-clocked, its apply is timed best-of-batches (the `ci_bench`
//!    protocol), and the budget is accounted in baseline-SpMV equivalents
//!    so "about 400 SpMVs of tuning" means the same thing on every matrix.
//! 3. **Promote** — ship whichever measured plan is fastest and persist it
//!    to the [`PlanCache`] keyed by the
//!    matrix's structural fingerprint. A second process — or a structurally
//!    identical matrix — skips stages 1–2 entirely: zero classifier calls,
//!    zero timed trials.
//!
//! Because stage 2 records real setup and apply times, the Table V
//! amortization analysis can use measured numbers
//! ([`TunedKernel::amortization_iters`]) instead of the fixed per-plan
//! charges; the fixed charges remain the cold-start fallback
//! ([`crate::amortization::plan_setup_cost_spmv`]).
//!
//! ```
//! use sparseopt_classifier::SimBoundsProfiler;
//! use sparseopt_core::prelude::*;
//! use sparseopt_matrix::generators;
//! use sparseopt_optimizer::{PlanTuner, TuneBudget, TuneOutcome};
//! use sparseopt_sim::Platform;
//! use std::sync::Arc;
//!
//! let csr = Arc::new(CsrMatrix::from_coo(&generators::banded(600, 2)));
//! let tuner = PlanTuner::new(ExecCtx::new(1)).with_budget(TuneBudget::minimal());
//! let profiler = SimBoundsProfiler::new(Platform::broadwell());
//!
//! // Cold: classifier guess, measured against the baseline, then cached.
//! let cold = tuner.optimize_profiled(&csr, &profiler);
//! assert_ne!(cold.outcome, TuneOutcome::CacheHit);
//!
//! // Warm: the same structural fingerprint replays the cached winner —
//! // zero classifier calls, zero timed trials.
//! let warm = tuner.optimize_profiled(&csr, &profiler);
//! assert_eq!(warm.outcome, TuneOutcome::CacheHit);
//! assert_eq!(tuner.stats().hits, 1);
//! ```

use crate::amortization::amortization_iters;
use crate::plan_cache::{MeasuredCosts, PlanCache, PlanCacheEntry};
use crate::pool::{OpRequirements, OptimizationPlan};
use crate::rank::ranked_candidates;
use crate::{AdaptiveOptimizer, OptimizedKernel};
use sparseopt_classifier::{BoundsProfiler, ClassSet, FeatureGuidedClassifier, PerClassBounds};
use sparseopt_core::prelude::*;
use sparseopt_matrix::{MatrixFeatures, MatrixFingerprint};
use sparseopt_sim::SimMatrixProfile;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How much empirical search the tuner may buy, all in units that survive a
/// change of matrix: trial counts and baseline-SpMV equivalents.
#[derive(Clone, Copy, Debug)]
pub struct TuneBudget {
    /// Total tuning spend ceiling in baseline-SpMV equivalents (setup time
    /// plus timed applies, both normalized by the measured baseline apply).
    /// The classifier's guess and the baseline reference are always
    /// measured even when this is 0 — the no-loss comparison needs both.
    pub total_spmv: f64,
    /// How many sim-ranked candidates (beyond guess + baseline) stage 2 may
    /// try, budget permitting.
    pub top_k: usize,
    /// Apply-timing batches per candidate (best-of-batches, like ci_bench).
    pub batches: usize,
    /// Applies per batch.
    pub batch_iters: usize,
}

impl Default for TuneBudget {
    fn default() -> Self {
        Self {
            total_spmv: 400.0,
            top_k: 4,
            batches: 3,
            batch_iters: 8,
        }
    }
}

impl TuneBudget {
    /// A budget that measures only the guess and the baseline — the
    /// cheapest configuration that can still promote away from a losing
    /// guess.
    pub fn minimal() -> Self {
        Self {
            total_spmv: 0.0,
            top_k: 0,
            ..Self::default()
        }
    }
}

/// Monotonic service counters (shared across threads holding the tuner).
#[derive(Default)]
pub struct TunerStats {
    hits: AtomicU64,
    misses: AtomicU64,
    promotions: AtomicU64,
    timed_trials: AtomicU64,
}

/// Point-in-time copy of [`TunerStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunerStatsSnapshot {
    /// Optimizations served straight from the plan cache.
    pub hits: u64,
    /// Optimizations that had to run the classifier (and, budget
    /// permitting, the empirical search).
    pub misses: u64,
    /// Misses where measurement overturned the classifier's guess.
    pub promotions: u64,
    /// Timed apply batches executed (0 on a pure warm-cache run).
    pub timed_trials: u64,
}

impl TunerStats {
    fn snapshot(&self) -> TunerStatsSnapshot {
        TunerStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            timed_trials: self.timed_trials.load(Ordering::Relaxed),
        }
    }
}

/// Where the served plan came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneOutcome {
    /// Warm cache: the plan was tuned earlier (possibly by another
    /// process); no classifier, no measurement.
    CacheHit,
    /// Cold: measurement overturned the classifier and a different plan won.
    Promoted,
    /// Cold: the classifier's guess survived measurement (or tied it).
    ClassifierGuess,
}

/// An optimized kernel with its tuning provenance and measured costs.
pub struct TunedKernel {
    /// The runnable operator (validated against the caller's
    /// [`OpRequirements`] exactly like [`OptimizedKernel::kernel`]).
    pub kernel: Box<dyn SparseLinOp>,
    /// The plan the operator implements.
    pub plan: OptimizationPlan,
    /// Classes behind the plan (from the classifier on a miss; reconstructed
    /// from the plan's own targets on a cache hit).
    pub classes: ClassSet,
    /// Bounds, when the miss path ran the profile-guided classifier.
    pub bounds: Option<PerClassBounds>,
    /// Structural fingerprint the plan is cached under.
    pub fingerprint: MatrixFingerprint,
    /// How this plan was chosen.
    pub outcome: TuneOutcome,
    /// Measured costs — always present after a cold tune, and replayed from
    /// the cache on a hit. `None` only if the winner's entry could not be
    /// measured (never happens through the public paths, but kept optional
    /// so the type states the fallback).
    pub measured: Option<MeasuredCosts>,
}

impl TunedKernel {
    /// Measured setup cost in baseline-SpMV equivalents, for
    /// [`crate::amortization::plan_setup_cost_spmv`].
    pub fn measured_setup_spmv(&self) -> Option<f64> {
        self.measured.map(|m| m.setup_spmv)
    }

    /// Minimum solver iterations before this plan's tuning-time setup is
    /// repaid by its per-apply gain over the scalar baseline — the Table V
    /// formula on *measured* numbers. `None` when nothing was measured or
    /// the plan is not faster than the baseline (never amortizes).
    pub fn amortization_iters(&self) -> Option<f64> {
        let m = self.measured?;
        amortization_iters(
            m.setup_spmv * m.baseline_secs,
            m.baseline_secs,
            m.apply_secs,
        )
    }
}

/// The tuning service: an [`AdaptiveOptimizer`] wrapped with a measurement
/// budget and a persistent plan cache.
pub struct PlanTuner {
    opt: AdaptiveOptimizer,
    cache: RefCell<PlanCache>,
    budget: TuneBudget,
    stats: TunerStats,
}

impl PlanTuner {
    /// A tuner with an in-memory (non-persistent) cache.
    pub fn new(ctx: Arc<ExecCtx>) -> Self {
        Self::with_cache(ctx, PlanCache::in_memory())
    }

    /// A tuner over an explicit cache (tests point this at a temp file; the
    /// warm-start acceptance test opens two tuners on the same path).
    pub fn with_cache(ctx: Arc<ExecCtx>, cache: PlanCache) -> Self {
        Self {
            opt: AdaptiveOptimizer::new(ctx),
            cache: RefCell::new(cache),
            budget: TuneBudget::default(),
            stats: TunerStats::default(),
        }
    }

    /// A tuner on the default persistent cache location
    /// ([`PlanCache::default_path`]); a corrupt or stale cache file degrades
    /// to a cold start with a stderr warning, never an error.
    pub fn open_default(ctx: Arc<ExecCtx>) -> Self {
        let (cache, warning) = PlanCache::open_default();
        if let Some(w) = warning {
            eprintln!("warning: {w}");
        }
        Self::with_cache(ctx, cache)
    }

    /// Overrides the search budget.
    /// The execution context tuned kernels are built and measured on.
    pub fn ctx(&self) -> &Arc<ExecCtx> {
        self.opt.ctx()
    }

    pub fn with_budget(mut self, budget: TuneBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The wrapped optimizer (mutable, so callers can set `llc_bytes` or
    /// the guard platform exactly as they would on a bare
    /// [`AdaptiveOptimizer`]).
    pub fn optimizer_mut(&mut self) -> &mut AdaptiveOptimizer {
        &mut self.opt
    }

    /// The wrapped optimizer.
    pub fn optimizer(&self) -> &AdaptiveOptimizer {
        &self.opt
    }

    /// Service counters so far.
    pub fn stats(&self) -> TunerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of cached plans currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Tuned profile-guided optimization for a forward single-vector
    /// consumer.
    pub fn optimize_profiled(
        &self,
        csr: &Arc<CsrMatrix>,
        profiler: &dyn BoundsProfiler,
    ) -> TunedKernel {
        self.optimize_profiled_for(csr, profiler, &OpRequirements::spmv())
    }

    /// Tuned profile-guided optimization with explicit operator
    /// requirements. Stage 1 is exactly
    /// [`AdaptiveOptimizer::optimize_profiled_for`]; a warm cache skips it.
    pub fn optimize_profiled_for(
        &self,
        csr: &Arc<CsrMatrix>,
        profiler: &dyn BoundsProfiler,
        reqs: &OpRequirements,
    ) -> TunedKernel {
        self.optimize_with(csr, reqs, || {
            self.opt.optimize_profiled_for(csr, profiler, reqs)
        })
    }

    /// Tuned feature-guided optimization for a forward single-vector
    /// consumer.
    pub fn optimize_feature_guided(
        &self,
        csr: &Arc<CsrMatrix>,
        clf: &FeatureGuidedClassifier,
    ) -> TunedKernel {
        self.optimize_feature_guided_for(csr, clf, &OpRequirements::spmv())
    }

    /// Tuned feature-guided optimization with explicit operator
    /// requirements.
    pub fn optimize_feature_guided_for(
        &self,
        csr: &Arc<CsrMatrix>,
        clf: &FeatureGuidedClassifier,
        reqs: &OpRequirements,
    ) -> TunedKernel {
        self.optimize_with(csr, reqs, || {
            self.opt.optimize_feature_guided_for(csr, clf, reqs)
        })
    }

    /// The shared hit/miss flow behind both classifier paths.
    fn optimize_with(
        &self,
        csr: &Arc<CsrMatrix>,
        reqs: &OpRequirements,
        guess: impl FnOnce() -> OptimizedKernel,
    ) -> TunedKernel {
        let features = MatrixFeatures::extract(csr, self.opt.llc_bytes);
        let fingerprint = MatrixFingerprint::from_features(&features);
        let key = fingerprint.key();

        // Warm path: replay the cached winner. The rebuilt operator must
        // still satisfy this caller's requirements — a plan tuned for a
        // forward-only consumer may not cover a transpose-consuming solver,
        // in which case the entry is ignored and the cold path (which
        // guarantees `reqs`) runs instead.
        if let Some(entry) = self.cache.borrow().get(&key) {
            let plan = entry.to_plan();
            let kernel = plan.build_host_kernel(csr, self.opt.ctx().clone());
            if kernel.capabilities().satisfies(&reqs.as_capabilities()) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return TunedKernel {
                    kernel,
                    classes: plan.classes,
                    plan,
                    bounds: None,
                    fingerprint,
                    outcome: TuneOutcome::CacheHit,
                    measured: Some(entry.measured),
                };
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);

        // Stage 1: the classifier's (guarded) guess.
        let guessed = guess();
        self.search_and_promote(csr, &features, fingerprint, guessed, reqs)
    }

    /// Best-of-batches per-apply seconds, charging one timed trial per
    /// batch.
    fn time_applies(&self, kernel: &dyn SparseLinOp, x: &[f64], y: &mut [f64]) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..self.budget.batches.max(1) {
            let t0 = Instant::now();
            for _ in 0..self.budget.batch_iters.max(1) {
                kernel.spmv(x, y);
            }
            best = best.min(t0.elapsed().as_secs_f64() / self.budget.batch_iters.max(1) as f64);
            self.stats.timed_trials.fetch_add(1, Ordering::Relaxed);
        }
        best
    }

    /// Stages 2 + 3: measure guess, baseline, and the sim-ranked top-k on
    /// the real matrix; promote the fastest; persist.
    fn search_and_promote(
        &self,
        csr: &Arc<CsrMatrix>,
        features: &MatrixFeatures,
        fingerprint: MatrixFingerprint,
        guessed: OptimizedKernel,
        reqs: &OpRequirements,
    ) -> TunedKernel {
        let n = csr.nrows();
        let x: Vec<f64> = (0..csr.ncols())
            .map(|i| 1.0 + (i as f64 * 0.37).sin())
            .collect();
        let mut y = vec![0.0; n];

        // The baseline apply defines the SpMV budget unit (and the
        // amortization reference t_MKL-analogue).
        let base_plan = OptimizationPlan::baseline();
        let t0 = Instant::now();
        let base_kernel = base_plan.build_host_kernel(csr, self.opt.ctx().clone());
        let base_setup_secs = t0.elapsed().as_secs_f64();
        let baseline_secs = self.time_applies(&*base_kernel, &x, &mut y).max(1e-12);

        // Everything measured: (plan, kernel, setup_secs, apply_secs).
        struct Trial {
            plan: OptimizationPlan,
            kernel: Box<dyn SparseLinOp>,
            setup_secs: f64,
            apply_secs: f64,
        }
        let mut trials: Vec<Trial> = Vec::new();

        // The guess is always measured (its kernel already exists; re-time
        // its setup with a fresh build so the recorded number covers format
        // conversion, not just the classifier's decision time).
        let guess_cfg = guessed.plan.to_sim_config();
        if guessed.plan.is_noop() {
            trials.push(Trial {
                plan: base_plan.clone(),
                kernel: guessed.kernel,
                setup_secs: base_setup_secs,
                apply_secs: baseline_secs,
            });
        } else {
            let t0 = Instant::now();
            let rebuilt = guessed.plan.build_host_kernel(csr, self.opt.ctx().clone());
            let setup_secs = t0.elapsed().as_secs_f64();
            drop(rebuilt);
            let apply_secs = self.time_applies(&*guessed.kernel, &x, &mut y);
            trials.push(Trial {
                plan: guessed.plan.clone(),
                kernel: guessed.kernel,
                setup_secs,
                apply_secs,
            });
            trials.push(Trial {
                plan: base_plan.clone(),
                kernel: base_kernel,
                setup_secs: base_setup_secs,
                apply_secs: baseline_secs,
            });
        }

        // Stage 2: sim-ranked top-k candidates, measured while budget
        // remains. Spend is accounted in baseline-SpMV equivalents.
        let mut spent: f64 = trials
            .iter()
            .map(|t| {
                t.setup_secs / baseline_secs
                    + (self.budget.batches * self.budget.batch_iters) as f64 * t.apply_secs
                        / baseline_secs
            })
            .sum();
        let apply_budget = (self.budget.batches * self.budget.batch_iters) as f64;
        let profile = SimMatrixProfile::analyze(csr, &self.opt.guard_platform);
        let ranked = ranked_candidates(&profile, &self.opt.guard_platform, features);
        for cand in ranked.into_iter().take(self.budget.top_k + 1) {
            let cfg = cand.plan.to_sim_config();
            if cfg == guess_cfg || trials.iter().any(|t| t.plan.to_sim_config() == cfg) {
                continue; // already measured
            }
            // Conservative pre-charge: a candidate roughly as fast as the
            // baseline costs one apply-budget of units plus its setup.
            if spent + apply_budget > self.budget.total_spmv {
                break;
            }
            let t0 = Instant::now();
            let kernel = cand.plan.build_host_kernel(csr, self.opt.ctx().clone());
            let setup_secs = t0.elapsed().as_secs_f64();
            if !kernel.capabilities().satisfies(&reqs.as_capabilities()) {
                spent += setup_secs / baseline_secs;
                continue;
            }
            let apply_secs = self.time_applies(&*kernel, &x, &mut y);
            spent += setup_secs / baseline_secs + apply_budget * apply_secs / baseline_secs;
            trials.push(Trial {
                plan: cand.plan,
                kernel,
                setup_secs,
                apply_secs,
            });
        }

        // Stage 3: promote the measured winner (stable: the guess was
        // pushed first, so on an exact tie it survives).
        let winner_idx = trials
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.apply_secs.total_cmp(&b.apply_secs))
            .map(|(i, _)| i)
            .expect("at least the guess is always measured");
        let winner = trials.swap_remove(winner_idx);
        let promoted = winner.plan.to_sim_config() != guess_cfg;
        if promoted {
            self.stats.promotions.fetch_add(1, Ordering::Relaxed);
        }

        let flops = 2.0 * csr.nnz() as f64;
        let measured = MeasuredCosts {
            setup_spmv: winner.setup_secs / baseline_secs,
            apply_secs: winner.apply_secs,
            baseline_secs,
            gflops: flops / winner.apply_secs.max(1e-12) / 1e9,
        };
        self.cache.borrow_mut().insert(PlanCacheEntry {
            fingerprint: fingerprint.key(),
            optimizations: winner.plan.optimizations.clone(),
            inner: winner.plan.inner,
            decompose_threshold: winner.plan.decompose_threshold,
            measured,
        });

        TunedKernel {
            kernel: winner.kernel,
            classes: if promoted {
                winner.plan.classes
            } else {
                guessed.classes
            },
            plan: winner.plan,
            bounds: guessed.bounds,
            fingerprint,
            outcome: if promoted {
                TuneOutcome::Promoted
            } else {
                TuneOutcome::ClassifierGuess
            },
            measured: Some(measured),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_classifier::SimBoundsProfiler;
    use sparseopt_matrix::generators as g;
    use sparseopt_sim::Platform;

    fn arc(m: sparseopt_core::coo::CooMatrix) -> Arc<CsrMatrix> {
        Arc::new(CsrMatrix::from_coo(&m))
    }

    #[test]
    fn cold_tune_measures_and_caches() {
        let csr = arc(g::few_dense_rows(2000, 3, 2, 5));
        let ctx = ExecCtx::new(2);
        let tuner = PlanTuner::new(ctx);
        let profiler = SimBoundsProfiler::new(Platform::knc());
        let tuned = tuner.optimize_profiled(&csr, &profiler);

        let s = tuner.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        assert!(s.timed_trials > 0, "cold path must measure");
        assert_eq!(tuner.cache_len(), 1);
        let m = tuned.measured.expect("cold tune records measurements");
        assert!(m.apply_secs > 0.0 && m.baseline_secs > 0.0);
        assert!(m.setup_spmv >= 0.0);
        assert_ne!(tuned.outcome, TuneOutcome::CacheHit);

        // The served kernel is correct.
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).cos()).collect();
        let mut got = vec![0.0; 2000];
        tuned.kernel.spmv(&x, &mut got);
        let mut want = vec![0.0; 2000];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn warm_cache_skips_measurement_entirely() {
        let csr = arc(g::banded(3000, 4));
        let ctx = ExecCtx::new(2);
        let tuner = PlanTuner::new(ctx);
        let profiler = SimBoundsProfiler::new(Platform::knc());

        let first = tuner.optimize_profiled(&csr, &profiler);
        let trials_after_cold = tuner.stats().timed_trials;
        assert!(trials_after_cold > 0);

        let second = tuner.optimize_profiled(&csr, &profiler);
        let s = tuner.stats();
        assert_eq!(s.hits, 1, "second optimize must hit the cache");
        assert_eq!(
            s.timed_trials, trials_after_cold,
            "warm path must run zero timed trials"
        );
        assert_eq!(second.outcome, TuneOutcome::CacheHit);
        assert_eq!(second.plan.label(), first.plan.label());
        assert_eq!(second.measured, first.measured);
    }

    #[test]
    fn requirements_are_honored_even_on_cache_hits() {
        let csr = arc(g::few_dense_rows(1500, 3, 2, 5));
        let ctx = ExecCtx::new(2);
        let tuner = PlanTuner::new(ctx);
        let profiler = SimBoundsProfiler::new(Platform::knc());

        // Seed the cache through the forward-only path, then demand the
        // full application space: the served operator must satisfy it
        // whether the cache hit survives or the cold path reruns.
        tuner.optimize_profiled(&csr, &profiler);
        let full = tuner.optimize_profiled_for(&csr, &profiler, &OpRequirements::full());
        let caps = full.kernel.capabilities();
        assert!(caps.transpose && caps.multi_vec);

        let x: Vec<f64> = (0..1500).map(|i| 0.5 + (i as f64 * 0.02).sin()).collect();
        let mut got = vec![f64::NAN; 1500];
        full.kernel.apply(Apply::Trans, &x, &mut got);
        let mut want = vec![0.0; 1500];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn measured_amortization_uses_real_numbers() {
        let csr = arc(g::few_dense_rows(2000, 3, 2, 5));
        let tuner = PlanTuner::new(ExecCtx::new(2));
        let profiler = SimBoundsProfiler::new(Platform::knc());
        let tuned = tuner.optimize_profiled(&csr, &profiler);
        let m = tuned.measured.unwrap();
        match tuned.amortization_iters() {
            // Faster than baseline: iterations = measured setup seconds
            // over the measured per-apply gain.
            Some(iters) => {
                let expect = (m.setup_spmv * m.baseline_secs) / (m.baseline_secs - m.apply_secs);
                assert!((iters - expect).abs() < 1e-12 * expect.abs().max(1.0));
            }
            // Not faster than baseline: must report "never amortizes".
            None => assert!(m.apply_secs >= m.baseline_secs),
        }
        assert_eq!(tuned.measured_setup_spmv(), Some(m.setup_spmv));
    }

    #[test]
    fn feature_guided_path_tunes_too() {
        use sparseopt_classifier::{Bottleneck, LabeledMatrix};
        use sparseopt_matrix::FeatureSet;
        use sparseopt_ml::TreeParams;
        // Tiny two-concept corpus: banded → MB, random → ML. The tuner only
        // needs *a* classifier decision; quality is tested elsewhere.
        let mut samples = Vec::new();
        for k in 0..4u64 {
            let m = CsrMatrix::from_coo(&g::banded(2000 + k as usize * 400, 1 + k as usize % 3));
            samples.push(LabeledMatrix {
                name: format!("band{k}"),
                features: MatrixFeatures::extract(&m, 1 << 25),
                classes: ClassSet::from_classes(&[Bottleneck::Mb]),
            });
            let m = CsrMatrix::from_coo(&g::random_uniform(2000 + k as usize * 400, 6, k));
            samples.push(LabeledMatrix {
                name: format!("rand{k}"),
                features: MatrixFeatures::extract(&m, 1 << 25),
                classes: ClassSet::from_classes(&[Bottleneck::Ml]),
            });
        }
        let clf = FeatureGuidedClassifier::train(
            &samples,
            FeatureSet::LinearInNnz,
            TreeParams::default(),
        );

        let csr = arc(g::banded(2500, 3));
        let tuner = PlanTuner::new(ExecCtx::new(2));
        let a = tuner.optimize_feature_guided(&csr, &clf);
        let b = tuner.optimize_feature_guided(&csr, &clf);
        assert_eq!(tuner.stats().hits, 1);
        assert_eq!(b.outcome, TuneOutcome::CacheHit);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn persistent_cache_warms_a_second_tuner_instance() {
        let path = std::env::temp_dir().join(format!(
            "sparseopt-tuner-cross-instance-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let csr = arc(g::banded(3000, 4));
        let profiler = SimBoundsProfiler::new(Platform::knc());

        {
            let (cache, warn) = PlanCache::at_path(&path);
            assert!(warn.is_none());
            let tuner = PlanTuner::with_cache(ExecCtx::new(2), cache);
            tuner.optimize_profiled(&csr, &profiler);
            assert_eq!(tuner.stats().misses, 1);
        }

        // A brand-new tuner (standing in for a second process) sees the
        // persisted winner and serves it without any measurement.
        let (cache, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "{warn:?}");
        let tuner = PlanTuner::with_cache(ExecCtx::new(2), cache);
        let tuned = tuner.optimize_profiled(&csr, &profiler);
        let s = tuner.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
        assert_eq!(s.timed_trials, 0);
        assert_eq!(tuned.outcome, TuneOutcome::CacheHit);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_cache_degrades_to_cold_tuning() {
        let path = std::env::temp_dir().join(format!(
            "sparseopt-tuner-corrupt-{}.json",
            std::process::id()
        ));
        std::fs::write(&path, "{\"schema\": 1, \"entries\": [ garbage").unwrap();
        let (cache, warn) = PlanCache::at_path(&path);
        assert!(warn.is_some(), "corrupt file must warn");
        let tuner = PlanTuner::with_cache(ExecCtx::new(2), cache);
        let csr = arc(g::banded(2000, 3));
        let profiler = SimBoundsProfiler::new(Platform::knc());
        let tuned = tuner.optimize_profiled(&csr, &profiler);
        assert_ne!(tuned.outcome, TuneOutcome::CacheHit);
        assert_eq!(tuner.stats().misses, 1);
        // ...and the bad file is healed by the insert.
        let (cache, warn) = PlanCache::at_path(&path);
        assert!(warn.is_none(), "rewritten cache must parse: {warn:?}");
        assert_eq!(cache.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
