//! Tabular dataset container for the decision-tree learner.

/// A supervised multilabel dataset: one row of real-valued features and one
/// binary label vector per sample.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// `samples × features` matrix, row major.
    pub features: Vec<Vec<f64>>,
    /// `samples × labels` binary targets.
    pub labels: Vec<Vec<bool>>,
    /// Column names (for introspection / tree dumps).
    pub feature_names: Vec<String>,
    /// Label names.
    pub label_names: Vec<String>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(feature_names: Vec<String>, label_names: Vec<String>) -> Self {
        Self {
            features: Vec::new(),
            labels: Vec::new(),
            feature_names,
            label_names,
        }
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics when the row widths disagree with the schema.
    pub fn push(&mut self, features: Vec<f64>, labels: Vec<bool>) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature width mismatch"
        );
        assert_eq!(labels.len(), self.label_names.len(), "label width mismatch");
        self.features.push(features);
        self.labels.push(labels);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn nfeatures(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of label columns.
    pub fn nlabels(&self) -> usize {
        self.label_names.len()
    }

    /// Returns the dataset restricted to `idx` (used by cross-validation).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i].clone()).collect(),
            feature_names: self.feature_names.clone(),
            label_names: self.label_names.clone(),
        }
    }

    /// Returns a copy keeping only the feature columns in `cols` (feature-set
    /// ablations).
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        Dataset {
            features: self
                .features
                .iter()
                .map(|row| cols.iter().map(|&c| row[c]).collect())
                .collect(),
            labels: self.labels.clone(),
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
            label_names: self.label_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["l0".into(), "l1".into()]);
        d.push(vec![1.0, 2.0], vec![true, false]);
        d.push(vec![3.0, 4.0], vec![false, true]);
        d.push(vec![5.0, 6.0], vec![true, true]);
        d
    }

    #[test]
    fn push_and_dims() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.nfeatures(), 2);
        assert_eq!(d.nlabels(), 2);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy().subset(&[2, 0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.features[0], vec![5.0, 6.0]);
        assert_eq!(d.labels[1], vec![true, false]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy().select_features(&[1]);
        assert_eq!(d.nfeatures(), 1);
        assert_eq!(d.features[0], vec![2.0]);
        assert_eq!(d.feature_names, vec!["b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn push_validates_width() {
        toy().push(vec![1.0], vec![true, false]);
    }
}
