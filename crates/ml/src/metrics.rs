//! Multilabel classification metrics — the Exact and Partial Match Ratios of
//! the paper's Section IV-B.

/// Exact Match Ratio: fraction of samples whose predicted label set equals
/// the true set exactly.
pub fn exact_match_ratio(pred: &[Vec<bool>], truth: &[Vec<bool>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Partial Match Ratio: a prediction "is correct if it contains at least one
/// correct class" — i.e. the predicted and true sets intersect. Samples
/// where both sets are empty also count as correct (the dummy "no
/// optimization" class agrees).
pub fn partial_match_ratio(pred: &[Vec<bool>], truth: &[Vec<bool>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| {
            let both_empty = !p.iter().any(|&b| b) && !t.iter().any(|&b| b);
            both_empty || p.iter().zip(t.iter()).any(|(&a, &b)| a && b)
        })
        .count();
    hits as f64 / pred.len() as f64
}

/// Hamming loss: fraction of label slots predicted wrongly (lower is better).
pub fn hamming_loss(pred: &[Vec<bool>], truth: &[Vec<bool>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let mut wrong = 0usize;
    let mut total = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        assert_eq!(p.len(), t.len(), "label width mismatch");
        wrong += p.iter().zip(t).filter(|(a, b)| a != b).count();
        total += p.len();
    }
    if total == 0 {
        0.0
    } else {
        wrong as f64 / total as f64
    }
}

/// Per-label precision/recall/F1 summary.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelScores {
    /// True positives per label.
    pub tp: Vec<usize>,
    /// False positives per label.
    pub fp: Vec<usize>,
    /// False negatives per label.
    pub fn_: Vec<usize>,
}

impl LabelScores {
    /// Tallies confusion counts per label.
    pub fn tally(pred: &[Vec<bool>], truth: &[Vec<bool>]) -> Self {
        assert_eq!(pred.len(), truth.len());
        let nlabels = pred.first().map_or(0, |p| p.len());
        let (mut tp, mut fp, mut fn_) = (
            vec![0usize; nlabels],
            vec![0usize; nlabels],
            vec![0usize; nlabels],
        );
        for (p, t) in pred.iter().zip(truth) {
            for l in 0..nlabels {
                match (p[l], t[l]) {
                    (true, true) => tp[l] += 1,
                    (true, false) => fp[l] += 1,
                    (false, true) => fn_[l] += 1,
                    (false, false) => {}
                }
            }
        }
        Self { tp, fp, fn_ }
    }

    /// Precision of label `l` (1.0 when no positives predicted).
    pub fn precision(&self, l: usize) -> f64 {
        let denom = self.tp[l] + self.fp[l];
        if denom == 0 {
            1.0
        } else {
            self.tp[l] as f64 / denom as f64
        }
    }

    /// Recall of label `l` (1.0 when no true positives exist).
    pub fn recall(&self, l: usize) -> f64 {
        let denom = self.tp[l] + self.fn_[l];
        if denom == 0 {
            1.0
        } else {
            self.tp[l] as f64 / denom as f64
        }
    }

    /// F1 of label `l`.
    pub fn f1(&self, l: usize) -> f64 {
        let (p, r) = (self.precision(l), self.recall(l));
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: &[u8]) -> Vec<bool> {
        v.iter().map(|&x| x != 0).collect()
    }

    #[test]
    fn exact_match_counts_full_equality() {
        let pred = vec![b(&[1, 0]), b(&[1, 1]), b(&[0, 0])];
        let truth = vec![b(&[1, 0]), b(&[1, 0]), b(&[0, 0])];
        assert!((exact_match_ratio(&pred, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_match_counts_intersections() {
        let pred = vec![b(&[1, 1]), b(&[0, 1]), b(&[0, 0])];
        let truth = vec![b(&[1, 0]), b(&[1, 0]), b(&[0, 0])];
        // Sample 0 intersects, sample 1 does not, sample 2 both-empty.
        assert!((partial_match_ratio(&pred, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_always_at_least_exact() {
        let pred = vec![b(&[1, 1]), b(&[0, 1]), b(&[1, 0]), b(&[0, 0])];
        let truth = vec![b(&[1, 0]), b(&[1, 1]), b(&[1, 0]), b(&[1, 0])];
        assert!(partial_match_ratio(&pred, &truth) >= exact_match_ratio(&pred, &truth));
    }

    #[test]
    fn hamming_loss_per_slot() {
        let pred = vec![b(&[1, 0]), b(&[0, 0])];
        let truth = vec![b(&[1, 1]), b(&[0, 0])];
        assert!((hamming_loss(&pred, &truth) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn label_scores_confusion() {
        let pred = vec![b(&[1]), b(&[1]), b(&[0])];
        let truth = vec![b(&[1]), b(&[0]), b(&[1])];
        let s = LabelScores::tally(&pred, &truth);
        assert_eq!((s.tp[0], s.fp[0], s.fn_[0]), (1, 1, 1));
        assert!((s.precision(0) - 0.5).abs() < 1e-12);
        assert!((s.recall(0) - 0.5).abs() < 1e-12);
        assert!((s.f1(0) - 0.5).abs() < 1e-12);
    }
}
