//! # sparseopt-ml
//!
//! A from-scratch machine-learning toolkit sufficient for the paper's
//! feature-guided classifier: a multilabel CART decision tree (the
//! scikit-learn substitute), multilabel accuracy metrics (Exact/Partial
//! Match Ratio), Leave-One-Out / k-fold cross-validation, and exhaustive
//! grid search.

pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod select;
pub mod tree;
pub mod validate;

pub use dataset::Dataset;
pub use forest::{ForestParams, RandomForest};
pub use metrics::{exact_match_ratio, hamming_loss, partial_match_ratio, LabelScores};
pub use select::{exhaustive_select, forward_select, loo_exact_score, SelectedFeatures};
pub use tree::{DecisionTree, TreeParams};
pub use validate::{cartesian2, grid_search, kfold_cv, loo_cv, Accuracy};
