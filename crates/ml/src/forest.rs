//! Random forest over the multilabel CART trees — an extension beyond the
//! paper's single decision tree. Bagging plus per-tree feature subsampling
//! reduces the variance that a single deep tree shows under LOO CV, and the
//! out-of-bag permutation importance quantifies which Table I features carry
//! the signal (the paper selected features by exhaustive search; importance
//! gives the cheap approximation).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};

/// Forest hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Features sampled per tree (0 = `ceil(sqrt(n_features))`).
    pub max_features: usize,
    /// PRNG seed for bootstrap/bagging (deterministic forests).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 25,
            tree: TreeParams::default(),
            max_features: 0,
            seed: 0x5eed,
        }
    }
}

/// A bagged ensemble of multilabel decision trees.
pub struct RandomForest {
    trees: Vec<(DecisionTree, Vec<usize>)>,
    nlabels: usize,
    nfeatures: usize,
}

/// Minimal xorshift PRNG so the forest has no RNG-crate coupling in its
/// deterministic core (rand is still used elsewhere in the workspace).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

impl RandomForest {
    /// Fits `params.n_trees` trees on bootstrap samples of `data`, each over
    /// a random feature subset.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: ForestParams) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");
        let nf = data.nfeatures();
        let k = if params.max_features == 0 {
            (nf as f64).sqrt().ceil() as usize
        } else {
            params.max_features.min(nf)
        }
        .max(1);

        let mut rng = XorShift(params.seed | 1);
        let n = data.len();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
            // Feature subset (sorted, unique).
            let mut cols: Vec<usize> = (0..nf).collect();
            for i in (1..cols.len()).rev() {
                let j = rng.below(i + 1);
                cols.swap(i, j);
            }
            cols.truncate(k);
            cols.sort_unstable();

            let sub = data.subset(&rows).select_features(&cols);
            trees.push((DecisionTree::fit(&sub, params.tree), cols));
        }
        Self {
            trees,
            nlabels: data.nlabels(),
            nfeatures: nf,
        }
    }

    /// Mean per-label probability across trees.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nfeatures, "feature width mismatch");
        let mut acc = vec![0.0f64; self.nlabels];
        for (tree, cols) in &self.trees {
            let sub: Vec<f64> = cols.iter().map(|&c| x[c]).collect();
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(&sub)) {
                *a += p;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f64;
        }
        acc
    }

    /// Majority-vote multilabel prediction.
    pub fn predict(&self, x: &[f64]) -> Vec<bool> {
        self.predict_proba(x).iter().map(|&p| p >= 0.5).collect()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the forest holds no trees (cannot happen after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Permutation importance of every feature on a held-out set: the drop
    /// in exact-match accuracy when that feature's column is shuffled.
    /// Higher = more important. Deterministic for a given `seed`.
    pub fn permutation_importance(&self, data: &Dataset, seed: u64) -> Vec<f64> {
        let base = self.exact_accuracy(data);
        let mut rng = XorShift(seed | 1);
        (0..self.nfeatures)
            .map(|f| {
                let mut shuffled = data.clone();
                // Fisher-Yates on column f.
                for i in (1..shuffled.len()).rev() {
                    let j = rng.below(i + 1);
                    let tmp = shuffled.features[i][f];
                    shuffled.features[i][f] = shuffled.features[j][f];
                    shuffled.features[j][f] = tmp;
                }
                base - self.exact_accuracy(&shuffled)
            })
            .collect()
    }

    fn exact_accuracy(&self, data: &Dataset) -> f64 {
        let preds: Vec<Vec<bool>> = data.features.iter().map(|x| self.predict(x)).collect();
        crate::metrics::exact_match_ratio(&preds, &data.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two informative features, two noise features.
    fn corpus(n: usize) -> Dataset {
        let mut d = Dataset::new(
            vec![
                "sig1".into(),
                "noise1".into(),
                "sig2".into(),
                "noise2".into(),
            ],
            vec!["a".into(), "b".into()],
        );
        let mut rng = XorShift(42);
        for i in 0..n {
            let s1 = (i % 10) as f64;
            let s2 = ((i / 10) % 10) as f64;
            d.push(
                vec![s1, rng.below(1000) as f64, s2, rng.below(1000) as f64],
                vec![s1 >= 5.0, s2 >= 5.0],
            );
        }
        d
    }

    #[test]
    fn forest_learns_separable_labels() {
        let d = corpus(200);
        let f = RandomForest::fit(&d, ForestParams::default());
        let mut correct = 0;
        for (x, l) in d.features.iter().zip(&d.labels) {
            if &f.predict(x) == l {
                correct += 1;
            }
        }
        assert!(correct >= 190, "only {correct}/200 correct");
    }

    #[test]
    fn forest_is_deterministic() {
        let d = corpus(100);
        let a = RandomForest::fit(&d, ForestParams::default());
        let b = RandomForest::fit(&d, ForestParams::default());
        for x in &d.features {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn seeds_change_the_forest() {
        let d = corpus(100);
        let a = RandomForest::fit(
            &d,
            ForestParams {
                seed: 1,
                ..Default::default()
            },
        );
        let b = RandomForest::fit(
            &d,
            ForestParams {
                seed: 2,
                ..Default::default()
            },
        );
        // Probabilities (not necessarily hard predictions) should differ
        // somewhere.
        let differs = d
            .features
            .iter()
            .any(|x| a.predict_proba(x) != b.predict_proba(x));
        assert!(differs, "different seeds should bag differently");
    }

    #[test]
    fn importance_ranks_signal_over_noise() {
        let d = corpus(300);
        let f = RandomForest::fit(
            &d,
            ForestParams {
                n_trees: 40,
                max_features: 2,
                ..Default::default()
            },
        );
        let imp = f.permutation_importance(&d, 7);
        assert_eq!(imp.len(), 4);
        assert!(
            imp[0] > imp[1] && imp[2] > imp[3],
            "signal features must outrank noise: {imp:?}"
        );
    }

    #[test]
    fn single_tree_forest_works() {
        let d = corpus(50);
        let f = RandomForest::fit(
            &d,
            ForestParams {
                n_trees: 1,
                max_features: 4,
                ..Default::default()
            },
        );
        assert_eq!(f.len(), 1);
        let p = f.predict_proba(&d.features[0]);
        assert_eq!(p.len(), 2);
    }
}
