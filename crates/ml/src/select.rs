//! Feature-subset selection. The paper's Table IV classifiers came from an
//! *exhaustive search* over feature subsets; this module provides both that
//! exhaustive search (feasible for the 14 Table I features at small subset
//! sizes) and a greedy forward-selection that scales.

use crate::dataset::Dataset;
use crate::tree::TreeParams;
use crate::validate::loo_cv;

/// Result of a subset search.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectedFeatures {
    /// Chosen column indices into the full dataset.
    pub columns: Vec<usize>,
    /// Score of the chosen subset (exact-match LOO accuracy by default).
    pub score: f64,
}

/// Scores a feature subset by LOO exact-match accuracy of a decision tree
/// restricted to those columns.
pub fn loo_exact_score(data: &Dataset, columns: &[usize], params: TreeParams) -> f64 {
    if columns.is_empty() {
        return 0.0;
    }
    loo_cv(&data.select_features(columns), params).exact
}

/// Greedy forward selection: starting from the empty set, repeatedly add
/// the feature that improves the score most, until no feature improves it
/// or `max_features` is reached. Deterministic (ties to the lowest index).
pub fn forward_select<F>(nfeatures: usize, max_features: usize, mut score: F) -> SelectedFeatures
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(nfeatures > 0, "need at least one candidate feature");
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_score = f64::NEG_INFINITY;
    while chosen.len() < max_features.min(nfeatures) {
        let mut best_add: Option<(usize, f64)> = None;
        for f in 0..nfeatures {
            if chosen.contains(&f) {
                continue;
            }
            let mut candidate = chosen.clone();
            candidate.push(f);
            candidate.sort_unstable();
            let s = score(&candidate);
            if best_add.is_none_or(|(_, bs)| s > bs) {
                best_add = Some((f, s));
            }
        }
        match best_add {
            Some((f, s)) if s > best_score + 1e-12 => {
                chosen.push(f);
                chosen.sort_unstable();
                best_score = s;
            }
            _ => break,
        }
    }
    if chosen.is_empty() {
        // Degenerate: pick the single best feature anyway.
        let mut best = (0usize, f64::NEG_INFINITY);
        for f in 0..nfeatures {
            let s = score(&[f]);
            if s > best.1 {
                best = (f, s);
            }
        }
        return SelectedFeatures {
            columns: vec![best.0],
            score: best.1,
        };
    }
    SelectedFeatures {
        columns: chosen,
        score: best_score,
    }
}

/// Exhaustive search over every subset of size `1..=max_size` (the paper's
/// protocol). Cost is `O(C(n, k))` score evaluations — keep `max_size`
/// small for wide feature tables.
pub fn exhaustive_select<F>(nfeatures: usize, max_size: usize, mut score: F) -> SelectedFeatures
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(nfeatures > 0 && max_size > 0, "invalid search bounds");
    assert!(
        nfeatures <= 24,
        "exhaustive search over >24 features is impractical"
    );
    let mut best = SelectedFeatures {
        columns: Vec::new(),
        score: f64::NEG_INFINITY,
    };
    // Enumerate bitmasks grouped implicitly by popcount filter.
    for mask in 1u32..(1u32 << nfeatures) {
        let size = mask.count_ones() as usize;
        if size > max_size {
            continue;
        }
        let cols: Vec<usize> = (0..nfeatures).filter(|&f| mask & (1 << f) != 0).collect();
        let s = score(&cols);
        if s > best.score + 1e-12 || (s > best.score - 1e-12 && cols.len() < best.columns.len()) {
            best = SelectedFeatures {
                columns: cols,
                score: s,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Score that prefers subsets containing features 1 and 3.
    fn toy_score(cols: &[usize]) -> f64 {
        let mut s = 0.0;
        if cols.contains(&1) {
            s += 1.0;
        }
        if cols.contains(&3) {
            s += 0.5;
        }
        s - 0.01 * cols.len() as f64
    }

    #[test]
    fn forward_selection_finds_informative_features() {
        let r = forward_select(5, 5, toy_score);
        assert!(r.columns.contains(&1));
        assert!(r.columns.contains(&3));
        assert!(
            r.columns.len() <= 3,
            "noise features must be rejected: {:?}",
            r.columns
        );
    }

    #[test]
    fn forward_selection_respects_max() {
        let r = forward_select(5, 1, toy_score);
        assert_eq!(r.columns, vec![1]);
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let r = exhaustive_select(5, 3, toy_score);
        assert_eq!(r.columns, vec![1, 3]);
        assert!((r.score - (1.5 - 0.02)).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_prefers_smaller_ties() {
        // Feature 0 alone scores the same as {0, 4}: prefer the smaller set.
        let score = |cols: &[usize]| if cols.contains(&0) { 1.0 } else { 0.0 };
        let r = exhaustive_select(5, 2, score);
        assert_eq!(r.columns, vec![0]);
    }

    #[test]
    fn loo_exact_score_on_real_dataset() {
        // Feature 0 is the label; feature 1 is noise.
        let mut d = Dataset::new(vec!["sig".into(), "noise".into()], vec!["l".into()]);
        for i in 0..30 {
            d.push(vec![i as f64, ((i * 7919) % 31) as f64], vec![i >= 15]);
        }
        let good = loo_exact_score(&d, &[0], TreeParams::default());
        let bad = loo_exact_score(&d, &[1], TreeParams::default());
        assert!(good > bad, "signal {good} must beat noise {bad}");
        assert_eq!(loo_exact_score(&d, &[], TreeParams::default()), 0.0);
    }
}
