//! CART decision tree with native multilabel support.
//!
//! The paper trains "a Decision Tree classifier ... adjust\[ed\] to perform
//! multilabel classification" with "an optimized version of the CART
//! algorithm" (scikit-learn). This is the same construction: binary splits
//! on `feature <= threshold`, chosen to minimize the Gini impurity *summed
//! over labels*; leaves store per-label empirical probabilities and predict
//! each label independently at the 0.5 threshold. Tree construction is
//! `O(N_features · N_samples · log N_samples)` per level via pre-sorting;
//! query time is `O(depth)` ≤ `O(log N_samples)` for balanced trees, as
//! reported in Section III-D.

use crate::dataset::Dataset;

/// Hyperparameters for tree induction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). `usize::MAX` for unbounded.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
        }
    }
}

/// A node of the fitted tree.
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Per-label empirical probability of `true`.
        probs: Vec<f64>,
        /// Training samples that reached this leaf.
        count: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted multilabel CART decision tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    nfeatures: usize,
    nlabels: usize,
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: TreeParams) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = Self {
            nodes: Vec::new(),
            nfeatures: data.nfeatures(),
            nlabels: data.nlabels(),
        };
        let idx: Vec<usize> = (0..data.len()).collect();
        tree.build(data, &idx, 0, &params);
        tree
    }

    /// Recursively grows the subtree for `idx`; returns its node id.
    fn build(&mut self, data: &Dataset, idx: &[usize], depth: usize, p: &TreeParams) -> usize {
        let probs = label_probs(data, idx, self.nlabels);
        let pure = probs.iter().all(|&q| q == 0.0 || q == 1.0);

        if pure || depth >= p.max_depth || idx.len() < p.min_samples_split {
            return self.push_leaf(probs, idx.len());
        }

        match best_split(data, idx, self.nlabels, p.min_samples_leaf) {
            None => self.push_leaf(probs, idx.len()),
            Some(split) => {
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for &i in idx {
                    if data.features[i][split.feature] <= split.threshold {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                // Reserve our slot first so child ids are stable.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    probs: Vec::new(),
                    count: 0,
                });
                let l = self.build(data, &left, depth + 1, p);
                let r = self.build(data, &right, depth + 1, p);
                self.nodes[id] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: l,
                    right: r,
                };
                id
            }
        }
    }

    fn push_leaf(&mut self, probs: Vec<f64>, count: usize) -> usize {
        self.nodes.push(Node::Leaf { probs, count });
        self.nodes.len() - 1
    }

    /// Per-label probabilities for one sample.
    ///
    /// # Panics
    /// Panics when the feature width disagrees with training.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nfeatures, "feature width mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs, .. } => return probs.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Binary multilabel prediction (probability ≥ 0.5 per label).
    pub fn predict(&self, x: &[f64]) -> Vec<bool> {
        self.predict_proba(x).iter().map(|&p| p >= 0.5).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth.
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }

    /// Human-readable dump of the decision rules (debugging, reports).
    pub fn dump(&self, feature_names: &[String], label_names: &[String]) -> String {
        let mut out = String::new();
        self.dump_node(0, 0, feature_names, label_names, &mut out);
        out
    }

    fn dump_node(
        &self,
        node: usize,
        indent: usize,
        fnames: &[String],
        lnames: &[String],
        out: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        match &self.nodes[node] {
            Node::Leaf { probs, count } => {
                let labels: Vec<String> = probs
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| p >= 0.5)
                    .map(|(i, _)| lnames.get(i).cloned().unwrap_or_else(|| format!("l{i}")))
                    .collect();
                out.push_str(&format!(
                    "{pad}leaf[n={count}]: {{{}}}\n",
                    labels.join(", ")
                ));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let fname = fnames
                    .get(*feature)
                    .cloned()
                    .unwrap_or_else(|| format!("f{feature}"));
                out.push_str(&format!("{pad}if {fname} <= {threshold:.6}:\n"));
                self.dump_node(*left, indent + 1, fnames, lnames, out);
                out.push_str(&format!("{pad}else:\n"));
                self.dump_node(*right, indent + 1, fnames, lnames, out);
            }
        }
    }
}

/// Candidate split.
struct Split {
    feature: usize,
    threshold: f64,
}

/// Per-label mean of `true` over `idx`.
fn label_probs(data: &Dataset, idx: &[usize], nlabels: usize) -> Vec<f64> {
    let mut counts = vec![0usize; nlabels];
    for &i in idx {
        for (l, &b) in data.labels[i].iter().enumerate() {
            counts[l] += usize::from(b);
        }
    }
    counts
        .iter()
        .map(|&c| c as f64 / idx.len().max(1) as f64)
        .collect()
}

/// Multilabel Gini impurity: `Σ_labels 2·p·(1−p)` of a subset described by
/// per-label positive counts.
fn gini(pos: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    pos.iter()
        .map(|&c| {
            let p = c as f64 / nf;
            2.0 * p * (1.0 - p)
        })
        .sum()
}

/// Exhaustive best split: for each feature, sort `idx` by value and scan all
/// boundaries between distinct values, tracking label counts incrementally.
fn best_split(data: &Dataset, idx: &[usize], nlabels: usize, min_leaf: usize) -> Option<Split> {
    let n = idx.len();
    let total_pos = {
        let mut t = vec![0usize; nlabels];
        for &i in idx {
            for (l, &b) in data.labels[i].iter().enumerate() {
                t[l] += usize::from(b);
            }
        }
        t
    };
    let parent = gini(&total_pos, n);
    // (gain, balance = min(|left|, |right|), split): among equal gains the
    // most balanced cut wins, which keeps zero-gain recursion productive.
    let mut best: Option<(f64, usize, Split)> = None;

    let mut order: Vec<usize> = idx.to_vec();
    for f in 0..data.nfeatures() {
        order.sort_unstable_by(|&a, &b| {
            data.features[a][f]
                .partial_cmp(&data.features[b][f])
                .expect("NaN features are not supported")
        });
        let mut left_pos = vec![0usize; nlabels];
        for k in 0..n - 1 {
            let i = order[k];
            for (l, &b) in data.labels[i].iter().enumerate() {
                left_pos[l] += usize::from(b);
            }
            let v = data.features[i][f];
            let v_next = data.features[order[k + 1]][f];
            if v == v_next {
                continue; // not a boundary between distinct values
            }
            let nl = k + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let right_pos: Vec<usize> = total_pos
                .iter()
                .zip(&left_pos)
                .map(|(&t, &l)| t - l)
                .collect();
            let w = (nl as f64 * gini(&left_pos, nl) + nr as f64 * gini(&right_pos, nr)) / n as f64;
            let gain = parent - w;
            // Zero-gain splits are accepted (as in scikit-learn's CART):
            // XOR-like targets only purify after a gain-free first cut. The
            // pure-node check in `build` guarantees termination.
            let balance = nl.min(nr);
            let better = match &best {
                None => gain >= -1e-12,
                Some((g, bal, _)) => gain > g + 1e-12 || (gain >= g - 1e-12 && balance > *bal),
            };
            if better {
                best = Some((
                    gain,
                    balance,
                    Split {
                        feature: f,
                        threshold: 0.5 * (v + v_next),
                    },
                ));
            }
        }
    }
    best.map(|(_, _, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // Label = XOR of two thresholded features: needs depth 2.
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["xor".into()]);
        for (x, y) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for jitter in [0.0, 0.01, 0.02] {
                d.push(vec![x + jitter, y + jitter], vec![(x > 0.5) != (y > 0.5)]);
            }
        }
        d
    }

    #[test]
    fn fits_xor_exactly() {
        let d = xor_dataset();
        let t = DecisionTree::fit(&d, TreeParams::default());
        for (f, l) in d.features.iter().zip(&d.labels) {
            assert_eq!(t.predict(f), *l);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn single_class_is_one_leaf() {
        let mut d = Dataset::new(vec!["x".into()], vec!["l".into()]);
        for i in 0..10 {
            d.push(vec![i as f64], vec![true]);
        }
        let t = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[100.0]), vec![true]);
    }

    #[test]
    fn multilabel_splits_consider_all_labels() {
        // Label 0 depends on x, label 1 on y — the tree must use both.
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into()]);
        for i in 0..8 {
            let x = (i % 2) as f64;
            let y = (i / 4) as f64;
            d.push(vec![x, y], vec![x > 0.5, y > 0.5]);
        }
        let t = DecisionTree::fit(&d, TreeParams::default());
        for (f, l) in d.features.iter().zip(&d.labels) {
            assert_eq!(t.predict(f), *l, "features {f:?}");
        }
    }

    #[test]
    fn max_depth_limits_growth() {
        let d = xor_dataset();
        let stump = DecisionTree::fit(
            &d,
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
        );
        assert!(stump.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut d = Dataset::new(vec!["x".into()], vec!["l".into()]);
        for i in 0..10 {
            d.push(vec![i as f64], vec![i >= 9]);
        }
        // A leaf of one sample would be needed to isolate the outlier.
        let t = DecisionTree::fit(
            &d,
            TreeParams {
                min_samples_leaf: 3,
                ..TreeParams::default()
            },
        );
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn probabilities_are_empirical_means() {
        let mut d = Dataset::new(vec!["x".into()], vec!["l".into()]);
        d.push(vec![0.0], vec![true]);
        d.push(vec![0.0], vec![true]);
        d.push(vec![0.0], vec![false]);
        d.push(vec![0.0], vec![false]);
        // Identical features: no split possible, one leaf at p = 0.5.
        let t = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba(&[0.0]), vec![0.5]);
    }

    #[test]
    fn dump_mentions_feature_names() {
        let d = xor_dataset();
        let t = DecisionTree::fit(&d, TreeParams::default());
        let s = t.dump(&d.feature_names, &d.label_names);
        assert!(s.contains("if x <=") || s.contains("if y <="));
        assert!(s.contains("leaf"));
    }

    #[test]
    fn deterministic_fit() {
        let d = xor_dataset();
        let a = DecisionTree::fit(&d, TreeParams::default());
        let b = DecisionTree::fit(&d, TreeParams::default());
        assert_eq!(a.node_count(), b.node_count());
        for f in &d.features {
            assert_eq!(a.predict(f), b.predict(f));
        }
    }
}
