//! Model validation: Leave-One-Out and k-fold cross-validation, and the
//! grid search used to tune both the tree hyperparameters and the
//! profile-guided classifier's thresholds (`T_ML`, `T_IMB`).

use crate::dataset::Dataset;
use crate::metrics::{exact_match_ratio, partial_match_ratio};
use crate::tree::{DecisionTree, TreeParams};

/// Accuracy pair reported by Table IV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// Exact Match Ratio in [0, 1].
    pub exact: f64,
    /// Partial Match Ratio in [0, 1].
    pub partial: f64,
}

/// Leave-One-Out cross-validation of a decision tree on `data` — the paper's
/// evaluation protocol for Table IV ("for a training set of k matrices,
/// k experiments are performed").
pub fn loo_cv(data: &Dataset, params: TreeParams) -> Accuracy {
    assert!(data.len() >= 2, "LOO needs at least two samples");
    let folds: Vec<Vec<usize>> = (0..data.len()).map(|i| vec![i]).collect();
    cv_with_folds(data, params, &folds)
}

/// k-fold cross-validation with contiguous folds (deterministic).
pub fn kfold_cv(data: &Dataset, params: TreeParams, k: usize) -> Accuracy {
    assert!(k >= 2 && k <= data.len(), "need 2 <= k <= n folds");
    let n = data.len();
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        folds.push((start..start + len).collect());
        start += len;
    }
    cv_with_folds(data, params, &folds)
}

/// Shared CV driver: per fold, train on the complement and test on the fold;
/// final accuracy is the average over all held-out samples.
fn cv_with_folds(data: &Dataset, params: TreeParams, folds: &[Vec<usize>]) -> Accuracy {
    let mut preds = Vec::with_capacity(data.len());
    let mut truths = Vec::with_capacity(data.len());
    for fold in folds {
        let test: std::collections::HashSet<usize> = fold.iter().copied().collect();
        let train_idx: Vec<usize> = (0..data.len()).filter(|i| !test.contains(i)).collect();
        let tree = DecisionTree::fit(&data.subset(&train_idx), params);
        for &i in fold {
            preds.push(tree.predict(&data.features[i]));
            truths.push(data.labels[i].clone());
        }
    }
    Accuracy {
        exact: exact_match_ratio(&preds, &truths),
        partial: partial_match_ratio(&preds, &truths),
    }
}

/// Exhaustive grid search: evaluates `score` on every point of `grid` and
/// returns the best `(point, score)`. Ties break toward the earlier point,
/// making the search deterministic.
pub fn grid_search<P: Clone, F: FnMut(&P) -> f64>(grid: &[P], mut score: F) -> (P, f64) {
    assert!(!grid.is_empty(), "empty grid");
    let mut best_idx = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, p) in grid.iter().enumerate() {
        let s = score(p);
        if s > best_score {
            best_score = s;
            best_idx = i;
        }
    }
    (grid[best_idx].clone(), best_score)
}

/// Cartesian product helper for two-axis grids (e.g. `T_ML × T_IMB`).
pub fn cartesian2(a: &[f64], b: &[f64]) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push((x, y));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-separated two-label dataset the tree should nail under LOO.
    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], vec!["big".into(), "huge".into()]);
        for i in 0..n {
            let x = i as f64;
            d.push(vec![x], vec![x >= n as f64 / 2.0, x >= n as f64 * 0.75]);
        }
        d
    }

    #[test]
    fn loo_on_separable_data_is_high() {
        let d = separable(24);
        let acc = loo_cv(&d, TreeParams::default());
        assert!(acc.exact >= 0.8, "exact {}", acc.exact);
        assert!(acc.partial >= acc.exact);
    }

    #[test]
    fn kfold_runs_and_bounds() {
        let d = separable(20);
        let acc = kfold_cv(&d, TreeParams::default(), 5);
        assert!((0.0..=1.0).contains(&acc.exact));
        assert!((0.0..=1.0).contains(&acc.partial));
        assert!(acc.partial >= acc.exact);
    }

    #[test]
    fn grid_search_finds_max() {
        let grid: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let (best, score) = grid_search(&grid, |&x| -(x - 2.5) * (x - 2.5));
        assert!((best - 2.5).abs() < 1e-9);
        assert!(score.abs() < 1e-9);
    }

    #[test]
    fn grid_search_tie_breaks_to_first() {
        let grid = vec![1, 2, 3];
        let (best, _) = grid_search(&grid, |_| 7.0);
        assert_eq!(best, 1);
    }

    #[test]
    fn cartesian_product_shape() {
        let g = cartesian2(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1.0, 3.0));
        assert_eq!(g[5], (2.0, 5.0));
    }
}
