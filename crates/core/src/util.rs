//! Small unsafe/arch utilities shared by the kernels.

/// A raw mutable pointer that asserts `Send + Sync` so disjoint slices of an
/// output vector can be written from multiple threads.
///
/// # Safety contract
/// Callers must guarantee that concurrent users write **disjoint** index
/// ranges. The scheduling executors in [`crate::schedule`] uphold this by
/// construction: every row index is dispensed to exactly one thread.
#[derive(Clone, Copy)]
pub(crate) struct SendMutPtr<T>(pub *mut T);

unsafe impl<T> Send for SendMutPtr<T> {}
unsafe impl<T> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    #[inline]
    pub(crate) fn new(slice: &mut [T]) -> Self {
        Self(slice.as_mut_ptr())
    }

    /// # Safety
    /// `idx` must be in bounds of the original slice and not concurrently
    /// aliased by another writer.
    #[inline]
    pub(crate) unsafe fn write(&self, idx: usize, value: T) {
        unsafe { *self.0.add(idx) = value }
    }

    /// Reads the element at `idx` through the raw pointer.
    ///
    /// # Safety
    /// `idx` must be in bounds of the original slice and the element must not
    /// be concurrently written. The level-scheduled triangular solve upholds
    /// this by construction: a row only reads entries solved in *earlier*
    /// levels, published by the inter-level barrier.
    #[inline]
    pub(crate) unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        unsafe { *self.0.add(idx) }
    }

    /// Reborrows a window of the original slice.
    ///
    /// # Safety
    /// `[offset, offset + len)` must be in bounds of the original slice and
    /// exclusively owned by the caller for the lifetime of the window.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn window(&self, offset: usize, len: usize) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

/// Issues a read prefetch for the cache line containing `ptr` into L1
/// (locality hint T0), matching the paper's ML optimization ("data are
/// prefetched into the L1 cache"). No-op on non-x86 targets.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Returns true when the AVX2+FMA SIMD kernels can run on this host.
///
/// Both features are required: every vectorized microkernel in the family
/// issues `_mm256_fmadd_pd`, and compiling that intrinsic inside a
/// function whose `#[target_feature]` set lacks `fma` silently legalizes
/// it into a slow non-fused fallback — the features must travel together
/// at the detection site and on the `#[target_feature]` attributes.
///
/// The answer is detected once and cached in a process-wide `OnceLock`, so
/// the remaining callers on hot paths pay a single relaxed load — kernels
/// still resolve their inner loop at construction (see
/// [`crate::kernels::InnerLoop::resolve_for_host`]), but any residual
/// per-row query cannot reintroduce CPUID overhead.
#[inline]
pub fn simd_available() -> bool {
    static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Median of a slice of `f64` (average of the two middle elements for even
/// lengths). Returns `None` for empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in medians"));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    })
}

/// Harmonic mean, the summary statistic the paper uses for performance rates
/// over repeated benchmark runs (Section IV-A).
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[2.0, 2.0]), Some(2.0));
        let hm = harmonic_mean(&[1.0, 2.0]).unwrap();
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
    }

    #[test]
    fn send_ptr_disjoint_writes() {
        let mut data = vec![0u64; 8];
        let p = SendMutPtr::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..2 {
                s.spawn(move || {
                    for i in (t * 4)..(t * 4 + 4) {
                        unsafe { p.write(i, i as u64) };
                    }
                });
            }
        });
        assert_eq!(data, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn prefetch_is_safe_noop() {
        let v = [1.0f64; 4];
        prefetch_read(v.as_ptr());
    }
}
