//! One- and two-dimensional work partitioning schemes.
//!
//! The paper's baseline uses "a static one-dimensional row partitioning
//! scheme, where each partition has approximately equal number of nonzero
//! elements and is assigned to a single thread" (Section IV-A). The MKL-like
//! baseline instead splits by row count, which is what exposes the IMB class.
//!
//! Whole-row partitions cannot balance a matrix whose single row outweighs a
//! thread's quota — the residual IMB case. [`Partition2d`] removes that
//! limit with the merge-path decomposition (Merrill & Garland's merge-based
//! CSR): the (row-pointer, nonzero) merge diagonal is cut into equal-work
//! segments that may split *inside* a row, so per-thread work is balanced to
//! within one work item regardless of the row-length distribution.

use crate::csr::CsrMatrix;
use std::ops::Range;

/// A static assignment of contiguous row ranges to threads.
///
/// Invariants (checked by `debug_assert` and property tests):
/// ranges are contiguous, disjoint, ordered, and cover `0..nrows`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    ranges: Vec<Range<usize>>,
}

impl Partition {
    /// Builds a partition from explicit ranges, validating the covering
    /// invariant.
    pub fn from_ranges(nrows: usize, ranges: Vec<Range<usize>>) -> Self {
        let mut expect = 0usize;
        for r in &ranges {
            assert_eq!(r.start, expect, "partition ranges must be contiguous");
            assert!(r.end >= r.start, "partition range must be non-decreasing");
            expect = r.end;
        }
        assert_eq!(expect, nrows, "partition must cover all rows");
        Self { ranges }
    }

    /// Splits `0..nrows` into `nparts` ranges of (nearly) equal **row count**.
    pub fn by_rows(nrows: usize, nparts: usize) -> Self {
        assert!(nparts > 0, "need at least one partition");
        let base = nrows / nparts;
        let extra = nrows % nparts;
        let mut ranges = Vec::with_capacity(nparts);
        let mut start = 0;
        for p in 0..nparts {
            let len = base + usize::from(p < extra);
            ranges.push(start..start + len);
            start += len;
        }
        Self { ranges }
    }

    /// Splits rows into `nparts` contiguous ranges of (nearly) equal **nonzero
    /// count** — the paper's baseline workload distribution.
    ///
    /// Greedy scan: a partition is closed once its nnz reaches the remaining
    /// average, which keeps every partition within one row's worth of the
    /// ideal except when single rows exceed the quota (the IMB case).
    pub fn by_nnz(csr: &CsrMatrix, nparts: usize) -> Self {
        Self::by_rowptr(csr.rowptr(), nparts)
    }

    /// Same as [`Self::by_nnz`] but driven by an explicit cumulative row
    /// pointer, so it also works for derived formats (e.g. the short-row part
    /// of a decomposed matrix).
    pub fn by_rowptr(rowptr: &[usize], nparts: usize) -> Self {
        assert!(nparts > 0, "need at least one partition");
        assert!(!rowptr.is_empty(), "rowptr must have at least one entry");
        let nrows = rowptr.len() - 1;
        // Degenerate case: more partitions than rows. Rows are indivisible
        // here, so the best any 1-D split can do is one row per leading
        // partition with trailing empty ranges — produced explicitly so
        // callers never need to clamp `nparts` (the greedy scan below would
        // instead let its take-at-least-one-row rule swallow runs of empty
        // rows into the first partition).
        if nparts > nrows {
            let mut ranges: Vec<Range<usize>> = (0..nrows).map(|r| r..r + 1).collect();
            ranges.resize(nparts, nrows..nrows);
            return Self::from_ranges(nrows, ranges);
        }
        let total = rowptr[nrows];
        let row_nnz = |i: usize| rowptr[i + 1] - rowptr[i];
        let mut ranges = Vec::with_capacity(nparts);
        let mut row = 0usize;
        let mut done_nnz = 0usize;
        for p in 0..nparts {
            let parts_left = nparts - p;
            let target = (total - done_nnz).div_ceil(parts_left);
            let start = row;
            let mut acc = 0usize;
            // Close the partition once the remaining-average quota is met;
            // empty tail ranges are permitted when rows run out.
            while row < nrows && (acc < target || acc == 0) {
                if p + 1 < nparts && acc > 0 && acc + row_nnz(row) > target + target / 2 {
                    break;
                }
                acc += row_nnz(row);
                row += 1;
            }
            if p + 1 == nparts {
                row = nrows;
            }
            done_nnz += rowptr[row] - rowptr[start];
            ranges.push(start..row);
        }
        Self::from_ranges(nrows, ranges)
    }

    /// Number of partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no partitions (only for `nrows == 0` pathologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The row range of partition `p`.
    #[inline]
    pub fn range(&self, p: usize) -> Range<usize> {
        self.ranges[p].clone()
    }

    /// All ranges.
    #[inline]
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Per-partition nonzero counts for a given matrix.
    pub fn nnz_per_part(&self, csr: &CsrMatrix) -> Vec<usize> {
        self.ranges
            .iter()
            .map(|r| csr.rowptr()[r.end] - csr.rowptr()[r.start])
            .collect()
    }

    /// Load-imbalance factor `max(nnz_p) / mean(nnz_p)`; 1.0 is perfectly
    /// balanced. Returns 1.0 for empty matrices.
    pub fn imbalance_factor(&self, csr: &CsrMatrix) -> f64 {
        let per = self.nnz_per_part(csr);
        let max = per.iter().copied().max().unwrap_or(0) as f64;
        let mean = csr.nnz() as f64 / per.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// One thread's share of a merge-path decomposition: the rows whose *end*
/// the segment owns (it writes their output entries) plus the exact nonzero
/// range it consumes.
///
/// Unlike [`Partition`] ranges, a segment's nonzero range may start or end
/// in the middle of a row: the leading row continues a previous segment's
/// row (that segment's carry-out lands there in the fix-up pass), and any
/// nonzeros past the last owned row are this segment's own carry-out into
/// `rows.end`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeSegment {
    /// Rows whose end marker this segment consumes — the rows it writes.
    pub rows: Range<usize>,
    /// Nonzero indices this segment consumes.
    pub nnz: Range<usize>,
}

impl MergeSegment {
    /// Total merge work items (row ends + nonzeros) in the segment.
    #[inline]
    pub fn work(&self) -> usize {
        self.rows.len() + self.nnz.len()
    }
}

/// A two-dimensional nonzero-split partition over the CSR merge path
/// (Merrill & Garland, *Merge-based parallel sparse matrix-vector
/// multiplication*, SC'16).
///
/// The kernel's total work is modeled as the merge of two sorted lists —
/// the `nrows` row-end offsets `rowptr[1..]` and the `nnz` nonzero indices.
/// Cutting the merge at equally spaced diagonals yields `nparts` segments
/// whose work differs by at most one item, *even when a single row holds
/// most of the matrix*: the cut simply lands inside the row and the
/// consumer reconciles the partial sums in a carry fix-up pass (see
/// `kernels::MergeCsr`).
///
/// Invariants (checked by debug assertions and property tests): nonzero
/// ranges are contiguous, disjoint and cover `0..nnz`; row ranges likewise
/// cover `0..nrows`; and every segment's coordinates lie on the merge path
/// (`rowptr[rows.start] <= nnz.start <= rowptr[rows.start + 1]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition2d {
    segments: Vec<MergeSegment>,
    nrows: usize,
    nnz: usize,
}

impl Partition2d {
    /// Cuts the merge path of `rowptr` into `nparts` equal-work segments.
    /// Cost: `O(nparts · log nrows)` — two binary searches per boundary.
    pub fn merge_path(rowptr: &[usize], nparts: usize) -> Self {
        assert!(nparts > 0, "need at least one segment");
        assert!(!rowptr.is_empty(), "rowptr must have at least one entry");
        let nrows = rowptr.len() - 1;
        let nnz = rowptr[nrows];
        let total = nrows + nnz;
        let mut cuts = Vec::with_capacity(nparts + 1);
        for p in 0..=nparts {
            // Diagonal p·total/nparts, split into (rows consumed, nnz
            // consumed) by binary search along the merge.
            cuts.push(merge_path_search(rowptr, p * total / nparts));
        }
        let segments = cuts
            .windows(2)
            .map(|w| MergeSegment {
                rows: w[0].0..w[1].0,
                nnz: w[0].1..w[1].1,
            })
            .collect();
        Self {
            segments,
            nrows,
            nnz,
        }
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when there are no segments (never produced by `merge_path`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segment `p`.
    #[inline]
    pub fn segment(&self, p: usize) -> &MergeSegment {
        &self.segments[p]
    }

    /// All segments.
    #[inline]
    pub fn segments(&self) -> &[MergeSegment] {
        &self.segments
    }

    /// Rows covered (the stored matrix's row count).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Nonzeros covered.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Work-imbalance factor `max(work_p) / mean(work_p)`; the merge-path
    /// construction bounds this by `1 + nparts/total`, i.e. essentially 1.
    pub fn imbalance_factor(&self) -> f64 {
        let max = self
            .segments
            .iter()
            .map(MergeSegment::work)
            .max()
            .unwrap_or(0) as f64;
        let mean = (self.nrows + self.nnz) as f64 / self.segments.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Finds the merge-path split of diagonal `d`: the `(rows, nnz)` pair with
/// `rows + nnz = d` such that consuming that many items of each list is
/// consistent with the merge order (row-end `i` is consumed once all of row
/// `i`'s nonzeros are).
fn merge_path_search(rowptr: &[usize], d: usize) -> (usize, usize) {
    let nrows = rowptr.len() - 1;
    let nnz = rowptr[nrows];
    let mut lo = d.saturating_sub(nnz);
    let mut hi = d.min(nrows);
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Consume row-end `mid` iff all its nonzeros fit before diagonal d:
        // rowptr[mid + 1] <= d - mid - 1.
        if rowptr[mid + 1] + mid < d {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    debug_assert!(rowptr[lo] <= d - lo, "split below the merge path");
    debug_assert!(lo == nrows || d - lo <= rowptr[lo + 1], "split above path");
    (lo, d - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ragged(nrows: usize, lens: &[usize]) -> CsrMatrix {
        let mut coo = CooMatrix::new(nrows, nrows.max(*lens.iter().max().unwrap_or(&1)));
        for (i, &l) in lens.iter().enumerate() {
            for j in 0..l {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn by_rows_covers_evenly() {
        let p = Partition::by_rows(10, 3);
        assert_eq!(p.ranges(), &[0..4, 4..7, 7..10]);
    }

    #[test]
    fn by_rows_more_parts_than_rows() {
        let p = Partition::by_rows(2, 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.range(3), 2..2);
        let total: usize = p.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn by_nnz_balances_uniform() {
        let m = ragged(8, &[4; 8]);
        let p = Partition::by_nnz(&m, 4);
        let per = p.nnz_per_part(&m);
        assert_eq!(per, vec![8, 8, 8, 8]);
        assert!((p.imbalance_factor(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_nnz_handles_dominant_row() {
        // One row holds 100 of 107 nonzeros: its partition must be the hot one.
        let m = ragged(8, &[1, 1, 1, 100, 1, 1, 1, 1]);
        let p = Partition::by_nnz(&m, 4);
        assert_eq!(p.len(), 4);
        assert!(
            p.imbalance_factor(&m) > 3.0,
            "dominant row forces imbalance"
        );
        let total: usize = p.nnz_per_part(&m).iter().sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn by_nnz_beats_by_rows_on_skew() {
        // Front-loaded matrix: first rows are dense, later rows sparse.
        let lens: Vec<usize> = (0..64).map(|i| if i < 8 { 64 } else { 2 }).collect();
        let m = ragged(64, &lens);
        let rows = Partition::by_rows(64, 4);
        let nnz = Partition::by_nnz(&m, 4);
        assert!(nnz.imbalance_factor(&m) < rows.imbalance_factor(&m));
    }

    #[test]
    #[should_panic(expected = "cover all rows")]
    fn from_ranges_validates_cover() {
        Partition::from_ranges(4, std::iter::once(0..2).collect());
    }

    #[test]
    fn by_nnz_more_parts_than_rows_yields_trailing_empties() {
        // Regression: callers used to have to clamp nparts themselves; now
        // the degenerate split is one row per leading partition + empty tail.
        let m = ragged(3, &[5, 1, 9]);
        let p = Partition::by_nnz(&m, 7);
        assert_eq!(p.len(), 7);
        assert_eq!(p.ranges()[..3], [0..1, 1..2, 2..3]);
        for tail in &p.ranges()[3..] {
            assert_eq!(tail.clone(), 3..3, "tail ranges must be empty");
        }
        let total: usize = p.nnz_per_part(&m).iter().sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn by_rowptr_all_empty_rows_more_parts_than_rows() {
        // Empty rows used to be swallowed whole by the first partition's
        // take-at-least-one-row rule; the degenerate path spreads them.
        let p = Partition::by_rowptr(&[0, 0, 0], 4);
        assert_eq!(p.ranges(), &[0..1, 1..2, 2..2, 2..2]);
    }

    fn check_merge_invariants(rowptr: &[usize], nparts: usize) -> Partition2d {
        let p = Partition2d::merge_path(rowptr, nparts);
        assert_eq!(p.len(), nparts);
        let nrows = rowptr.len() - 1;
        let nnz = rowptr[nrows];
        let (mut row, mut nz) = (0usize, 0usize);
        for seg in p.segments() {
            assert_eq!(seg.rows.start, row, "row ranges must be contiguous");
            assert_eq!(seg.nnz.start, nz, "nnz ranges must be contiguous");
            // The segment boundary sits on the merge path: its first nonzero
            // belongs to the row it starts in (or that row's end).
            assert!(rowptr[seg.rows.start] <= seg.nnz.start);
            if seg.rows.start < nrows {
                assert!(seg.nnz.start <= rowptr[seg.rows.start + 1]);
            }
            row = seg.rows.end;
            nz = seg.nnz.end;
        }
        assert_eq!(row, nrows, "segments must cover all rows");
        assert_eq!(nz, nnz, "segments must cover all nonzeros");
        // Equal-work guarantee: no segment exceeds the ceiling diagonal step.
        let step = (nrows + nnz).div_ceil(nparts);
        for seg in p.segments() {
            assert!(
                seg.work() <= step + 1,
                "segment work {} > {step}",
                seg.work()
            );
        }
        p
    }

    #[test]
    fn merge_path_balances_dominant_row() {
        // One row holds 100 of 107 nonzeros: whole-row partitioning is stuck
        // at imbalance > 3 (see above); the merge path stays at ~1.
        let m = ragged(8, &[1, 1, 1, 100, 1, 1, 1, 1]);
        let p = check_merge_invariants(m.rowptr(), 4);
        assert!(
            p.imbalance_factor() < 1.1,
            "merge path must balance within one item, got {}",
            p.imbalance_factor()
        );
        // The dominant row is split across several segments.
        let spanning = p
            .segments()
            .iter()
            .filter(|s| s.nnz.start < m.rowptr()[4] && s.nnz.end > m.rowptr()[3])
            .count();
        assert!(spanning >= 3, "mega row must span segments, got {spanning}");
    }

    #[test]
    fn merge_path_edge_shapes() {
        // Empty matrix.
        let p = Partition2d::merge_path(&[0], 3);
        assert_eq!(p.len(), 3);
        assert!(p.segments().iter().all(|s| s.work() == 0));
        // All-empty rows: work is the row ends only.
        check_merge_invariants(&[0, 0, 0, 0], 2);
        // More parts than total work items.
        check_merge_invariants(&[0, 1, 2], 16);
        // Single row holding everything.
        check_merge_invariants(&[0, 64], 4);
    }

    #[test]
    fn merge_path_uniform_matches_row_split() {
        let m = ragged(16, &[4; 16]);
        let p = check_merge_invariants(m.rowptr(), 4);
        for seg in p.segments() {
            assert_eq!(seg.rows.len(), 4, "uniform rows split evenly");
            assert_eq!(seg.nnz.len(), 16);
        }
    }
}
