//! One-dimensional row partitioning schemes.
//!
//! The paper's baseline uses "a static one-dimensional row partitioning
//! scheme, where each partition has approximately equal number of nonzero
//! elements and is assigned to a single thread" (Section IV-A). The MKL-like
//! baseline instead splits by row count, which is what exposes the IMB class.

use crate::csr::CsrMatrix;
use std::ops::Range;

/// A static assignment of contiguous row ranges to threads.
///
/// Invariants (checked by `debug_assert` and property tests):
/// ranges are contiguous, disjoint, ordered, and cover `0..nrows`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    ranges: Vec<Range<usize>>,
}

impl Partition {
    /// Builds a partition from explicit ranges, validating the covering
    /// invariant.
    pub fn from_ranges(nrows: usize, ranges: Vec<Range<usize>>) -> Self {
        let mut expect = 0usize;
        for r in &ranges {
            assert_eq!(r.start, expect, "partition ranges must be contiguous");
            assert!(r.end >= r.start, "partition range must be non-decreasing");
            expect = r.end;
        }
        assert_eq!(expect, nrows, "partition must cover all rows");
        Self { ranges }
    }

    /// Splits `0..nrows` into `nparts` ranges of (nearly) equal **row count**.
    pub fn by_rows(nrows: usize, nparts: usize) -> Self {
        assert!(nparts > 0, "need at least one partition");
        let base = nrows / nparts;
        let extra = nrows % nparts;
        let mut ranges = Vec::with_capacity(nparts);
        let mut start = 0;
        for p in 0..nparts {
            let len = base + usize::from(p < extra);
            ranges.push(start..start + len);
            start += len;
        }
        Self { ranges }
    }

    /// Splits rows into `nparts` contiguous ranges of (nearly) equal **nonzero
    /// count** — the paper's baseline workload distribution.
    ///
    /// Greedy scan: a partition is closed once its nnz reaches the remaining
    /// average, which keeps every partition within one row's worth of the
    /// ideal except when single rows exceed the quota (the IMB case).
    pub fn by_nnz(csr: &CsrMatrix, nparts: usize) -> Self {
        Self::by_rowptr(csr.rowptr(), nparts)
    }

    /// Same as [`Self::by_nnz`] but driven by an explicit cumulative row
    /// pointer, so it also works for derived formats (e.g. the short-row part
    /// of a decomposed matrix).
    pub fn by_rowptr(rowptr: &[usize], nparts: usize) -> Self {
        assert!(nparts > 0, "need at least one partition");
        assert!(!rowptr.is_empty(), "rowptr must have at least one entry");
        let nrows = rowptr.len() - 1;
        let total = rowptr[nrows];
        let row_nnz = |i: usize| rowptr[i + 1] - rowptr[i];
        let mut ranges = Vec::with_capacity(nparts);
        let mut row = 0usize;
        let mut done_nnz = 0usize;
        for p in 0..nparts {
            let parts_left = nparts - p;
            let target = (total - done_nnz).div_ceil(parts_left);
            let start = row;
            let mut acc = 0usize;
            // Close the partition once the remaining-average quota is met;
            // empty tail ranges are permitted when rows run out.
            while row < nrows && (acc < target || acc == 0) {
                if p + 1 < nparts && acc > 0 && acc + row_nnz(row) > target + target / 2 {
                    break;
                }
                acc += row_nnz(row);
                row += 1;
            }
            if p + 1 == nparts {
                row = nrows;
            }
            done_nnz += rowptr[row] - rowptr[start];
            ranges.push(start..row);
        }
        Self::from_ranges(nrows, ranges)
    }

    /// Number of partitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no partitions (only for `nrows == 0` pathologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The row range of partition `p`.
    #[inline]
    pub fn range(&self, p: usize) -> Range<usize> {
        self.ranges[p].clone()
    }

    /// All ranges.
    #[inline]
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Per-partition nonzero counts for a given matrix.
    pub fn nnz_per_part(&self, csr: &CsrMatrix) -> Vec<usize> {
        self.ranges
            .iter()
            .map(|r| csr.rowptr()[r.end] - csr.rowptr()[r.start])
            .collect()
    }

    /// Load-imbalance factor `max(nnz_p) / mean(nnz_p)`; 1.0 is perfectly
    /// balanced. Returns 1.0 for empty matrices.
    pub fn imbalance_factor(&self, csr: &CsrMatrix) -> f64 {
        let per = self.nnz_per_part(csr);
        let max = per.iter().copied().max().unwrap_or(0) as f64;
        let mean = csr.nnz() as f64 / per.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ragged(nrows: usize, lens: &[usize]) -> CsrMatrix {
        let mut coo = CooMatrix::new(nrows, nrows.max(*lens.iter().max().unwrap_or(&1)));
        for (i, &l) in lens.iter().enumerate() {
            for j in 0..l {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn by_rows_covers_evenly() {
        let p = Partition::by_rows(10, 3);
        assert_eq!(p.ranges(), &[0..4, 4..7, 7..10]);
    }

    #[test]
    fn by_rows_more_parts_than_rows() {
        let p = Partition::by_rows(2, 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.range(3), 2..2);
        let total: usize = p.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn by_nnz_balances_uniform() {
        let m = ragged(8, &[4; 8]);
        let p = Partition::by_nnz(&m, 4);
        let per = p.nnz_per_part(&m);
        assert_eq!(per, vec![8, 8, 8, 8]);
        assert!((p.imbalance_factor(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_nnz_handles_dominant_row() {
        // One row holds 100 of 107 nonzeros: its partition must be the hot one.
        let m = ragged(8, &[1, 1, 1, 100, 1, 1, 1, 1]);
        let p = Partition::by_nnz(&m, 4);
        assert_eq!(p.len(), 4);
        assert!(
            p.imbalance_factor(&m) > 3.0,
            "dominant row forces imbalance"
        );
        let total: usize = p.nnz_per_part(&m).iter().sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    fn by_nnz_beats_by_rows_on_skew() {
        // Front-loaded matrix: first rows are dense, later rows sparse.
        let lens: Vec<usize> = (0..64).map(|i| if i < 8 { 64 } else { 2 }).collect();
        let m = ragged(64, &lens);
        let rows = Partition::by_rows(64, 4);
        let nnz = Partition::by_nnz(&m, 4);
        assert!(nnz.imbalance_factor(&m) < rows.imbalance_factor(&m));
    }

    #[test]
    #[should_panic(expected = "cover all rows")]
    fn from_ranges_validates_cover() {
        Partition::from_ranges(4, std::iter::once(0..2).collect());
    }
}
