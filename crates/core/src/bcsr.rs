//! Block CSR (BCSR) — register-blocking format from the OSKI/SPARSITY line
//! of work the paper's related-work section builds on (Vuduc et al.).
//!
//! The matrix is tiled into dense `R × C` blocks; any block containing at
//! least one nonzero is stored densely. Blocked FEM matrices (consph,
//! pkustk08, nd24k categories) fill blocks almost completely and gain from
//! the fixed-trip-count inner loop; scattered matrices pay for explicit
//! zeros — the classic fill-ratio trade-off, quantified by
//! [`BcsrMatrix::fill_ratio`].

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// BCSR with run-time block dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct BcsrMatrix {
    nrows: usize,
    ncols: usize,
    r: usize,
    c: usize,
    /// Block-row pointer (`nblock_rows + 1`).
    browptr: Vec<usize>,
    /// Block column index per stored block.
    bcolind: Vec<u32>,
    /// Dense `r × c` payload per block, row-major within the block.
    blocks: Vec<f64>,
    /// True (unpadded) nonzero count.
    nnz: usize,
}

impl BcsrMatrix {
    /// Converts from CSR with `r × c` blocks.
    ///
    /// # Panics
    /// Panics for zero block dimensions.
    pub fn from_csr(csr: &CsrMatrix, r: usize, c: usize) -> Self {
        assert!(r > 0 && c > 0, "block dimensions must be positive");
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nbrows = nrows.div_ceil(r);

        let mut browptr = Vec::with_capacity(nbrows + 1);
        browptr.push(0usize);
        let mut bcolind: Vec<u32> = Vec::new();
        let mut blocks: Vec<f64> = Vec::new();

        // One pass per block row: gather the sorted set of touched block
        // columns, then scatter the values into the dense payloads.
        let mut touched: Vec<u32> = Vec::new();
        for br in 0..nbrows {
            touched.clear();
            let row_lo = br * r;
            let row_hi = ((br + 1) * r).min(nrows);
            for i in row_lo..row_hi {
                for &col in csr.row_cols(i) {
                    touched.push(col / c as u32);
                }
            }
            touched.sort_unstable();
            touched.dedup();

            let base_block = blocks.len();
            blocks.resize(base_block + touched.len() * r * c, 0.0);
            for i in row_lo..row_hi {
                for (&col, &val) in csr.row_cols(i).iter().zip(csr.row_vals(i)) {
                    let bc = col / c as u32;
                    let slot = touched.binary_search(&bc).expect("block was touched");
                    let within = (i - row_lo) * c + (col as usize % c);
                    blocks[base_block + slot * r * c + within] = val;
                }
            }
            bcolind.extend_from_slice(&touched);
            browptr.push(bcolind.len());
        }

        Self {
            nrows,
            ncols,
            r,
            c,
            browptr,
            bcolind,
            blocks,
            nnz: csr.nnz(),
        }
    }

    /// Number of rows of the logical matrix.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True (unpadded) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block shape `(r, c)`.
    #[inline]
    pub fn block_shape(&self) -> (usize, usize) {
        (self.r, self.c)
    }

    /// Stored blocks.
    #[inline]
    pub fn nblocks(&self) -> usize {
        self.bcolind.len()
    }

    /// Number of block rows.
    #[inline]
    pub fn nbrows(&self) -> usize {
        self.browptr.len() - 1
    }

    /// Block-row pointer (`nblock_rows + 1` entries).
    #[inline]
    pub fn browptr(&self) -> &[usize] {
        &self.browptr
    }

    /// Block column index per stored block.
    #[inline]
    pub fn bcolind(&self) -> &[u32] {
        &self.bcolind
    }

    /// Dense block payloads, `r · c` row-major values per block.
    #[inline]
    pub fn blocks(&self) -> &[f64] {
        &self.blocks
    }

    /// Stored slots per true nonzero (≥ 1.0; 1.0 = perfect blocking).
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            (self.nblocks() * self.r * self.c) as f64 / self.nnz as f64
        }
    }

    /// Footprint in bytes (dense payloads + block indices + pointer).
    pub fn footprint_bytes(&self) -> usize {
        self.blocks.len() * 8 + self.bcolind.len() * 4 + self.browptr.len() * 8
    }

    /// `y = A·x` with the fixed `r × c` inner kernel.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        y.fill(0.0);
        let (r, c) = (self.r, self.c);
        let nbrows = self.browptr.len() - 1;
        for br in 0..nbrows {
            let row_lo = br * r;
            let rows_here = (self.nrows - row_lo).min(r);
            for bk in self.browptr[br]..self.browptr[br + 1] {
                let col_lo = self.bcolind[bk] as usize * c;
                let cols_here = (self.ncols - col_lo).min(c);
                let payload = &self.blocks[bk * r * c..(bk + 1) * r * c];
                for di in 0..rows_here {
                    let mut sum = 0.0;
                    for dj in 0..cols_here {
                        sum += payload[di * c + dj] * x[col_lo + dj];
                    }
                    y[row_lo + di] += sum;
                }
            }
        }
    }

    /// Converts back to COO, dropping stored explicit zeros.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz);
        let (r, c) = (self.r, self.c);
        let nbrows = self.browptr.len() - 1;
        for br in 0..nbrows {
            let row_lo = br * r;
            for bk in self.browptr[br]..self.browptr[br + 1] {
                let col_lo = self.bcolind[bk] as usize * c;
                let payload = &self.blocks[bk * r * c..(bk + 1) * r * c];
                for di in 0..r.min(self.nrows - row_lo) {
                    for dj in 0..c.min(self.ncols - col_lo) {
                        let v = payload[di * c + dj];
                        if v != 0.0 {
                            coo.push(row_lo + di, col_lo + dj, v);
                        }
                    }
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SparseLinOp;

    fn block_diagonal(nblocks: usize, b: usize) -> CsrMatrix {
        let n = nblocks * b;
        let mut coo = CooMatrix::new(n, n);
        for k in 0..nblocks {
            for i in 0..b {
                for j in 0..b {
                    coo.push(k * b + i, k * b + j, (i * b + j + 1) as f64);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn block_diagonal_has_perfect_fill() {
        let csr = block_diagonal(5, 3);
        let bcsr = BcsrMatrix::from_csr(&csr, 3, 3);
        assert_eq!(bcsr.nblocks(), 5);
        assert_eq!(bcsr.fill_ratio(), 1.0);
    }

    #[test]
    fn scattered_matrix_pays_fill() {
        let mut coo = CooMatrix::new(32, 32);
        for i in 0..32 {
            coo.push(i, (i * 13 + 5) % 32, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let bcsr = BcsrMatrix::from_csr(&csr, 4, 4);
        assert!(bcsr.fill_ratio() >= 8.0, "fill {}", bcsr.fill_ratio());
    }

    #[test]
    fn spmv_matches_reference_various_block_shapes() {
        let mut coo = CooMatrix::new(25, 19);
        let mut s = 7u64;
        for _ in 0..120 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            coo.push(
                (s >> 13) as usize % 25,
                (s >> 33) as usize % 19,
                ((s % 17) as f64) - 8.0,
            );
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..19).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut want = vec![0.0; 25];
        crate::kernels::SerialCsr::new(std::sync::Arc::new(csr.clone())).spmv(&x, &mut want);

        for (r, c) in [(1, 1), (2, 2), (3, 2), (4, 4), (2, 5), (7, 3)] {
            let bcsr = BcsrMatrix::from_csr(&csr, r, c);
            let mut got = vec![f64::NAN; 25];
            bcsr.spmv(&x, &mut got);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!((a - b).abs() < 1e-12, "block {r}x{c} row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn round_trip_preserves_nonzeros() {
        let csr = block_diagonal(4, 3);
        let bcsr = BcsrMatrix::from_csr(&csr, 2, 2);
        assert_eq!(CsrMatrix::from_coo(&bcsr.to_coo()), csr);
    }

    #[test]
    fn one_by_one_blocks_equal_csr_footprint_order() {
        let csr = block_diagonal(6, 2);
        let bcsr = BcsrMatrix::from_csr(&csr, 1, 1);
        assert_eq!(bcsr.nblocks(), csr.nnz());
        assert_eq!(bcsr.fill_ratio(), 1.0);
    }
}
