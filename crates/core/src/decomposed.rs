//! Decomposed CSR — the paper's IMB optimization for matrices with highly
//! uneven row lengths (Fig. 5 and Fig. 6).
//!
//! Rows whose nonzero count exceeds a threshold ("long rows") are skipped by
//! the regular row loop and computed in a second phase where *every* thread
//! works on a slice of each long row, followed by a reduction of partial
//! sums. Storage matches the paper's modified CSR: `values`/column data stay
//! in plain row-major order, `rowptr` accumulates only short-row counts, and
//! `offset[i]` holds the number of long-row elements preceding row `i`, so
//! row `i`'s elements start at global position `rowptr[i] + offset[i]`.

use crate::csr::CsrMatrix;

/// CSR decomposed into a short-row part and a long-row part (paper Fig. 5).
#[derive(Clone, Debug, PartialEq)]
pub struct DecomposedCsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Cumulative count of *short-row* nonzeros (`nrows + 1` entries).
    rowptr: Vec<usize>,
    /// Cumulative count of *long-row* nonzeros before each row
    /// (`nrows + 1` entries) — the paper's `offset` array.
    offset: Vec<usize>,
    /// Indices of the long rows — the paper's `lrowind` array.
    lrowind: Vec<u32>,
    colind: Vec<u32>,
    values: Vec<f64>,
    threshold: usize,
}

impl DecomposedCsrMatrix {
    /// Decomposes `csr`, treating rows with more than `threshold` nonzeros as
    /// long rows.
    pub fn from_csr(csr: &CsrMatrix, threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        let nrows = csr.nrows();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut offset = Vec::with_capacity(nrows + 1);
        let mut lrowind = Vec::new();
        rowptr.push(0usize);
        offset.push(0usize);
        for i in 0..nrows {
            let len = csr.row_nnz(i);
            let long = len > threshold;
            if long {
                lrowind.push(i as u32);
            }
            rowptr.push(rowptr[i] + if long { 0 } else { len });
            offset.push(offset[i] + if long { len } else { 0 });
        }
        Self {
            nrows,
            ncols: csr.ncols(),
            rowptr,
            offset,
            lrowind,
            colind: csr.colind().to_vec(),
            values: csr.values().to_vec(),
            threshold,
        }
    }

    /// Chooses a long-row threshold from the row-length distribution: rows
    /// longer than `factor · nnz_avg` (min 8) are split out. The paper detects
    /// the subcategory "by comparing the nnz_max and nnz_avg features".
    pub fn auto_threshold(csr: &CsrMatrix, factor: f64) -> usize {
        let n = csr.nrows().max(1);
        let avg = csr.nnz() as f64 / n as f64;
        ((avg * factor).ceil() as usize).max(8)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total number of nonzeros (short + long).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The long-row indices (`lrowind` in the paper).
    #[inline]
    pub fn long_rows(&self) -> &[u32] {
        &self.lrowind
    }

    /// The threshold used for the split.
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of nonzeros held by long rows.
    pub fn long_nnz(&self) -> usize {
        self.offset[self.nrows]
    }

    /// Short-row cumulative pointer (used for nnz-balanced partitioning of
    /// phase 1).
    #[inline]
    pub fn short_rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Global element range of row `i` in `values`/`colind`
    /// (row-major order, both phases share the arrays).
    #[inline]
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.rowptr[i] + self.offset[i];
        let end = self.rowptr[i + 1] + self.offset[i + 1];
        start..end
    }

    /// True when row `i` was split out as a long row.
    #[inline]
    pub fn is_long(&self, i: usize) -> bool {
        self.rowptr[i + 1] == self.rowptr[i] && self.offset[i + 1] > self.offset[i]
    }

    /// Column indices backing store.
    #[inline]
    pub fn colind(&self) -> &[u32] {
        &self.colind
    }

    /// Values backing store.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Footprint in bytes, including the two auxiliary arrays.
    pub fn footprint_bytes(&self) -> usize {
        self.values.len() * 8
            + self.colind.len() * 4
            + self.rowptr.len() * 8
            + self.offset.len() * 8
            + self.lrowind.len() * 4
    }

    /// Reassembles the original CSR matrix (tests / round-trip invariant).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        for i in 0..self.nrows {
            let len = self.row_range(i).len();
            rowptr.push(rowptr[i] + len);
        }
        CsrMatrix::from_raw(
            self.nrows,
            self.ncols,
            rowptr,
            self.colind.clone(),
            self.values.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// The exact matrix of the paper's Fig. 5.
    fn fig5() -> CsrMatrix {
        let mut coo = CooMatrix::new(6, 6);
        for (r, c, v) in [
            (0, 0, 7.5),
            (1, 0, 6.8),
            (1, 1, 5.7),
            (1, 2, 3.8),
            (1, 3, 1.0),
            (1, 4, 1.0),
            (1, 5, 1.0),
            (2, 0, 2.4),
            (2, 1, 6.2),
            (3, 0, 9.7),
            (3, 3, 2.3),
            (4, 4, 5.8),
            (5, 4, 6.6),
        ] {
            coo.push(r, c, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn fig5_arrays_match_paper() {
        // Threshold 5 makes row 1 (6 nonzeros) the single long row.
        let d = DecomposedCsrMatrix::from_csr(&fig5(), 5);
        assert_eq!(d.rowptr, vec![0, 1, 1, 3, 5, 6, 7]);
        assert_eq!(d.offset, vec![0, 0, 6, 6, 6, 6, 6]);
        assert_eq!(d.long_rows(), &[1]);
        assert_eq!(d.long_nnz(), 6);
    }

    #[test]
    fn row_ranges_address_row_major_storage() {
        let d = DecomposedCsrMatrix::from_csr(&fig5(), 5);
        assert_eq!(d.row_range(0), 0..1);
        assert_eq!(d.row_range(1), 1..7); // the long row
        assert_eq!(d.row_range(2), 7..9);
        assert_eq!(d.row_range(3), 9..11);
        assert_eq!(d.row_range(5), 12..13);
        assert!(d.is_long(1));
        assert!(!d.is_long(2));
    }

    #[test]
    fn round_trip_reconstructs_original() {
        let csr = fig5();
        for threshold in [1, 2, 5, 100] {
            let d = DecomposedCsrMatrix::from_csr(&csr, threshold);
            assert_eq!(d.to_csr(), csr, "threshold {threshold}");
        }
    }

    #[test]
    fn no_long_rows_when_threshold_large() {
        let d = DecomposedCsrMatrix::from_csr(&fig5(), 1000);
        assert!(d.long_rows().is_empty());
        assert_eq!(d.long_nnz(), 0);
    }

    #[test]
    fn all_rows_long_when_threshold_tiny() {
        let csr = fig5();
        let d = DecomposedCsrMatrix::from_csr(&csr, 1);
        // Rows with more than one nonzero are long: rows 1, 2, 3.
        assert_eq!(d.long_rows(), &[1, 2, 3]);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn auto_threshold_scales_with_avg() {
        let csr = fig5(); // 13 nnz / 6 rows ≈ 2.17 avg
        let t = DecomposedCsrMatrix::auto_threshold(&csr, 4.0);
        assert_eq!(t, 9); // ceil(8.67) = 9, above the floor of 8
    }
}
