//! Persistent thread-pool execution context with per-thread timing.
//!
//! The paper's IMB bound `P_IMB = 2·NNZ / t_median` needs the execution time
//! of *each* thread for one SpMV (Section III-B). [`ExecCtx`] wraps a pinned
//! rayon pool, broadcasts a closure to every worker, and records each
//! worker's wall time into a cache-padded slot.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution context shared by all parallel kernels.
pub struct ExecCtx {
    pool: rayon::ThreadPool,
    nthreads: usize,
    times_ns: Vec<CachePadded<AtomicU64>>,
}

impl ExecCtx {
    /// Creates a context with `nthreads` workers (>= 1).
    pub fn new(nthreads: usize) -> Arc<Self> {
        assert!(nthreads > 0, "need at least one thread");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nthreads)
            .thread_name(|i| format!("sparseopt-worker-{i}"))
            .build()
            .expect("failed to build thread pool");
        let times_ns = (0..nthreads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        Arc::new(Self {
            pool,
            nthreads,
            times_ns,
        })
    }

    /// A context sized to the host's available parallelism.
    pub fn host() -> Arc<Self> {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Runs `f(tid)` once on every worker thread, blocking until all finish,
    /// and records per-thread wall times retrievable via
    /// [`Self::last_thread_times`].
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.pool.broadcast(|ctx| {
            let tid = ctx.index();
            let start = Instant::now();
            f(tid);
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.times_ns[tid].store(ns, Ordering::Relaxed);
        });
    }

    /// Folds `extra` into the recorded per-thread times — used by
    /// multi-phase kernels (the transpose scatter + merge) so
    /// [`Self::last_thread_times`] covers the whole application rather than
    /// only the final phase.
    pub(crate) fn accumulate_last_times(&self, extra: &[Duration]) {
        for (slot, d) in self.times_ns.iter().zip(extra) {
            slot.fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        }
    }

    /// Per-thread execution times of the most recent [`Self::run`].
    pub fn last_thread_times(&self) -> Vec<Duration> {
        self.times_ns
            .iter()
            .map(|t| Duration::from_nanos(t.load(Ordering::Relaxed)))
            .collect()
    }

    /// Median of the last per-thread times in seconds — the `t_median` of the
    /// paper's `P_IMB` bound.
    pub fn last_median_secs(&self) -> f64 {
        let secs: Vec<f64> = self
            .last_thread_times()
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        crate::util::median(&secs).unwrap_or(0.0)
    }

    /// Maximum of the last per-thread times in seconds (the critical path).
    pub fn last_max_secs(&self) -> f64 {
        self.last_thread_times()
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("nthreads", &self.nthreads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_on_every_thread_exactly_once() {
        let ctx = ExecCtx::new(4);
        let hits = AtomicUsize::new(0);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        ctx.run(|tid| {
            hits.fetch_add(1, Ordering::SeqCst);
            seen[tid].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        for s in &seen {
            assert_eq!(s.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn records_per_thread_times() {
        let ctx = ExecCtx::new(2);
        ctx.run(|tid| {
            if tid == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let times = ctx.last_thread_times();
        assert_eq!(times.len(), 2);
        assert!(times[0] >= Duration::from_millis(5));
        assert!(ctx.last_max_secs() >= ctx.last_median_secs());
    }

    #[test]
    fn borrows_stack_data() {
        let ctx = ExecCtx::new(3);
        let mut out = vec![0usize; 3];
        let p = crate::util::SendMutPtr::new(&mut out);
        ctx.run(|tid| unsafe { p.write(tid, tid + 1) });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn single_thread_context() {
        let ctx = ExecCtx::new(1);
        ctx.run(|tid| assert_eq!(tid, 0));
        assert_eq!(ctx.last_thread_times().len(), 1);
    }
}
