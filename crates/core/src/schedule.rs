//! Loop scheduling policies for the parallel SpMV row loop.
//!
//! The paper's IMB optimization pool includes the OpenMP `auto` schedule
//! (Table II): "the decision regarding scheduling is delegated to the
//! compiler". We reproduce the mechanism space with four policies plus an
//! `Auto` policy that inspects the row-length distribution and picks one —
//! playing the role of the compiler/runtime heuristic.

use crate::csr::CsrMatrix;
use crate::partition::Partition;
use crate::pool::ExecCtx;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scheduling policy, resolved against a concrete matrix at kernel build
/// time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Static contiguous ranges with equal row counts (MKL-like default).
    StaticRows,
    /// Static contiguous ranges with equal nonzero counts (the paper's
    /// baseline distribution).
    StaticNnz,
    /// First-come-first-served chunks of `chunk` rows from a shared counter
    /// (OpenMP `dynamic`).
    Dynamic { chunk: usize },
    /// Exponentially shrinking chunks down to `min_chunk` (OpenMP `guided`).
    Guided { min_chunk: usize },
    /// Inspect the matrix and delegate to one of the above (OpenMP `auto`).
    Auto,
}

impl Schedule {
    /// Short stable identifier used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::StaticRows => "static-rows",
            Schedule::StaticNnz => "static-nnz",
            Schedule::Dynamic { .. } => "dynamic",
            Schedule::Guided { .. } => "guided",
            Schedule::Auto => "auto",
        }
    }

    /// Resolves the policy against a matrix and thread count.
    pub fn resolve(&self, csr: &CsrMatrix, nthreads: usize) -> ResolvedSchedule {
        match self {
            Schedule::StaticRows => {
                ResolvedSchedule::Static(Partition::by_rows(csr.nrows(), nthreads))
            }
            Schedule::StaticNnz => ResolvedSchedule::Static(Partition::by_nnz(csr, nthreads)),
            Schedule::Dynamic { chunk } => ResolvedSchedule::Dynamic {
                chunk: (*chunk).max(1),
            },
            Schedule::Guided { min_chunk } => ResolvedSchedule::Guided {
                min_chunk: (*min_chunk).max(1),
            },
            Schedule::Auto => resolve_auto(csr, nthreads),
        }
    }

    /// Resolves the policy against an explicit row pointer — for formats
    /// that preserve a rowptr without being plain CSR (delta-compressed,
    /// decomposed short rows). `StaticNnz` and `Auto` both fall back to an
    /// nnz-balanced static partition over `rowptr`.
    pub fn resolve_with_rowptr(
        &self,
        nrows: usize,
        rowptr: &[usize],
        nthreads: usize,
    ) -> ResolvedSchedule {
        match self {
            Schedule::StaticRows => ResolvedSchedule::Static(Partition::by_rows(nrows, nthreads)),
            Schedule::Dynamic { chunk } => ResolvedSchedule::Dynamic {
                chunk: (*chunk).max(1),
            },
            Schedule::Guided { min_chunk } => ResolvedSchedule::Guided {
                min_chunk: (*min_chunk).max(1),
            },
            _ => ResolvedSchedule::Static(Partition::by_rowptr(rowptr, nthreads)),
        }
    }
}

/// The `auto` heuristic: highly skewed row lengths ⇒ small dynamic chunks;
/// moderately uneven ⇒ guided; regular ⇒ static nnz-balanced.
fn resolve_auto(csr: &CsrMatrix, nthreads: usize) -> ResolvedSchedule {
    let n = csr.nrows().max(1);
    let avg = csr.nnz() as f64 / n as f64;
    let max = (0..csr.nrows()).map(|i| csr.row_nnz(i)).max().unwrap_or(0) as f64;
    let var: f64 = (0..csr.nrows())
        .map(|i| {
            let d = csr.row_nnz(i) as f64 - avg;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    let sd = var.sqrt();
    if avg > 0.0 && max > 16.0 * avg {
        // A few dominant rows: dynamic chunks sized so each thread claims
        // roughly 16 chunks — fine enough to flow around mega-row regions,
        // coarse enough that claim overhead stays negligible.
        let chunk = (n / (nthreads * 16)).clamp(4, 1024);
        ResolvedSchedule::Dynamic { chunk }
    } else if avg > 0.0 && sd > 2.0 * avg {
        ResolvedSchedule::Guided {
            min_chunk: (n / (nthreads * 16)).clamp(4, 1024),
        }
    } else {
        ResolvedSchedule::Static(Partition::by_nnz(csr, nthreads))
    }
}

/// A schedule bound to a matrix, ready to execute.
#[derive(Clone, Debug)]
pub enum ResolvedSchedule {
    /// Precomputed row ranges, one per thread.
    Static(Partition),
    /// Shared-counter chunk self-scheduling.
    Dynamic { chunk: usize },
    /// Guided self-scheduling.
    Guided { min_chunk: usize },
}

impl ResolvedSchedule {
    /// Label of the resolved policy.
    pub fn label(&self) -> &'static str {
        match self {
            ResolvedSchedule::Static(_) => "static",
            ResolvedSchedule::Dynamic { .. } => "dynamic",
            ResolvedSchedule::Guided { .. } => "guided",
        }
    }

    /// Executes `body(rows)` over all rows `0..nrows` using this schedule on
    /// `ctx`, guaranteeing every row is processed exactly once. `body` runs
    /// concurrently on all workers; callers writing shared output must write
    /// only indices inside the ranges they receive.
    pub fn execute<F>(&self, ctx: &ExecCtx, nrows: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        match self {
            ResolvedSchedule::Static(partition) => {
                let partition = partition.clone();
                ctx.run(|tid| {
                    if tid < partition.len() {
                        let r = partition.range(tid);
                        if !r.is_empty() {
                            body(r);
                        }
                    }
                });
            }
            ResolvedSchedule::Dynamic { chunk } => {
                let next = AtomicUsize::new(0);
                let chunk = *chunk;
                ctx.run(|_tid| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= nrows {
                        break;
                    }
                    body(start..(start + chunk).min(nrows));
                });
            }
            ResolvedSchedule::Guided { min_chunk } => {
                let next = AtomicUsize::new(0);
                let nthreads = ctx.nthreads().max(1);
                let min_chunk = *min_chunk;
                ctx.run(|_tid| loop {
                    // Claim `remaining / (2 * nthreads)` rows, at least
                    // `min_chunk`, via CAS so the chunk size tracks the
                    // shrinking remainder.
                    let mut cur = next.load(Ordering::Relaxed);
                    let (start, end) = loop {
                        if cur >= nrows {
                            return;
                        }
                        let remaining = nrows - cur;
                        let take = (remaining / (2 * nthreads)).max(min_chunk).min(remaining);
                        match next.compare_exchange_weak(
                            cur,
                            cur + take,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break (cur, cur + take),
                            Err(actual) => cur = actual,
                        }
                    };
                    body(start..end);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn ragged(lens: &[usize]) -> CsrMatrix {
        let n = lens.len();
        let w = *lens.iter().max().unwrap_or(&1);
        let mut coo = CooMatrix::new(n, w.max(n));
        for (i, &l) in lens.iter().enumerate() {
            for j in 0..l {
                coo.push(i, j, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn check_covers_all(sched: &ResolvedSchedule, nrows: usize, nthreads: usize) {
        let ctx = ExecCtx::new(nthreads);
        let counts: Vec<AtomicUsize> = (0..nrows).map(|_| AtomicUsize::new(0)).collect();
        sched.execute(&ctx, nrows, |rows| {
            for i in rows {
                counts[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "row {i} processed wrong number of times"
            );
        }
    }

    #[test]
    fn static_covers_all_rows() {
        let m = ragged(&[3; 17]);
        check_covers_all(&Schedule::StaticNnz.resolve(&m, 4), 17, 4);
        check_covers_all(&Schedule::StaticRows.resolve(&m, 4), 17, 4);
    }

    #[test]
    fn dynamic_covers_all_rows() {
        check_covers_all(&ResolvedSchedule::Dynamic { chunk: 3 }, 20, 4);
        check_covers_all(&ResolvedSchedule::Dynamic { chunk: 100 }, 20, 4);
    }

    #[test]
    fn guided_covers_all_rows() {
        check_covers_all(&ResolvedSchedule::Guided { min_chunk: 2 }, 101, 4);
        check_covers_all(&ResolvedSchedule::Guided { min_chunk: 1 }, 7, 8);
    }

    #[test]
    fn auto_picks_dynamic_for_dominant_rows() {
        let mut lens = vec![2usize; 4096];
        lens[0] = 100_000;
        let m = ragged(&lens);
        let r = Schedule::Auto.resolve(&m, 8);
        assert_eq!(r.label(), "dynamic");
    }

    #[test]
    fn auto_picks_static_for_uniform() {
        let m = ragged(&[8; 1024]);
        let r = Schedule::Auto.resolve(&m, 8);
        assert_eq!(r.label(), "static");
    }

    #[test]
    fn zero_row_matrix_executes_nothing() {
        let ctx = ExecCtx::new(2);
        let hits = AtomicUsize::new(0);
        ResolvedSchedule::Dynamic { chunk: 4 }.execute(&ctx, 0, |_r| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }
}
