//! Coordinate-format (COO) sparse matrix used as the construction interchange
//! format.
//!
//! All generators and I/O routines produce a [`CooMatrix`]; compute formats
//! (CSR and its derivatives) are built from it. Triplets may be pushed in any
//! order; duplicates are summed on conversion, matching the usual Matrix
//! Market semantics.

use std::fmt;

/// A sparse matrix stored as unordered `(row, col, value)` triplets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` matrix.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX`, the maximum the
    /// compressed formats can index.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "matrix dimensions must fit in u32 indices"
        );
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates a matrix with capacity reserved for `nnz` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.rows.reserve(nnz);
        m.cols.reserve(nnz);
        m.vals.reserve(nnz);
        m
    }

    /// Builds a matrix directly from triplet arrays.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths or any index is out of
    /// bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(
            rows.len(),
            cols.len(),
            "triplet arrays must have equal length"
        );
        assert_eq!(
            rows.len(),
            vals.len(),
            "triplet arrays must have equal length"
        );
        for (&r, &c) in rows.iter().zip(&cols) {
            assert!(
                (r as usize) < nrows,
                "row index {r} out of bounds ({nrows} rows)"
            );
            assert!(
                (c as usize) < ncols,
                "col index {c} out of bounds ({ncols} cols)"
            );
        }
        Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// Appends one entry. Duplicates are allowed and summed on conversion.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row},{col}) out of bounds"
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (including duplicates, if any).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Iterates over stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Raw triplet views `(rows, cols, vals)`.
    pub fn triplets(&self) -> (&[u32], &[u32], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Transposes the matrix (swaps row/column indices).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Returns the symmetric expansion `A + Aᵀ` restricted to structure: every
    /// off-diagonal entry `(i, j)` gains a mirrored `(j, i)` with the same
    /// value. Useful for turning generator output into structurally symmetric
    /// matrices (e.g. for CG test problems).
    pub fn symmetrize(&self) -> CooMatrix {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetrize requires a square matrix"
        );
        let mut out = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz() * 2);
        for (r, c, v) in self.iter() {
            out.push(r, c, v);
            if r != c {
                out.push(c, r, v);
            }
        }
        out
    }

    /// Merges another matrix of identical shape into this one (entry union,
    /// duplicates summed on conversion).
    pub fn extend_from(&mut self, other: &CooMatrix) {
        assert_eq!(self.nrows, other.nrows, "shape mismatch");
        assert_eq!(self.ncols, other.ncols, "shape mismatch");
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
    }

    /// Sorts triplets by `(row, col)` and sums duplicates in place.
    pub fn sort_and_dedup(&mut self) {
        let n = self.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&k| (self.rows[k], self.cols[k]));

        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for k in order {
            let (r, c, v) = (self.rows[k], self.cols[k], self.vals[k]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("vals tracks rows/cols") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Dense `y = A·x` reference product, used as the ground truth in tests.
    pub fn spmv_dense_reference(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        y.fill(0.0);
        for (r, c, v) in self.iter() {
            y[r] += v * x[c];
        }
    }
}

impl fmt::Display for CooMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CooMatrix {}x{}, {} triplets",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 2.0);
        m.push(2, 3, -1.5);
        assert_eq!(m.nnz(), 2);
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 1, 2.0), (2, 3, -1.5)]);
    }

    #[test]
    fn sort_and_dedup_sums_duplicates() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 1, 3.0);
        m.sort_and_dedup();
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, 2.0), (1, 1, 4.0)]);
    }

    #[test]
    fn transpose_swaps_shape() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 2, 5.0);
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.iter().next(), Some((2, 0, 5.0)));
    }

    #[test]
    fn symmetrize_mirrors_offdiagonal() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, 2.0);
        m.push(2, 2, 1.0);
        let s = m.symmetrize();
        assert_eq!(s.nnz(), 3);
        let mut t: Vec<_> = s.iter().collect();
        t.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(t, vec![(0, 1, 2.0), (1, 0, 2.0), (2, 2, 1.0)]);
    }

    #[test]
    fn dense_reference_product() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 1, 2.0);
        m.push(1, 1, 3.0);
        let x = [1.0, 10.0];
        let mut y = [0.0; 2];
        m.spmv_dense_reference(&x, &mut y);
        assert_eq!(y, [21.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_triplets_validates_indices() {
        CooMatrix::from_triplets(2, 2, vec![2], vec![0], vec![1.0]);
    }

    #[test]
    fn extend_from_unions_entries() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.0);
        let mut b = CooMatrix::new(2, 2);
        b.push(1, 1, 2.0);
        a.extend_from(&b);
        assert_eq!(a.nnz(), 2);
    }
}
