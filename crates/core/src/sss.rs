//! Symmetric sparse skyline storage (SSS) — the MB-class traffic halver the
//! delta compression of [`crate::delta`] leaves on the table.
//!
//! A symmetric matrix `A = Aᵀ` is fully determined by its strictly lower
//! triangle `L` and diagonal `D`: `A = L + D + Lᵀ`. [`SssCsr`] stores only
//! those — `L` in CSR layout plus a dense diagonal array — so the streamed
//! matrix bytes of one application drop to roughly half of the full CSR
//! footprint (each stored off-diagonal element is *used twice* per sweep:
//! once on the gather side `L·x` and once on the scatter side `Lᵀ·x`).
//! The operator that cashes the halving in is
//! [`crate::kernels::SymCsr`].
//!
//! Symmetry is verified **exactly** at construction: a single mismatched
//! pair (structure or value) makes [`SssCsr::try_from_csr`] return `None`
//! rather than silently computing with the wrong matrix. The same check is
//! exposed as [`symmetry_share`] for feature extraction, so the classifier
//! can see how close to symmetric a matrix is without committing to the
//! conversion.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Fraction of off-diagonal nonzeros whose exact symmetric partner exists
/// (same coordinate transposed, bitwise-equal value). `1.0` for a symmetric
/// matrix, `0.0` for a non-square one; a matrix with no off-diagonal
/// entries (diagonal or empty) counts as fully symmetric.
///
/// Cost: `O(NNZ · log max_row_nnz)` — one binary search per off-diagonal
/// element into the partner row's sorted column indices.
pub fn symmetry_share(csr: &CsrMatrix) -> f64 {
    if csr.nrows() != csr.ncols() {
        return 0.0;
    }
    let mut offdiag = 0usize;
    let mut matched = 0usize;
    for i in 0..csr.nrows() {
        for (&c, &v) in csr.row_cols(i).iter().zip(csr.row_vals(i)) {
            let c = c as usize;
            if c == i {
                continue;
            }
            offdiag += 1;
            let (pcols, pvals) = (csr.row_cols(c), csr.row_vals(c));
            if let Ok(k) = pcols.binary_search(&(i as u32)) {
                if pvals[k] == v {
                    matched += 1;
                }
            }
        }
    }
    if offdiag == 0 {
        1.0
    } else {
        matched as f64 / offdiag as f64
    }
}

/// True when the matrix is square and exactly equal to its transpose.
/// Unlike [`symmetry_share`] this returns on the **first** mismatched pair,
/// so rejecting an asymmetric matrix (the common case for blind plan
/// fallbacks and per-matrix probes) does not pay the full scan.
pub fn is_symmetric(csr: &CsrMatrix) -> bool {
    if csr.nrows() != csr.ncols() {
        return false;
    }
    for i in 0..csr.nrows() {
        for (&c, &v) in csr.row_cols(i).iter().zip(csr.row_vals(i)) {
            let c = c as usize;
            if c == i {
                continue;
            }
            match csr.row_cols(c).binary_search(&(i as u32)) {
                Ok(k) if csr.row_vals(c)[k] == v => {}
                _ => return false,
            }
        }
    }
    true
}

/// Canonical exactly-symmetric projection of arbitrary triplets: duplicates
/// are accumulated per **unordered** pair first (so both orientations sum in
/// the same order), then one bitwise-identical value is emitted for each
/// orientation. The result always passes [`SssCsr::try_from_csr`]'s exact
/// check — the shared construction behind the symmetric generators and the
/// equivalence suites' symmetrized inputs.
pub fn symmetrize_triplets(entries: &[(usize, usize, f64)]) -> Vec<(usize, usize, f64)> {
    let mut acc: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for &(r, c, v) in entries {
        *acc.entry((r.min(c), r.max(c))).or_insert(0.0) += v;
    }
    let mut out = Vec::with_capacity(2 * acc.len());
    for (&(a, b), &v) in &acc {
        out.push((a, b, v));
        if a != b {
            out.push((b, a, v));
        }
    }
    out
}

/// Symmetric sparse skyline storage: the strictly lower triangle in CSR
/// layout plus a dense diagonal.
///
/// ```
/// use sparseopt_core::coo::CooMatrix;
/// use sparseopt_core::csr::CsrMatrix;
/// use sparseopt_core::sss::SssCsr;
///
/// // A = [2 1; 1 3]: 4 stored entries in CSR, 1 + dense diagonal in SSS.
/// let mut coo = CooMatrix::new(2, 2);
/// for (r, c, v) in [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)] {
///     coo.push(r, c, v);
/// }
/// let csr = CsrMatrix::from_coo(&coo);
/// let sss = SssCsr::try_from_csr(&csr).expect("A is symmetric");
/// assert_eq!(sss.stored_nnz(), 1);          // strictly lower triangle
/// assert_eq!(sss.logical_nnz(), 4);         // the matrix it represents
/// assert_eq!(sss.to_csr(), csr);            // lossless round trip
/// assert!(sss.footprint_bytes() < csr.footprint_bytes());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SssCsr {
    n: usize,
    /// Row pointer of the strictly lower triangle (`n + 1` entries).
    rowptr: Vec<usize>,
    /// Column indices of the strictly lower triangle (`stored_nnz` entries,
    /// each `< row`).
    colind: Vec<u32>,
    /// Values of the strictly lower triangle.
    values: Vec<f64>,
    /// Dense diagonal (zeros where the matrix has no diagonal entry).
    diag: Vec<f64>,
    /// Nonzero count of the represented (expanded) matrix.
    logical_nnz: usize,
}

impl SssCsr {
    /// Converts a CSR matrix into symmetric storage, returning `None` when
    /// the matrix is not square or not *exactly* symmetric (a mismatched
    /// pair or unequal mirrored value). Cost: one [`symmetry_share`]
    /// verification plus an `O(NNZ)` triangle-split pass.
    pub fn try_from_csr(csr: &CsrMatrix) -> Option<Self> {
        if !is_symmetric(csr) {
            return None;
        }
        let n = csr.nrows();
        let mut rowptr = vec![0usize; n + 1];
        for i in 0..n {
            rowptr[i + 1] = rowptr[i]
                + csr
                    .row_cols(i)
                    .iter()
                    .filter(|&&c| (c as usize) < i)
                    .count();
        }
        let lower_nnz = rowptr[n];
        let mut colind = Vec::with_capacity(lower_nnz);
        let mut values = Vec::with_capacity(lower_nnz);
        let mut diag = vec![0.0f64; n];
        for (i, d) in diag.iter_mut().enumerate() {
            for (&c, &v) in csr.row_cols(i).iter().zip(csr.row_vals(i)) {
                let c = c as usize;
                if c < i {
                    colind.push(c as u32);
                    values.push(v);
                } else if c == i {
                    *d = v;
                }
            }
        }
        Some(Self {
            n,
            rowptr,
            colind,
            values,
            diag,
            logical_nnz: csr.nnz(),
        })
    }

    /// Expands back to full CSR. This is the exact inverse of
    /// [`Self::try_from_csr`] for matrices without explicitly stored `0.0`
    /// diagonal entries: the dense-diagonal split cannot distinguish a
    /// stored zero from an absent entry, so such entries (which no real
    /// symmetric source stores) do not reappear and the expansion then has
    /// fewer stored nonzeros than [`Self::logical_nnz`]. Off-diagonal
    /// structure and all values round-trip losslessly.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.logical_nnz);
        for i in 0..self.n {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                coo.push(i, c as usize, v);
                coo.push(c as usize, i, v);
            }
        }
        for (i, &d) in self.diag.iter().enumerate() {
            if d != 0.0 {
                coo.push(i, i, d);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Matrix dimension (square by construction).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rows (alias of [`Self::n`], mirroring [`CsrMatrix`]).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.n
    }

    /// Number of columns (alias of [`Self::n`]).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Stored strictly-lower-triangle nonzeros.
    #[inline]
    pub fn stored_nnz(&self) -> usize {
        self.colind.len()
    }

    /// Nonzeros of the represented full matrix (the `NNZ` every Gflop/s
    /// figure is normalized by — each stored off-diagonal element performs
    /// two fused multiply-adds per sweep).
    #[inline]
    pub fn logical_nnz(&self) -> usize {
        self.logical_nnz
    }

    /// Row pointer of the strictly lower triangle.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Lower-triangle column indices of row `i` (all `< i`).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Lower-triangle values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// The dense diagonal.
    #[inline]
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// In-memory footprint: lower-triangle values + indices + row pointer +
    /// dense diagonal. For a symmetric matrix with mostly nonzero diagonal
    /// this is roughly half the full-CSR footprint — the `M_A_format,min`
    /// the symmetric MB bound streams.
    pub fn footprint_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.colind.len() * std::mem::size_of::<u32>()
            + self.rowptr.len() * std::mem::size_of::<usize>()
            + self.diag.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_sample() -> CsrMatrix {
        // [ 4 1 0 2 ]
        // [ 1 5 3 0 ]
        // [ 0 3 6 0 ]
        // [ 2 0 0 7 ]
        let mut coo = CooMatrix::new(4, 4);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (0, 3, 2.0),
            (3, 0, 2.0),
            (1, 1, 5.0),
            (1, 2, 3.0),
            (2, 1, 3.0),
            (2, 2, 6.0),
            (3, 3, 7.0),
        ] {
            coo.push(r, c, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn symmetric_matrix_round_trips() {
        let csr = sym_sample();
        assert!(is_symmetric(&csr));
        assert_eq!(symmetry_share(&csr), 1.0);
        let sss = SssCsr::try_from_csr(&csr).expect("symmetric");
        assert_eq!(sss.stored_nnz(), 3);
        assert_eq!(sss.logical_nnz(), 10);
        assert_eq!(sss.diag(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(sss.to_csr(), csr);
        // Storage halving: 10·12 + 5·8 = 160 for CSR vs 3·12 + 5·8 + 4·8 = 108.
        assert!(sss.footprint_bytes() < csr.footprint_bytes());
    }

    #[test]
    fn asymmetric_value_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0 + 1e-15); // structurally symmetric, value not
        let csr = CsrMatrix::from_coo(&coo);
        assert!(symmetry_share(&csr) < 1.0);
        assert!(SssCsr::try_from_csr(&csr).is_none());
    }

    #[test]
    fn structural_asymmetry_is_rejected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 1.0); // no (2, 0) partner
        coo.push(1, 1, 2.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(symmetry_share(&csr), 0.0);
        assert!(SssCsr::try_from_csr(&csr).is_none());
    }

    #[test]
    fn rectangular_is_rejected() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(symmetry_share(&csr), 0.0);
        assert!(SssCsr::try_from_csr(&csr).is_none());
    }

    #[test]
    fn diagonal_and_empty_matrices_are_symmetric() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, (i + 1) as f64);
        }
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(symmetry_share(&csr), 1.0);
        let sss = SssCsr::try_from_csr(&csr).expect("diagonal is symmetric");
        assert_eq!(sss.stored_nnz(), 0);
        assert_eq!(sss.to_csr(), csr);

        let empty = CsrMatrix::from_coo(&CooMatrix::new(4, 4));
        let sss = SssCsr::try_from_csr(&empty).expect("empty is symmetric");
        assert_eq!(sss.logical_nnz(), 0);
        assert_eq!(sss.to_csr().nnz(), 0);
    }

    #[test]
    fn symmetrize_triplets_is_exactly_symmetric_under_duplicates() {
        // Duplicates at mirrored coordinates sum in one canonical order, so
        // the exact-equality check accepts the result.
        let entries = [(1usize, 2usize, 0.1), (2, 1, 0.2), (1, 2, 0.3), (0, 0, 5.0)];
        let sym = symmetrize_triplets(&entries);
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in sym {
            coo.push(r, c, v);
        }
        let csr = CsrMatrix::from_coo(&coo);
        assert!(is_symmetric(&csr));
        assert!(SssCsr::try_from_csr(&csr).is_some());
        let total: f64 = csr.values().iter().sum();
        assert!((total - (5.0 + 2.0 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn partial_share_counts_matched_fraction() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0); // matched pair
        coo.push(0, 2, 5.0); // unmatched
        let csr = CsrMatrix::from_coo(&coo);
        let share = symmetry_share(&csr);
        assert!((share - 2.0 / 3.0).abs() < 1e-12, "share {share}");
    }
}
