//! Serial and parallel CSR operators.
//!
//! [`SerialCsr`] is the textbook kernel of the paper's Fig. 2. [`ParallelCsr`]
//! is the configurable workhorse: a scheduling policy (Section III-E, IMB)
//! combined with an inner-loop flavor (vectorization/unrolling, CMP) and
//! optional software prefetching (ML). Both implement the full
//! [`SparseLinOp`] application space: the multi-vector path reuses the
//! register-blocked row pass and the transposed path the shared
//! scratch-and-merge machinery.

use super::rowprim::{row_dot, row_spmm_write, InnerLoop};
use super::transpose::{scatter_row, serial_transpose, TransposePlan};
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::csr::CsrMatrix;
use crate::multivec::MultiVec;
use crate::pool::ExecCtx;
use crate::schedule::{ResolvedSchedule, Schedule};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`ParallelCsr`] kernel: the cross product of the
/// paper's CSR-based optimizations that do not change the storage format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrKernelConfig {
    /// Inner-loop flavor (scalar / unrolled / SIMD).
    pub inner: InnerLoop,
    /// Software prefetching of `x` (ML optimization).
    pub prefetch: bool,
    /// Row-loop scheduling policy (IMB optimization space).
    pub schedule: Schedule,
}

impl Default for CsrKernelConfig {
    /// The paper's baseline: scalar loop, no prefetch, static nnz-balanced
    /// one-dimensional row partitioning.
    fn default() -> Self {
        Self {
            inner: InnerLoop::Scalar,
            prefetch: false,
            schedule: Schedule::StaticNnz,
        }
    }
}

impl CsrKernelConfig {
    /// Baseline configuration (alias of `Default`).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Stable descriptive suffix, e.g. `[simd+prefetch+auto]`.
    pub fn suffix(&self) -> String {
        let mut parts = vec![self.inner.label().to_string()];
        if self.prefetch {
            parts.push("prefetch".into());
        }
        parts.push(self.schedule.label().into());
        format!("[{}]", parts.join("+"))
    }
}

/// The sequential CSR operator (the paper's Fig. 2 kernel plus its
/// transposed and multi-vector applications) — the reference every parallel
/// path is tested against.
pub struct SerialCsr {
    matrix: Arc<CsrMatrix>,
}

impl SerialCsr {
    /// Wraps a CSR matrix.
    pub fn new(matrix: Arc<CsrMatrix>) -> Self {
        Self { matrix }
    }
}

impl SparseLinOp for SerialCsr {
    fn name(&self) -> String {
        "csr-serial".into()
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        let m = &self.matrix;
        check_apply_operands(self.shape(), op, x, y);
        match op {
            Apply::NoTrans => {
                for (i, yi) in y.iter_mut().enumerate() {
                    // The paper's inner loop: y[i] += val[j] * x[colind[j]].
                    *yi = row_dot(InnerLoop::Scalar, false, m.row_cols(i), m.row_vals(i), x);
                }
            }
            Apply::Trans => serial_transpose(
                (0..m.nrows()).map(|i| (m.row_cols(i), m.row_vals(i), &x[i..i + 1])),
                1,
                y,
            ),
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_apply_multi_operands(self.shape(), op, x, y);
        let k = x.width();
        let xs = x.as_slice();
        match op {
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y.as_mut_slice());
                for i in 0..m.nrows() {
                    // SAFETY: single-threaded, rows visited once.
                    unsafe { row_spmm_write(i, m.row_cols(i), m.row_vals(i), xs, k, &yp) };
                }
            }
            Apply::Trans => serial_transpose(
                (0..m.nrows()).map(|i| (m.row_cols(i), m.row_vals(i), &xs[i * k..(i + 1) * k])),
                k,
                y.as_mut_slice(),
            ),
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Parallel CSR operator with configurable schedule, inner loop, and
/// prefetching; transposed application runs the shared scratch-and-merge
/// plan over the same nnz-balanced row distribution.
pub struct ParallelCsr {
    matrix: Arc<CsrMatrix>,
    ctx: Arc<ExecCtx>,
    config: CsrKernelConfig,
    resolved: ResolvedSchedule,
    inner: InnerLoop,
    tplan: TransposePlan,
}

impl ParallelCsr {
    /// Builds the operator, resolving the schedule against the matrix and
    /// the SIMD flavor against the host.
    pub fn new(matrix: Arc<CsrMatrix>, config: CsrKernelConfig, ctx: Arc<ExecCtx>) -> Self {
        let resolved = config.schedule.resolve(&matrix, ctx.nthreads());
        let inner = config.inner.resolve_for_host();
        let tplan = TransposePlan::by_rowptr(matrix.rowptr(), matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            config,
            resolved,
            inner,
            tplan,
        }
    }

    /// Baseline parallel operator (paper Section IV-A).
    pub fn baseline(matrix: Arc<CsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, CsrKernelConfig::baseline(), ctx)
    }

    /// Baseline inner loop with an explicit schedule.
    pub fn with_schedule(matrix: Arc<CsrMatrix>, schedule: Schedule, ctx: Arc<ExecCtx>) -> Self {
        Self::new(
            matrix,
            CsrKernelConfig {
                schedule,
                ..CsrKernelConfig::baseline()
            },
            ctx,
        )
    }

    /// The operator's configuration.
    pub fn config(&self) -> &CsrKernelConfig {
        &self.config
    }

    /// The execution context this operator runs on.
    pub fn ctx(&self) -> &Arc<ExecCtx> {
        &self.ctx
    }

    /// Shared flat-storage application: `k = 1` is the vector path.
    fn apply_flat(&self, op: Apply, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        match op {
            Apply::NoTrans if k == 1 => {
                let yp = SendMutPtr::new(y);
                let inner = self.inner;
                let prefetch = self.config.prefetch;
                self.resolved.execute(&self.ctx, m.nrows(), |rows| {
                    for i in rows {
                        let v = row_dot(inner, prefetch, m.row_cols(i), m.row_vals(i), xs);
                        // SAFETY: the schedule dispenses each row exactly
                        // once, so writes to y[i] are disjoint across threads.
                        unsafe { yp.write(i, v) };
                    }
                });
            }
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y);
                self.resolved.execute(&self.ctx, m.nrows(), |rows| {
                    for i in rows {
                        // SAFETY: row-disjoint writes per the schedule.
                        unsafe { row_spmm_write(i, m.row_cols(i), m.row_vals(i), xs, k, &yp) };
                    }
                });
            }
            Apply::Trans => {
                self.tplan.execute(&self.ctx, k, y, |rows, scratch| {
                    for i in rows {
                        scatter_row(
                            m.row_cols(i),
                            m.row_vals(i),
                            &xs[i * k..(i + 1) * k],
                            k,
                            scratch,
                        );
                    }
                });
            }
        }
    }
}

impl SparseLinOp for ParallelCsr {
    fn name(&self) -> String {
        format!("csr-parallel{}", self.config.suffix())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        self.apply_flat(op, x, 1, y);
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        self.apply_flat(op, x.as_slice(), x.width(), y.as_mut_slice());
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn random_matrix(n: usize, per_row: usize) -> (Arc<CsrMatrix>, Vec<f64>) {
        let mut coo = CooMatrix::new(n, n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..per_row {
                let c = (next() % n as u64) as usize;
                coo.push(i, c, (next() % 1000) as f64 / 100.0 - 5.0);
            }
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        (Arc::new(CsrMatrix::from_coo(&coo)), x)
    }

    #[test]
    fn serial_matches_dense_reference() {
        let (m, x) = random_matrix(50, 4);
        let mut y = vec![0.0; 50];
        SerialCsr::new(m.clone()).spmv(&x, &mut y);
        let mut expect = vec![0.0; 50];
        m.to_coo().spmv_dense_reference(&x, &mut expect);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_matches_serial_across_configs() {
        let (m, x) = random_matrix(200, 6);
        let mut reference = vec![0.0; 200];
        SerialCsr::new(m.clone()).spmv(&x, &mut reference);

        let ctx = ExecCtx::new(4);
        for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
            for prefetch in [false, true] {
                for schedule in [
                    Schedule::StaticRows,
                    Schedule::StaticNnz,
                    Schedule::Dynamic { chunk: 7 },
                    Schedule::Guided { min_chunk: 2 },
                    Schedule::Auto,
                ] {
                    let cfg = CsrKernelConfig {
                        inner,
                        prefetch,
                        schedule: schedule.clone(),
                    };
                    let k = ParallelCsr::new(m.clone(), cfg, ctx.clone());
                    let mut y = vec![f64::NAN; 200];
                    k.spmv(&x, &mut y);
                    for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-10,
                            "row {i} mismatch for {}: {a} vs {b}",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_transpose_matches_serial_transpose() {
        let (m, _) = random_matrix(150, 5);
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut want = vec![0.0; 150];
        SerialCsr::new(m.clone()).apply(Apply::Trans, &x, &mut want);

        for nthreads in [1, 2, 4] {
            let k = ParallelCsr::baseline(m.clone(), ExecCtx::new(nthreads));
            let mut y = vec![f64::NAN; 150];
            k.apply(Apply::Trans, &x, &mut y);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10 * (1.0 + b.abs()),
                    "row {i} with {nthreads} threads: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn thread_times_reported() {
        let (m, x) = random_matrix(100, 4);
        let ctx = ExecCtx::new(3);
        let k = ParallelCsr::baseline(m, ctx);
        let mut y = vec![0.0; 100];
        k.spmv(&x, &mut y);
        assert_eq!(k.last_thread_times().len(), 3);
    }

    #[test]
    fn name_encodes_config() {
        let (m, _) = random_matrix(10, 2);
        let ctx = ExecCtx::new(1);
        let cfg = CsrKernelConfig {
            inner: InnerLoop::Unrolled4,
            prefetch: true,
            schedule: Schedule::Dynamic { chunk: 8 },
        };
        let k = ParallelCsr::new(m, cfg, ctx);
        assert_eq!(k.name(), "csr-parallel[unrolled+prefetch+dynamic]");
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn shape_mismatch_panics() {
        let (m, _) = random_matrix(10, 2);
        let k = SerialCsr::new(m);
        let x = vec![0.0; 3];
        let mut y = vec![0.0; 10];
        k.spmv(&x, &mut y);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn transpose_shape_mismatch_panics() {
        // Trans swaps operand roles: x must have nrows entries.
        let mut coo = CooMatrix::new(4, 7);
        coo.push(0, 6, 1.0);
        let m = Arc::new(CsrMatrix::from_coo(&coo));
        let k = SerialCsr::new(m);
        let x = vec![0.0; 7];
        let mut y = vec![0.0; 4];
        k.apply(Apply::Trans, &x, &mut y);
    }
}
