//! Operators over the dense-slab formats: BCSR (register blocking) and
//! ELLPACK.
//!
//! Both run the same structure as the CSR family — the row (or block-row)
//! loop is partitioned across the thread pool, each unit runs a
//! register-blocked pass over a column tile of `X` — and share the
//! scratch-and-merge machinery for transposed application. The `k = 1`
//! vector paths are the exact single-column slice of the multi-vector
//! paths, so one flat implementation serves the whole [`SparseLinOp`]
//! surface.

use super::rowprim::SPMM_COL_TILE;
use super::transpose::TransposePlan;
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::bcsr::BcsrMatrix;
use crate::ell::{EllMatrix, PAD};
use crate::multivec::MultiVec;
use crate::partition::Partition;
use crate::pool::ExecCtx;
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Pool-parallel operator over BCSR: each stored `r × c` block multiplies
/// `c` rows of `X` into `r` rows of a block-row-local accumulator, so the
/// dense payload streams once per column tile with fixed trip counts.
pub struct BcsrKernel {
    matrix: Arc<BcsrMatrix>,
    ctx: Arc<ExecCtx>,
    /// Block rows per thread, balanced by stored-block count.
    partition: Partition,
    /// Transpose plan over the same block-row units.
    tplan: TransposePlan,
}

impl BcsrKernel {
    /// Builds the operator with a block-count-balanced static partition of
    /// the block rows.
    pub fn new(matrix: Arc<BcsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        let partition = Partition::by_rowptr(matrix.browptr(), ctx.nthreads());
        let tplan = TransposePlan::by_rowptr(matrix.browptr(), matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            partition,
            tplan,
        }
    }

    /// Shared flat-storage application (`k = 1` is the vector path).
    fn apply_flat(&self, op: Apply, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let (r, c) = m.block_shape();
        let nrows = m.nrows();
        let ncols = m.ncols();
        match op {
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y);
                let partition = self.partition.clone();
                self.ctx.run(|tid| {
                    if tid >= partition.len() {
                        return;
                    }
                    // Block-row-local accumulator: r rows × k columns, reused.
                    let mut acc = vec![0.0f64; r * k];
                    for br in partition.range(tid) {
                        let row_lo = br * r;
                        let rows_here = (nrows - row_lo).min(r);
                        acc[..rows_here * k].fill(0.0);
                        for bk in m.browptr()[br]..m.browptr()[br + 1] {
                            let col_lo = m.bcolind()[bk] as usize * c;
                            let cols_here = (ncols - col_lo).min(c);
                            let payload = &m.blocks()[bk * r * c..(bk + 1) * r * c];
                            for di in 0..rows_here {
                                let arow = &mut acc[di * k..(di + 1) * k];
                                for dj in 0..cols_here {
                                    // Explicit fill zeros multiply through —
                                    // a branch here would also cost more than
                                    // the madd it skips.
                                    let a = payload[di * c + dj];
                                    let xr = &xs[(col_lo + dj) * k..(col_lo + dj + 1) * k];
                                    for (av, &xv) in arow.iter_mut().zip(xr) {
                                        *av += a * xv;
                                    }
                                }
                            }
                        }
                        for di in 0..rows_here {
                            for t in 0..k {
                                // SAFETY: block rows are dispensed to exactly
                                // one thread, so these output rows are
                                // thread-exclusive.
                                unsafe { yp.write((row_lo + di) * k + t, acc[di * k + t]) };
                            }
                        }
                    }
                });
            }
            Apply::Trans => {
                self.tplan.execute(&self.ctx, k, y, |brows, scratch| {
                    for br in brows {
                        let row_lo = br * r;
                        let rows_here = (nrows - row_lo).min(r);
                        for bk in m.browptr()[br]..m.browptr()[br + 1] {
                            let col_lo = m.bcolind()[bk] as usize * c;
                            let cols_here = (ncols - col_lo).min(c);
                            let payload = &m.blocks()[bk * r * c..(bk + 1) * r * c];
                            // The block scatters transposed: column dj of the
                            // payload accumulates row di of X.
                            for di in 0..rows_here {
                                let xr = &xs[(row_lo + di) * k..(row_lo + di + 1) * k];
                                for dj in 0..cols_here {
                                    let a = payload[di * c + dj];
                                    let dst =
                                        &mut scratch[(col_lo + dj) * k..(col_lo + dj + 1) * k];
                                    for (d, &xv) in dst.iter_mut().zip(xr) {
                                        *d += a * xv;
                                    }
                                }
                            }
                        }
                    }
                });
            }
        }
    }
}

impl SparseLinOp for BcsrKernel {
    fn name(&self) -> String {
        let (r, c) = self.matrix.block_shape();
        format!("bcsr-{r}x{c}[static-blocks]")
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        self.apply_flat(op, x, 1, y);
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        self.apply_flat(op, x.as_slice(), x.width(), y.as_mut_slice());
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Pool-parallel operator over ELLPACK: the row loop is partitioned by rows
/// and each row walks its fixed-width slot list once per column tile.
pub struct EllKernel {
    matrix: Arc<EllMatrix>,
    ctx: Arc<ExecCtx>,
    partition: Partition,
    tplan: TransposePlan,
}

impl EllKernel {
    /// Builds the operator with an equal-row-count partition (ELL's fixed
    /// width makes rows near-uniform by construction).
    pub fn new(matrix: Arc<EllMatrix>, ctx: Arc<ExecCtx>) -> Self {
        let partition = Partition::by_rows(matrix.nrows(), ctx.nthreads());
        let tplan = TransposePlan::by_rows(matrix.nrows(), matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            partition,
            tplan,
        }
    }

    /// Shared flat-storage application (`k = 1` is the vector path).
    fn apply_flat(&self, op: Apply, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let width = m.width();
        match op {
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y);
                let partition = self.partition.clone();
                self.ctx.run(|tid| {
                    if tid >= partition.len() {
                        return;
                    }
                    for i in partition.range(tid) {
                        let mut t0 = 0;
                        while t0 < k {
                            let tl = (k - t0).min(SPMM_COL_TILE);
                            let mut acc = [0.0f64; SPMM_COL_TILE];
                            for s in 0..width {
                                let c = m.slot_cols(s)[i];
                                if c == PAD {
                                    continue;
                                }
                                let v = m.slot_vals(s)[i];
                                let base = c as usize * k + t0;
                                let xr = &xs[base..base + tl];
                                for (a, &xv) in acc[..tl].iter_mut().zip(xr) {
                                    *a += v * xv;
                                }
                            }
                            for (t, &a) in acc[..tl].iter().enumerate() {
                                // SAFETY: the static row partition is disjoint.
                                unsafe { yp.write(i * k + t0 + t, a) };
                            }
                            t0 += tl;
                        }
                    }
                });
            }
            Apply::Trans => {
                self.tplan.execute(&self.ctx, k, y, |rows, scratch| {
                    for i in rows {
                        let xr = &xs[i * k..(i + 1) * k];
                        for s in 0..width {
                            let c = m.slot_cols(s)[i];
                            if c == PAD {
                                continue;
                            }
                            let v = m.slot_vals(s)[i];
                            let dst = &mut scratch[c as usize * k..c as usize * k + k];
                            for (d, &xv) in dst.iter_mut().zip(xr) {
                                *d += v * xv;
                            }
                        }
                    }
                });
            }
        }
    }
}

impl SparseLinOp for EllKernel {
    fn name(&self) -> String {
        format!("ell-w{}[static-rows]", self.matrix.width())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        self.apply_flat(op, x, 1, y);
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        self.apply_flat(op, x.as_slice(), x.width(), y.as_mut_slice());
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::kernels::SerialCsr;

    fn random_matrix(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(nrows, ncols);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..nrows {
            for _ in 0..per_row {
                let c = (next() % ncols as u64) as usize;
                coo.push(i, c, (next() % 1000) as f64 / 100.0 - 5.0);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    fn assert_close(name: &str, got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "{name}: index {i} differs: {a} vs {b}"
            );
        }
    }

    #[test]
    fn both_slab_operators_match_serial_on_rectangular() {
        // 25 × 19 exercises ragged block/slot tails on both axes.
        let csr = random_matrix(25, 19, 5, 0xabc);
        let serial = SerialCsr::new(csr.clone());
        let ctx = ExecCtx::new(3);
        let ops: Vec<Box<dyn SparseLinOp>> = vec![
            Box::new(BcsrKernel::new(
                Arc::new(BcsrMatrix::from_csr(&csr, 2, 3)),
                ctx.clone(),
            )),
            Box::new(BcsrKernel::new(
                Arc::new(BcsrMatrix::from_csr(&csr, 4, 4)),
                ctx.clone(),
            )),
            Box::new(EllKernel::new(
                Arc::new(EllMatrix::from_csr(&csr)),
                ctx.clone(),
            )),
        ];
        let x: Vec<f64> = (0..19).map(|i| (i as f64 * 0.7).cos()).collect();
        let xt: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut want = vec![0.0; 25];
        serial.apply(Apply::NoTrans, &x, &mut want);
        let mut want_t = vec![0.0; 19];
        serial.apply(Apply::Trans, &xt, &mut want_t);

        for op in &ops {
            let mut y = vec![f64::NAN; 25];
            op.apply(Apply::NoTrans, &x, &mut y);
            assert_close(&op.name(), &y, &want);

            let mut yt = vec![f64::NAN; 19];
            op.apply(Apply::Trans, &xt, &mut yt);
            assert_close(&format!("{}^T", op.name()), &yt, &want_t);
        }
    }

    #[test]
    fn multi_vector_paths_match_columnwise_vector_paths() {
        let csr = random_matrix(40, 40, 4, 0x77);
        let ctx = ExecCtx::new(2);
        let ops: Vec<Box<dyn SparseLinOp>> = vec![
            Box::new(BcsrKernel::new(
                Arc::new(BcsrMatrix::from_csr(&csr, 3, 2)),
                ctx.clone(),
            )),
            Box::new(EllKernel::new(
                Arc::new(EllMatrix::from_csr(&csr)),
                ctx.clone(),
            )),
        ];
        for op_mode in Apply::ALL {
            for k in [1usize, 3, 11] {
                let x = MultiVec::from_fn(40, k, |i, j| ((i * 5 + j) as f64 * 0.21).sin());
                for op in &ops {
                    let mut y = MultiVec::zeros(40, k);
                    y.fill(f64::NAN);
                    op.apply_multi(op_mode, &x, &mut y);
                    for j in 0..k {
                        let mut yj = vec![f64::NAN; 40];
                        op.apply(op_mode, &x.column(j), &mut yj);
                        assert_close(
                            &format!("{} {op_mode:?} k={k} col {j}", op.name()),
                            &y.column(j),
                            &yj,
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "x rows")]
    fn shape_mismatch_panics() {
        let csr = random_matrix(10, 10, 2, 3);
        let kernel = BcsrKernel::new(Arc::new(BcsrMatrix::from_csr(&csr, 2, 2)), ExecCtx::new(1));
        let x = MultiVec::zeros(4, 2);
        let mut y = MultiVec::zeros(10, 2);
        kernel.spmm(&x, &mut y);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        let csr = random_matrix(10, 10, 2, 3);
        let kernel = EllKernel::new(Arc::new(EllMatrix::from_csr(&csr)), ExecCtx::new(1));
        let x = MultiVec::zeros(10, 2);
        let mut y = MultiVec::zeros(10, 3);
        kernel.spmm(&x, &mut y);
    }
}
