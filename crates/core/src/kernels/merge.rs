//! Merge-path nonzero-split CSR operator (Merrill & Garland's merge-based
//! CSR, SC'16) — the IMB remediation that whole-row partitioning cannot
//! reach.
//!
//! [`ParallelCsr`]'s schedules and [`DecomposedKernel`]'s long-row phases
//! both distribute *whole rows*; a power-law matrix whose single row
//! outweighs a thread's nonzero quota therefore keeps one thread hot no
//! matter the schedule. [`MergeCsr`] removes the restriction: the flat
//! (row-pointer, nonzero) merge diagonal is cut into equal-work
//! [`Partition2d`] segments that split *inside* rows. Each thread computes
//! complete dot products for the rows whose end it owns and a partial sum
//! for the row its segment is cut in; the partials are reconciled by a
//! serial **carry fix-up** pass of one `(row, value)` entry per thread — no
//! atomics anywhere.
//!
//! The transposed application inherits the same nonzero balance for free:
//! the scratch-and-merge scatter is thread-private, so segments may split
//! rows without even needing a carry (the shared [`TransposePlan`] merge
//! pass already reduces per-thread partials).
//!
//! [`ParallelCsr`]: super::ParallelCsr
//! [`DecomposedKernel`]: super::DecomposedKernel

use super::rowprim::{row_dot, row_spmm_acc, InnerLoop};
use super::transpose::{scatter_row, TransposePlan};
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::csr::CsrMatrix;
use crate::multivec::MultiVec;
use crate::partition::Partition2d;
use crate::pool::ExecCtx;
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Merge-path CSR operator: 2-D nonzero-split decomposition with per-thread
/// carry-out and a serial fix-up merge.
pub struct MergeCsr {
    matrix: Arc<CsrMatrix>,
    ctx: Arc<ExecCtx>,
    inner: InnerLoop,
    prefetch: bool,
    partition: Partition2d,
    tplan: TransposePlan,
}

std::thread_local! {
    /// Reusable carry buffers keyed to the applying thread — Krylov solvers
    /// apply the operator once per iteration, and the hot loop must not pay
    /// a per-application allocation (the same pattern as the transpose
    /// plan's scatter scratch).
    static CARRY: std::cell::RefCell<(Vec<usize>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl MergeCsr {
    /// Builds the operator: one merge-path search per thread boundary
    /// (`O(nthreads · log nrows)` — orders of magnitude cheaper than any
    /// format conversion, which the amortization model charges accordingly).
    pub fn new(
        matrix: Arc<CsrMatrix>,
        inner: InnerLoop,
        prefetch: bool,
        ctx: Arc<ExecCtx>,
    ) -> Self {
        let partition = Partition2d::merge_path(matrix.rowptr(), ctx.nthreads());
        // Transposed scatter walks the same segments (one work unit per
        // thread); the merge side partitions the output rows as usual.
        let tplan = TransposePlan::by_rows(partition.len(), matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            inner: inner.resolve_for_host(),
            prefetch,
            partition,
            tplan,
        }
    }

    /// Scalar-loop merge operator — the pure IMB optimization.
    pub fn baseline(matrix: Arc<CsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, InnerLoop::Scalar, false, ctx)
    }

    /// The nonzero-split decomposition in use (inspection, tests).
    pub fn partition(&self) -> &Partition2d {
        &self.partition
    }

    /// Shared flat-storage forward path: each segment writes the rows it
    /// owns and records one carry; the fix-up adds carries serially.
    fn forward_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let (rowptr, cols, vals) = (m.rowptr(), m.colind(), m.values());
        let nrows = m.nrows();
        let parts = &self.partition;
        let nsegs = parts.len();
        let inner = self.inner;
        let prefetch = self.prefetch;

        // One carry slot per segment: the partial sum of the row the segment
        // is cut in (`usize::MAX` marks "no carry" for untouched slots).
        // The buffers live in applying-thread-local storage so the hot loop
        // pays no allocation; clear + resize refills the defaults.
        CARRY.with(|cell| {
            let (carry_rows, carry_vals) = &mut *cell.borrow_mut();
            carry_rows.clear();
            carry_rows.resize(nsegs, usize::MAX);
            carry_vals.clear();
            carry_vals.resize(nsegs * k, 0.0);
            let yp = SendMutPtr::new(y);
            let crp = SendMutPtr::new(carry_rows);
            let cvp = SendMutPtr::new(carry_vals);

            self.ctx.run(|tid| {
                if tid >= nsegs {
                    return;
                }
                let seg = parts.segment(tid);
                let mut nz = seg.nnz.start;
                if k == 1 {
                    for row in seg.rows.clone() {
                        // Clipped span: the first row may have shed its leading
                        // nonzeros to the previous segment (its carry lands here
                        // in the fix-up).
                        let hi = rowptr[row + 1];
                        let v = row_dot(inner, prefetch, &cols[nz..hi], &vals[nz..hi], xs);
                        // SAFETY: each row end belongs to exactly one segment.
                        unsafe { yp.write(row, v) };
                        nz = hi;
                    }
                    let v = row_dot(
                        inner,
                        prefetch,
                        &cols[nz..seg.nnz.end],
                        &vals[nz..seg.nnz.end],
                        xs,
                    );
                    // SAFETY: slot `tid` is this thread's own carry.
                    unsafe {
                        crp.write(tid, seg.rows.end);
                        cvp.write(tid, v);
                    }
                } else {
                    for row in seg.rows.clone() {
                        let hi = rowptr[row + 1];
                        // SAFETY: row ends are segment-disjoint.
                        let out = unsafe { yp.window(row * k, k) };
                        out.fill(0.0);
                        row_spmm_acc(&cols[nz..hi], &vals[nz..hi], xs, k, out);
                        nz = hi;
                    }
                    // SAFETY: carry window `tid` is thread-private (pre-zeroed).
                    let out = unsafe { cvp.window(tid * k, k) };
                    row_spmm_acc(&cols[nz..seg.nnz.end], &vals[nz..seg.nnz.end], xs, k, out);
                    // SAFETY: as above.
                    unsafe { crp.write(tid, seg.rows.end) };
                }
            });

            // Carry fix-up: one serial pass over at most `nthreads` entries
            // (the final segment's carry row is `nrows` and is skipped).
            for (t, &row) in carry_rows.iter().enumerate() {
                if row < nrows {
                    for (o, &v) in y[row * k..(row + 1) * k]
                        .iter_mut()
                        .zip(&carry_vals[t * k..t * k + k])
                    {
                        *o += v;
                    }
                }
            }
        });
    }

    /// Transposed path: nonzero-balanced scatter over the merge segments
    /// into thread-private scratch, then the shared merge reduction.
    fn transpose_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let (rowptr, cols, vals) = (m.rowptr(), m.colind(), m.values());
        let parts = &self.partition;
        self.tplan.execute(&self.ctx, k, y, |segs, scratch| {
            for s in segs {
                let seg = parts.segment(s);
                let mut nz = seg.nnz.start;
                for row in seg.rows.clone() {
                    let hi = rowptr[row + 1];
                    scatter_row(
                        &cols[nz..hi],
                        &vals[nz..hi],
                        &xs[row * k..(row + 1) * k],
                        k,
                        scratch,
                    );
                    nz = hi;
                }
                if nz < seg.nnz.end {
                    // Trailing partial row: scratch is private, so splitting
                    // the row across segments needs no carry at all.
                    let row = seg.rows.end;
                    scatter_row(
                        &cols[nz..seg.nnz.end],
                        &vals[nz..seg.nnz.end],
                        &xs[row * k..(row + 1) * k],
                        k,
                        scratch,
                    );
                }
            }
        });
    }
}

impl SparseLinOp for MergeCsr {
    fn name(&self) -> String {
        let pf = if self.prefetch { "+prefetch" } else { "" };
        format!("csr-merge[{}{}]", self.inner.label(), pf)
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        match op {
            Apply::NoTrans => self.forward_flat(x, 1, y),
            Apply::Trans => self.transpose_flat(x, 1, y),
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        let k = x.width();
        match op {
            Apply::NoTrans => self.forward_flat(x.as_slice(), k, y.as_mut_slice()),
            Apply::Trans => self.transpose_flat(x.as_slice(), k, y.as_mut_slice()),
        }
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::kernels::SerialCsr;

    fn build(nrows: usize, ncols: usize, entries: &[(usize, usize, f64)]) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(nrows, ncols);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    /// Sparse background + one row holding most nonzeros: the shape the
    /// merge path exists for.
    fn dominant_row(n: usize) -> Arc<CsrMatrix> {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.0 + (i % 3) as f64));
            entries.push((i, (i * 7 + 1) % n, -0.5));
        }
        for j in 0..n {
            entries.push((n / 3, j, 0.25 + (j % 5) as f64 * 0.125));
        }
        build(n, n, &entries)
    }

    fn assert_matches_serial(csr: &Arc<CsrMatrix>, nthreads: usize, inner: InnerLoop) {
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        let x: Vec<f64> = (0..ncols).map(|i| 0.3 + (i as f64 * 0.41).sin()).collect();
        let mut want = vec![0.0; nrows];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);

        let k = MergeCsr::new(csr.clone(), inner, false, ExecCtx::new(nthreads));
        let mut y = vec![f64::NAN; nrows];
        k.spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "row {i}, {nthreads} threads, {}: {a} vs {b}",
                k.name()
            );
        }
    }

    #[test]
    fn matches_serial_on_dominant_row_across_threads_and_inners() {
        let csr = dominant_row(257);
        for nthreads in [1, 2, 4, 7] {
            for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
                assert_matches_serial(&csr, nthreads, inner);
            }
        }
    }

    #[test]
    fn all_nonzeros_in_one_row() {
        // Every segment lands inside the single row: the whole output is
        // assembled from carries.
        let entries: Vec<_> = (0..97)
            .map(|j| (2usize, j, 1.0 + j as f64 * 0.01))
            .collect();
        let csr = build(5, 97, &entries);
        for nthreads in [1, 3, 6] {
            assert_matches_serial(&csr, nthreads, InnerLoop::Scalar);
        }
    }

    #[test]
    fn fewer_rows_than_threads() {
        let csr = build(2, 4, &[(0, 1, 2.0), (1, 3, -1.5), (1, 0, 0.5)]);
        for nthreads in [3, 8] {
            assert_matches_serial(&csr, nthreads, InnerLoop::Scalar);
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = build(4, 6, &[]);
        let k = MergeCsr::baseline(csr, ExecCtx::new(3));
        let mut y = vec![f64::NAN; 4];
        k.spmv(&[0.0; 6], &mut y);
        assert_eq!(y, vec![0.0; 4]);
        let mut z = vec![f64::NAN; 6];
        k.apply(Apply::Trans, &[1.0; 4], &mut z);
        assert_eq!(z, vec![0.0; 6]);
    }

    #[test]
    fn transpose_matches_serial_on_dominant_row() {
        let csr = dominant_row(151);
        let x: Vec<f64> = (0..151).map(|i| 1.0 + (i as f64 * 0.13).cos()).collect();
        let mut want = vec![0.0; 151];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);
        for nthreads in [1, 2, 5] {
            let k = MergeCsr::baseline(csr.clone(), ExecCtx::new(nthreads));
            let mut y = vec![f64::NAN; 151];
            k.apply(Apply::Trans, &x, &mut y);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "col {i}, {nthreads} threads: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn multi_vector_matches_column_spmvs() {
        let csr = dominant_row(83);
        let k = 5usize;
        let x = MultiVec::from_fn(83, k, |i, j| (i as f64 * 0.07 + j as f64 * 0.31).sin());
        let op = MergeCsr::baseline(csr.clone(), ExecCtx::new(4));
        let mut y = MultiVec::zeros(83, k);
        op.spmm(&x, &mut y);
        let serial = SerialCsr::new(csr);
        for j in 0..k {
            let mut col = vec![0.0; 83];
            serial.spmv(&x.column(j), &mut col);
            for (i, want) in col.iter().enumerate() {
                let got = y.row(i)[j];
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn name_and_capabilities() {
        let csr = dominant_row(16);
        let op = MergeCsr::new(csr, InnerLoop::Scalar, true, ExecCtx::new(2));
        assert_eq!(op.name(), "csr-merge[scalar+prefetch]");
        let caps = op.capabilities();
        assert!(caps.transpose && caps.multi_vec);
        assert_eq!(op.last_thread_times().len(), 2);
    }

    #[test]
    fn per_thread_work_is_balanced_on_dominant_row() {
        let csr = dominant_row(4096);
        let op = MergeCsr::baseline(csr, ExecCtx::new(8));
        assert!(
            op.partition().imbalance_factor() < 1.01,
            "merge partition must be balanced, got {}",
            op.partition().imbalance_factor()
        );
    }
}
