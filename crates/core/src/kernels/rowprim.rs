//! Row-level primitives shared by the kernel family: the dot products of
//! the single-vector path and the register-blocked multi-vector row pass.
//!
//! The paper's CMP optimization is "inner loop unrolling + vectorization"
//! (Table II) and its MB optimization adds vectorization on top of
//! compression. These map to [`InnerLoop::Unrolled4`] and [`InnerLoop::Simd`]
//! here; `Simd` uses AVX2 gathers when the host supports them and silently
//! falls back to the unrolled path otherwise, so results are identical across
//! hosts.

use crate::util::{prefetch_read, SendMutPtr};

/// Width of the register-blocked column tile of the multi-vector row pass:
/// the number of accumulators a row holds live while streaming its nonzeros
/// (8 doubles = one cache line of `X`, and few enough registers that the
/// compiler keeps them enregistered alongside the value/index streams).
pub const SPMM_COL_TILE: usize = 8;

/// One row of a multi-vector product: `Σ_j vals[j] · X[cols[j], ·]`,
/// computed tile by tile with [`SPMM_COL_TILE`] register accumulators and
/// written through `yp`.
///
/// # Safety
/// `yp` must point at a `nrows × k` row-major buffer and row `i` must be
/// owned exclusively by the calling thread.
#[inline]
pub(crate) unsafe fn row_spmm_write(
    i: usize,
    cols: &[u32],
    vals: &[f64],
    xs: &[f64],
    k: usize,
    yp: &SendMutPtr<f64>,
) {
    let mut t0 = 0;
    while t0 < k {
        let tl = (k - t0).min(SPMM_COL_TILE);
        let acc = row_spmm_tile(cols, vals, xs, t0, k, tl);
        for (t, &a) in acc[..tl].iter().enumerate() {
            // SAFETY: forwarded from the caller's contract.
            unsafe { yp.write(i * k + t0 + t, a) };
        }
        t0 += tl;
    }
}

/// One [`SPMM_COL_TILE`]-wide (or narrower, for the ragged last tile)
/// column tile of a multi-vector row pass. Full tiles on AVX2 hosts take
/// the vectorized path; everything else runs the scalar accumulator loop.
/// Per lane both paths accumulate the row's nonzeros in the same order,
/// but the AVX2 path contracts each multiply-add into an FMA, so results
/// agree with the scalar tile to rounding (each contraction *removes* an
/// intermediate rounding step), not bit for bit.
#[inline]
fn row_spmm_tile(
    cols: &[u32],
    vals: &[f64],
    xs: &[f64],
    t0: usize,
    k: usize,
    tl: usize,
) -> [f64; SPMM_COL_TILE] {
    #[cfg(target_arch = "x86_64")]
    {
        if tl == SPMM_COL_TILE && crate::util::simd_available() {
            // SAFETY: AVX2 support is verified; a full tile means
            // `t0 + SPMM_COL_TILE <= k`, so every `c*k + t0 + 8` stays
            // inside the `nrows * k` block (CSR bounds invariants).
            return unsafe { row_spmm_tile8_avx2(cols, vals, xs, t0, k) };
        }
    }
    let mut acc = [0.0f64; SPMM_COL_TILE];
    for (&c, &v) in cols.iter().zip(vals) {
        let base = c as usize * k + t0;
        let xr = &xs[base..base + tl];
        for (a, &xv) in acc[..tl].iter_mut().zip(xr) {
            *a += v * xv;
        }
    }
    acc
}

/// AVX2 full-tile multi-vector row pass: two 4-lane accumulators, one
/// broadcast value, two contiguous loads of the `X` row slice, and two
/// FMAs per nonzero — the same instruction budget per element as the
/// single-vector gather microkernel, but with unit-stride loads.
///
/// # Safety
/// Requires AVX2; `t0 + SPMM_COL_TILE <= k` and all `cols` in bounds of
/// the `xs` block (CSR construction invariants).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn row_spmm_tile8_avx2(
    cols: &[u32],
    vals: &[f64],
    xs: &[f64],
    t0: usize,
    k: usize,
) -> [f64; SPMM_COL_TILE] {
    use core::arch::x86_64::*;
    unsafe {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        for (&c, &v) in cols.iter().zip(vals) {
            let base = c as usize * k + t0;
            let vv = _mm256_set1_pd(v);
            let x0 = _mm256_loadu_pd(xs.as_ptr().add(base));
            let x1 = _mm256_loadu_pd(xs.as_ptr().add(base + 4));
            a0 = _mm256_fmadd_pd(vv, x0, a0);
            a1 = _mm256_fmadd_pd(vv, x1, a1);
        }
        let mut out = [0.0f64; SPMM_COL_TILE];
        _mm256_storeu_pd(out.as_mut_ptr(), a0);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), a1);
        out
    }
}

/// Partial-row variant of the multi-vector row pass used by the merge-path
/// kernel: accumulates `Σ_j vals[j] · X[cols[j], ·]` **into** `out` (length
/// `k`) instead of overwriting an output row, so a row split across merge
/// segments can be reconciled additively in the carry fix-up.
#[inline]
pub(crate) fn row_spmm_acc(cols: &[u32], vals: &[f64], xs: &[f64], k: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), k);
    let mut t0 = 0;
    while t0 < k {
        let tl = (k - t0).min(SPMM_COL_TILE);
        let mut acc = [0.0f64; SPMM_COL_TILE];
        for (&c, &v) in cols.iter().zip(vals) {
            let base = c as usize * k + t0;
            let xr = &xs[base..base + tl];
            for (a, &xv) in acc[..tl].iter_mut().zip(xr) {
                *a += v * xv;
            }
        }
        for (o, &a) in out[t0..t0 + tl].iter_mut().zip(&acc[..tl]) {
            *o += a;
        }
        t0 += tl;
    }
}

/// Inner-loop flavor of a CSR-family kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InnerLoop {
    /// Plain scalar loop — the paper's baseline (Fig. 2).
    #[default]
    Scalar,
    /// 4-way manually unrolled loop with independent accumulators.
    Unrolled4,
    /// Unrolled + SIMD (AVX2 gather on x86-64; unrolled fallback elsewhere).
    Simd,
}

impl InnerLoop {
    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InnerLoop::Scalar => "scalar",
            InnerLoop::Unrolled4 => "unrolled",
            InnerLoop::Simd => "simd",
        }
    }

    /// Inverse of [`Self::label`] — used by the persistent plan cache to
    /// round-trip a serialized plan. `None` for unknown labels (a
    /// hand-edited cache entry must be rejected, not guessed at).
    pub fn parse_label(label: &str) -> Option<InnerLoop> {
        Some(match label {
            "scalar" => InnerLoop::Scalar,
            "unrolled" => InnerLoop::Unrolled4,
            "simd" => InnerLoop::Simd,
            _ => return None,
        })
    }

    /// Resolves `Simd` to `Unrolled4` when the host lacks AVX2, so the label
    /// reported matches what actually runs.
    pub fn resolve_for_host(self) -> InnerLoop {
        match self {
            InnerLoop::Simd if !crate::util::simd_available() => InnerLoop::Unrolled4,
            other => other,
        }
    }
}

/// `Σ vals[k] · x[cols[k]]` with the requested inner loop and optional
/// software prefetching of `x` at distance `PF_DIST`.
#[inline]
pub fn row_dot(inner: InnerLoop, prefetch: bool, cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    match (inner, prefetch) {
        (InnerLoop::Scalar, false) => row_dot_scalar(cols, vals, x),
        (InnerLoop::Scalar, true) => row_dot_scalar_prefetch(cols, vals, x),
        (InnerLoop::Unrolled4, false) => row_dot_unrolled(cols, vals, x),
        (InnerLoop::Unrolled4, true) => row_dot_unrolled_prefetch(cols, vals, x),
        (InnerLoop::Simd, pf) => row_dot_simd(cols, vals, x, pf),
    }
}

/// Prefetch distance in elements: one cache line of doubles, per the paper
/// ("a fixed prefetch distance equal to the number of elements that fit in a
/// single cache line").
pub const PF_DIST: usize = 8;

#[inline]
fn row_dot_scalar(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(cols.len(), vals.len());
    let mut sum = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        sum += v * x[c as usize];
    }
    sum
}

#[inline]
fn row_dot_scalar_prefetch(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let n = cols.len();
    let mut sum = 0.0;
    for k in 0..n {
        if k + PF_DIST < n {
            // Single prefetch instruction in the inner loop (paper §III-E).
            prefetch_read(&x[cols[k + PF_DIST] as usize]);
        }
        sum += vals[k] * x[cols[k] as usize];
    }
    sum
}

#[inline]
fn row_dot_unrolled(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let n = cols.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let k = i * 4;
        s0 += vals[k] * x[cols[k] as usize];
        s1 += vals[k + 1] * x[cols[k + 1] as usize];
        s2 += vals[k + 2] * x[cols[k + 2] as usize];
        s3 += vals[k + 3] * x[cols[k + 3] as usize];
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for k in chunks * 4..n {
        sum += vals[k] * x[cols[k] as usize];
    }
    sum
}

#[inline]
fn row_dot_unrolled_prefetch(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let n = cols.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let k = i * 4;
        if k + PF_DIST < n {
            prefetch_read(&x[cols[k + PF_DIST] as usize]);
        }
        s0 += vals[k] * x[cols[k] as usize];
        s1 += vals[k + 1] * x[cols[k + 1] as usize];
        s2 += vals[k + 2] * x[cols[k + 2] as usize];
        s3 += vals[k + 3] * x[cols[k + 3] as usize];
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for k in chunks * 4..n {
        sum += vals[k] * x[cols[k] as usize];
    }
    sum
}

/// Minimum row length routed to the AVX2 gather kernel. Below this, a row
/// is dispatch + horizontal reduction + mostly scalar remainder — the
/// gather unit never fills and the unrolled scalar loop wins, which is how
/// `csr-simd` managed to lose to `csr-baseline` on short-row matrices.
pub const SIMD_MIN_ROW: usize = 12;

#[inline]
fn row_dot_simd(cols: &[u32], vals: &[f64], x: &[f64], prefetch: bool) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        // Row-length bucket dispatch; `simd_available` is cached in a
        // `OnceLock` (one relaxed load — feature detection happened once,
        // at first use, not per row).
        if cols.len() >= SIMD_MIN_ROW && crate::util::simd_available() {
            // SAFETY: AVX2 support is verified; bounds are guaranteed by
            // the CSR construction invariants.
            return unsafe { row_dot_avx2(cols, vals, x, prefetch) };
        }
    }
    if prefetch {
        row_dot_unrolled_prefetch(cols, vals, x)
    } else {
        row_dot_unrolled(cols, vals, x)
    }
}

/// AVX2 gather-based row dot product (4 doubles per iteration).
///
/// # Safety
/// Requires AVX2. All `cols` entries must be in bounds of `x` (guaranteed by
/// CSR construction invariants).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn row_dot_avx2(cols: &[u32], vals: &[f64], x: &[f64], prefetch: bool) -> f64 {
    use core::arch::x86_64::*;
    let n = cols.len();
    let chunks = n / 4;
    unsafe {
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let k = i * 4;
            if prefetch && k + PF_DIST < n {
                prefetch_read(x.as_ptr().add(*cols.get_unchecked(k + PF_DIST) as usize));
            }
            let idx = _mm_loadu_si128(cols.as_ptr().add(k) as *const __m128i);
            let xs = _mm256_i32gather_pd::<8>(x.as_ptr(), idx);
            let vs = _mm256_loadu_pd(vals.as_ptr().add(k));
            acc = _mm256_fmadd_pd(vs, xs, acc);
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for k in chunks * 4..n {
            sum += vals.get_unchecked(k) * x.get_unchecked(*cols.get_unchecked(k) as usize);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(n: usize) -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        let cols: Vec<u32> = (0..n)
            .map(|k| ((k * 7 + 3) % (n.max(1) * 2)) as u32)
            .collect();
        let vals: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).cos()).collect();
        let x: Vec<f64> = (0..n.max(1) * 2).map(|k| (k as f64 * 0.11).sin()).collect();
        (cols, vals, x)
    }

    #[test]
    fn all_variants_agree_with_scalar() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 15, 16, 17, 100, 1023] {
            let (cols, vals, x) = case(n);
            let reference = row_dot(InnerLoop::Scalar, false, &cols, &vals, &x);
            for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
                for pf in [false, true] {
                    let got = row_dot(inner, pf, &cols, &vals, &x);
                    assert!(
                        (got - reference).abs() <= 1e-12 * (1.0 + reference.abs()),
                        "n={n} inner={inner:?} pf={pf}: {got} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(InnerLoop::Scalar.label(), "scalar");
        assert_eq!(InnerLoop::Unrolled4.label(), "unrolled");
        assert_eq!(InnerLoop::Simd.label(), "simd");
    }

    #[test]
    fn resolve_for_host_never_panics() {
        // On AVX2 hosts stays Simd, elsewhere falls back to Unrolled4.
        let r = InnerLoop::Simd.resolve_for_host();
        assert!(matches!(r, InnerLoop::Simd | InnerLoop::Unrolled4));
        assert_eq!(InnerLoop::Scalar.resolve_for_host(), InnerLoop::Scalar);
    }
}
