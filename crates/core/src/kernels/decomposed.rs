//! Two-phase operator over a decomposed matrix (paper Fig. 6).
//!
//! Forward application: phase 1 runs the regular row loop skipping long
//! rows; phase 2 computes each long row with *all* threads — every thread
//! takes a contiguous slice of the row's nonzeros and a reduction of
//! partial sums follows. The multi-vector path generalizes both phases to
//! `k`-wide partials.
//!
//! Transposed application needs no phases at all: the scratch-and-merge
//! scatter is race-free by construction, and the shared [`TransposePlan`]
//! balances the full (short + long) nonzero mass across threads. Rows are
//! still indivisible scatter units, so a single row holding most of the
//! nonzeros keeps one thread busy while the others drain — the transposed
//! analogue of the forward imbalance, accepted here because splitting a
//! row's scatter would need either atomics or an extra merge stage.

use super::rowprim::{row_dot, row_spmm_write, InnerLoop};
use super::transpose::{scatter_row, TransposePlan};
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::decomposed::DecomposedCsrMatrix;
use crate::multivec::MultiVec;
use crate::pool::ExecCtx;
use crate::schedule::{ResolvedSchedule, Schedule};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Parallel operator over [`DecomposedCsrMatrix`].
pub struct DecomposedKernel {
    matrix: Arc<DecomposedCsrMatrix>,
    ctx: Arc<ExecCtx>,
    phase1: ResolvedSchedule,
    inner: InnerLoop,
    prefetch: bool,
    tplan: TransposePlan,
}

impl DecomposedKernel {
    /// Builds the operator. The phase-1 schedule balances the *short-row*
    /// nonzeros; phase 2 always splits every long row across all threads.
    pub fn new(
        matrix: Arc<DecomposedCsrMatrix>,
        inner: InnerLoop,
        prefetch: bool,
        schedule: Schedule,
        ctx: Arc<ExecCtx>,
    ) -> Self {
        // StaticNnz / Auto balance on the short-row pointer (long rows
        // contribute zero weight, which is exactly right here).
        let phase1 =
            schedule.resolve_with_rowptr(matrix.nrows(), matrix.short_rowptr(), ctx.nthreads());
        // The transpose scatter visits *every* row, so its partition
        // balances the full cumulative row pointer (short + long mass).
        let full_rowptr: Vec<usize> = (0..matrix.nrows())
            .map(|i| matrix.row_range(i).start)
            .chain(std::iter::once(matrix.nnz()))
            .collect();
        let tplan = TransposePlan::by_rowptr(&full_rowptr, matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            phase1,
            inner: inner.resolve_for_host(),
            prefetch,
            tplan,
        }
    }

    /// Default decomposition operator: baseline inner loop + nnz-balanced
    /// phase 1 (the paper's IMB optimization in isolation).
    pub fn baseline(matrix: Arc<DecomposedCsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, InnerLoop::Scalar, false, Schedule::StaticNnz, ctx)
    }

    /// Shared transposed path over the full row set.
    fn transpose_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let cols = m.colind();
        let vals = m.values();
        self.tplan.execute(&self.ctx, k, y, |rows, scratch| {
            for i in rows {
                let r = m.row_range(i);
                scatter_row(
                    &cols[r.clone()],
                    &vals[r],
                    &xs[i * k..(i + 1) * k],
                    k,
                    scratch,
                );
            }
        });
    }
}

impl SparseLinOp for DecomposedKernel {
    fn name(&self) -> String {
        let pf = if self.prefetch { "+prefetch" } else { "" };
        format!("csr-decomposed[{}{}]", self.inner.label(), pf)
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        let m = &self.matrix;
        check_apply_operands(self.shape(), op, x, y);
        if op == Apply::Trans {
            return self.transpose_flat(x, 1, y);
        }
        let nthreads = self.ctx.nthreads();
        let long_rows = m.long_rows();
        let inner = self.inner;
        let prefetch = self.prefetch;
        let cols = m.colind();
        let vals = m.values();

        // Phase 1: regular row loop, long rows have empty short ranges and
        // are skipped implicitly (their rowptr span is empty).
        let yp = SendMutPtr::new(y);
        self.phase1.execute(&self.ctx, m.nrows(), |rows| {
            for i in rows {
                if m.is_long(i) {
                    continue;
                }
                let r = m.row_range(i);
                let v = row_dot(inner, prefetch, &cols[r.clone()], &vals[r], x);
                // SAFETY: schedule guarantees row-disjoint writes.
                unsafe { yp.write(i, v) };
            }
        });

        // Phase 2: every thread computes a slice of each long row.
        if long_rows.is_empty() {
            return;
        }
        let mut partials = vec![0.0f64; long_rows.len() * nthreads];
        let pp = SendMutPtr::new(&mut partials);
        self.ctx.run(|tid| {
            for (li, &row) in long_rows.iter().enumerate() {
                let r = m.row_range(row as usize);
                let len = r.len();
                let chunk = len.div_ceil(nthreads);
                let s = r.start + (tid * chunk).min(len);
                let e = r.start + ((tid + 1) * chunk).min(len);
                if s < e {
                    let v = row_dot(inner, prefetch, &cols[s..e], &vals[s..e], x);
                    // SAFETY: slot (li, tid) is written only by thread `tid`.
                    unsafe { pp.write(li * nthreads + tid, v) };
                }
            }
        });
        // Reduction of partial results (paper Fig. 6, "a reduction of partial
        // results follows"). Long rows are few, so this serial step is cheap.
        for (li, &row) in long_rows.iter().enumerate() {
            y[row as usize] = partials[li * nthreads..(li + 1) * nthreads].iter().sum();
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_apply_multi_operands(self.shape(), op, x, y);
        let k = x.width();
        let xs = x.as_slice();
        if op == Apply::Trans {
            return self.transpose_flat(xs, k, y.as_mut_slice());
        }
        let nthreads = self.ctx.nthreads();
        let long_rows = m.long_rows();
        let cols = m.colind();
        let vals = m.values();

        // Phase 1: tiled row loop, long rows skipped (empty short ranges).
        let yp = SendMutPtr::new(y.as_mut_slice());
        self.phase1.execute(&self.ctx, m.nrows(), |rows| {
            for i in rows {
                if m.is_long(i) {
                    continue;
                }
                let r = m.row_range(i);
                // SAFETY: row-disjoint writes per the schedule.
                unsafe { row_spmm_write(i, &cols[r.clone()], &vals[r], xs, k, &yp) };
            }
        });

        // Phase 2: every thread computes a k-wide slice of each long row.
        if long_rows.is_empty() {
            return;
        }
        let mut partials = vec![0.0f64; long_rows.len() * nthreads * k];
        let pp = SendMutPtr::new(&mut partials);
        self.ctx.run(|tid| {
            for (li, &row) in long_rows.iter().enumerate() {
                let r = m.row_range(row as usize);
                let len = r.len();
                let chunk = len.div_ceil(nthreads);
                let s = r.start + (tid * chunk).min(len);
                let e = r.start + ((tid + 1) * chunk).min(len);
                if s < e {
                    // SAFETY: slot (li, tid) is written only by thread tid.
                    unsafe {
                        row_spmm_write(li * nthreads + tid, &cols[s..e], &vals[s..e], xs, k, &pp)
                    };
                }
            }
        });
        for (li, &row) in long_rows.iter().enumerate() {
            let out = y.row_mut(row as usize);
            out.fill(0.0);
            for tid in 0..nthreads {
                let p = &partials[(li * nthreads + tid) * k..(li * nthreads + tid + 1) * k];
                for (o, &v) in out.iter_mut().zip(p) {
                    *o += v;
                }
            }
        }
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::kernels::SerialCsr;

    /// Matrix with a few mega-rows over a sparse background — the ASIC_680k /
    /// rajat30 shape the decomposition targets.
    fn few_dense_rows(n: usize, dense_rows: &[usize]) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            coo.push(i, (i + 7) % n, -1.0);
        }
        for &r in dense_rows {
            for j in 0..n {
                coo.push(r, j, 0.01 * (j % 11) as f64 + 0.1);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn matches_serial_on_skewed_matrix() {
        let csr = few_dense_rows(500, &[3, 250, 499]);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin() + 1.0).collect();
        let mut reference = vec![0.0; 500];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let threshold = DecomposedCsrMatrix::auto_threshold(&csr, 4.0);
        let dec = Arc::new(DecomposedCsrMatrix::from_csr(&csr, threshold));
        assert_eq!(
            dec.long_rows().len(),
            3,
            "the three dense rows must split out"
        );

        for nthreads in [1, 2, 4, 7] {
            let ctx = ExecCtx::new(nthreads);
            for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
                let k = DecomposedKernel::new(
                    dec.clone(),
                    inner,
                    false,
                    Schedule::StaticNnz,
                    ctx.clone(),
                );
                let mut y = vec![f64::NAN; 500];
                k.spmv(&x, &mut y);
                for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                        "row {i}, {nthreads} threads, {}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_covers_long_rows() {
        let csr = few_dense_rows(300, &[0, 150]);
        let x: Vec<f64> = (0..300).map(|i| 1.0 + (i as f64 * 0.07).cos()).collect();
        let mut want = vec![0.0; 300];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);

        let dec = Arc::new(DecomposedCsrMatrix::from_csr(&csr, 8));
        assert_eq!(dec.long_rows().len(), 2);
        for nthreads in [1, 3, 5] {
            let k = DecomposedKernel::baseline(dec.clone(), ExecCtx::new(nthreads));
            let mut y = vec![f64::NAN; 300];
            k.apply(Apply::Trans, &x, &mut y);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "row {i}, {nthreads} threads: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn no_long_rows_degenerates_to_plain() {
        let csr = few_dense_rows(100, &[]);
        let x = vec![1.0; 100];
        let mut reference = vec![0.0; 100];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let dec = Arc::new(DecomposedCsrMatrix::from_csr(&csr, 1000));
        let k = DecomposedKernel::baseline(dec, ExecCtx::new(3));
        let mut y = vec![0.0; 100];
        k.spmv(&x, &mut y);
        assert_eq!(y, reference);
    }

    #[test]
    fn single_thread_still_correct() {
        let csr = few_dense_rows(64, &[0]);
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mut reference = vec![0.0; 64];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let dec = Arc::new(DecomposedCsrMatrix::from_csr(&csr, 8));
        let k = DecomposedKernel::baseline(dec, ExecCtx::new(1));
        let mut y = vec![0.0; 64];
        k.spmv(&x, &mut y);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
