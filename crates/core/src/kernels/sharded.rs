//! Out-of-core sharded operator: streams row-block shards through a bounded
//! window, with an additive COO delta overlay and background compaction.
//!
//! [`ShardedOp`] is the consumer-facing half of the out-of-core layer. The
//! matrix lives elsewhere — an on-disk shard container, another process, a
//! generator — and is described to the operator as a list of [`ShardSpec`]s:
//! one contiguous row range per shard, a *loader* that produces the shard's
//! CSR fragment on demand, and a *builder* that turns a fragment into a
//! concrete [`SparseLinOp`] (the per-shard tuned kernel, in the optimizer's
//! usage). The operator then implements the full
//! `{NoTrans, Trans} × {vector, multi-vector}` application space while
//! keeping at most `window` built shards resident:
//!
//! - **Bounded window.** Built shard kernels live in an LRU cache of
//!   capacity `window`; a miss evicts the least-recently-used shard *before*
//!   building the next one, so accounted residency never exceeds
//!   `window · max_shard_bytes` (see [`resident_shard_bytes`]).
//! - **Prefetch.** With `window ≥ 2`, each apply runs a staging thread that
//!   loads the next uncached shard's raw CSR one step ahead of the compute
//!   loop (depth 1, so streaming adds at most two transient fragments on
//!   top of the window). Kernel *builds* and *applies* stay on the calling
//!   thread — the vendored rayon broadcast is not reentrant, so all pool
//!   work is serialized on an internal gate.
//! - **Delta overlay.** [`ShardedOp::stage_delta`] records additive COO
//!   updates (`a[r][c] += v`) in the owning shard's overlay; every apply
//!   folds the overlay in after the base kernel, so updates are visible
//!   immediately without touching the shard bytes.
//! - **Compaction.** When a shard's overlay outgrows
//!   [`ShardedOp::compaction_threshold`] (a fraction of the shard's base
//!   nnz), a background thread merges base + overlay into a fresh fragment,
//!   rebuilds the kernel via the builder with [`BuildReason::Compaction`]
//!   (the optimizer re-tunes there), and swaps it in under the shard lock.
//!   Readers keep serving the old base + full overlay until the swap — the
//!   two observable states are equivalent, so there is no stop-the-world.
//!
//! ## Example
//!
//! ```
//! use sparseopt_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A 4×4 identity split into two 2-row shards, loaded on demand.
//! let blocks: Vec<Arc<CsrMatrix>> = (0..2)
//!     .map(|s| {
//!         let mut coo = CooMatrix::new(2, 4);
//!         coo.push(0, 2 * s, 1.0);
//!         coo.push(1, 2 * s + 1, 1.0);
//!         Arc::new(CsrMatrix::from_coo(&coo))
//!     })
//!     .collect();
//! let shards = blocks
//!     .iter()
//!     .enumerate()
//!     .map(|(s, block)| {
//!         let block = block.clone();
//!         ShardSpec {
//!             rows: 2 * s..2 * s + 2,
//!             nnz: block.nnz(),
//!             loader: Arc::new(move || Ok((*block).clone())),
//!             builder: Arc::new(|csr: &Arc<CsrMatrix>, _reason: BuildReason| {
//!                 Box::new(SerialCsr::new(csr.clone())) as Box<dyn SparseLinOp>
//!             }),
//!         }
//!     })
//!     .collect();
//!
//! // window = 1: at most one built shard is ever resident. (`stage_delta`
//! // wants `Arc<Self>` so background compaction can own a handle.)
//! let op = Arc::new(ShardedOp::new((4, 4), shards, 1));
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let mut y = [0.0; 4];
//! op.apply(Apply::NoTrans, &x, &mut y);
//! assert_eq!(y, x);
//!
//! // Additive delta: visible on the very next apply, no rebuild needed.
//! op.stage_delta(0, 3, 10.0);
//! op.apply(Apply::NoTrans, &x, &mut y);
//! assert_eq!(y[0], 1.0 + 10.0 * 4.0);
//! ```

use crate::csr::CsrMatrix;
use crate::kernels::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::multivec::MultiVec;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Why the builder is being invoked for a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildReason {
    /// The shard entered the streaming window (first touch or re-entry
    /// after eviction): rebuild from the already-selected plan.
    Stream,
    /// The shard was just compacted (base + overlay merged): its structure
    /// changed, so the builder may re-classify / re-tune.
    Compaction,
}

/// Produces a shard's CSR fragment on demand: `rows.len()` rows over the
/// full column width. Errors are strings because loaders cross crate
/// boundaries (e.g. the shard container lives in `sparseopt-matrix`).
pub type ShardLoadFn = dyn Fn() -> Result<CsrMatrix, String> + Send + Sync;

/// Turns a loaded fragment into the shard's concrete operator — in the
/// optimizer's usage, the per-shard tuned kernel.
pub type ShardBuildFn = dyn Fn(&Arc<CsrMatrix>, BuildReason) -> Box<dyn SparseLinOp> + Send + Sync;

/// Description of one row-block shard handed to [`ShardedOp::new`].
#[derive(Clone)]
pub struct ShardSpec {
    /// Global row range `[start, end)` the shard covers; specs must tile
    /// `0..nrows` contiguously.
    pub rows: Range<usize>,
    /// Nonzeros in the shard's base fragment (drives the compaction
    /// threshold and `nnz()` before first load).
    pub nnz: usize,
    /// On-demand fragment loader.
    pub loader: Arc<ShardLoadFn>,
    /// Fragment → operator builder.
    pub builder: Arc<ShardBuildFn>,
}

// Crate-global accounting for built shard kernels — the residency hook the
// bench driver asserts `peak ≤ window · max_shard_bytes` against.
static RESIDENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_RESIDENT_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Bytes of built shard kernels currently held in streaming windows, summed
/// over every live [`ShardedOp`].
pub fn resident_shard_bytes() -> usize {
    RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`resident_shard_bytes`] since the last
/// [`reset_peak_resident_shard_bytes`].
pub fn peak_resident_shard_bytes() -> usize {
    PEAK_RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// Resets the peak to the current residency (bench drivers call this before
/// a measured streaming pass).
pub fn reset_peak_resident_shard_bytes() {
    PEAK_RESIDENT_BYTES.store(RESIDENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One staged additive update `(row, col, value)` in a shard's overlay.
type DeltaEntry = (usize, usize, f64);

/// RAII residency accounting for one cached shard kernel.
struct ResidencyGuard {
    bytes: usize,
}

impl ResidencyGuard {
    fn new(bytes: usize) -> Self {
        let now = RESIDENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK_RESIDENT_BYTES.fetch_max(now, Ordering::Relaxed);
        Self { bytes }
    }
}

impl Drop for ResidencyGuard {
    fn drop(&mut self) {
        RESIDENT_BYTES.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

enum ShardSource {
    /// Base fragment still lives behind the loader (on disk).
    Loader(Arc<ShardLoadFn>),
    /// Base fragment was re-materialized by compaction and is owned.
    Resident(Arc<CsrMatrix>),
}

impl ShardSource {
    fn snapshot(&self) -> ShardSource {
        match self {
            ShardSource::Loader(f) => ShardSource::Loader(f.clone()),
            ShardSource::Resident(m) => ShardSource::Resident(m.clone()),
        }
    }

    fn load(&self, rows: &Range<usize>) -> Arc<CsrMatrix> {
        match self {
            ShardSource::Resident(m) => m.clone(),
            ShardSource::Loader(f) => match f() {
                Ok(csr) => Arc::new(csr),
                Err(e) => panic!("shard load failed for rows {rows:?}: {e}"),
            },
        }
    }
}

struct CachedShard {
    op: Arc<dyn SparseLinOp>,
    _residency: ResidencyGuard,
}

struct ShardState {
    source: ShardSource,
    cached: Option<CachedShard>,
    /// Additive COO overlay in *global* coordinates `(row, col, value)`.
    overlay: Vec<DeltaEntry>,
    base_nnz: usize,
    /// Bumped by every compaction swap; detects stale loads/builds.
    generation: u64,
    compacting: bool,
}

struct Shard {
    rows: Range<usize>,
    builder: Arc<ShardBuildFn>,
    state: Mutex<ShardState>,
}

#[derive(Default)]
struct Maintenance {
    in_flight: Mutex<usize>,
    done: Condvar,
}

/// The streaming out-of-core operator: row-block shards through a bounded
/// LRU window with depth-1 prefetch, an additive COO delta overlay, and
/// background threshold-triggered compaction. See the module-level
/// documentation above for the full contract and an example.
pub struct ShardedOp {
    shape: (usize, usize),
    shards: Vec<Shard>,
    window: usize,
    compaction_threshold: f64,
    /// LRU order of cached shard indexes (front = coldest). Advisory:
    /// `ShardState::cached` is the source of truth.
    lru: Mutex<Vec<usize>>,
    cached_count: AtomicUsize,
    max_built_bytes: AtomicUsize,
    delta_nnz: AtomicUsize,
    compactions: AtomicUsize,
    /// Serializes all thread-pool work (applies and compaction builds): the
    /// vendored rayon broadcast has a single job slot per pool.
    pool_gate: Mutex<()>,
    maintenance: Arc<Maintenance>,
}

impl ShardedOp {
    /// Builds a sharded operator over `shards`, keeping at most `window`
    /// built shard kernels resident.
    ///
    /// # Panics
    /// Panics if `window == 0` or the shard row ranges do not tile
    /// `0..shape.0` contiguously.
    pub fn new(shape: (usize, usize), shards: Vec<ShardSpec>, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        let mut next = 0usize;
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(
                s.rows.start, next,
                "shard {i} starts at row {}, expected {next}",
                s.rows.start
            );
            next = s.rows.end;
        }
        assert_eq!(
            next, shape.0,
            "shards cover {next} rows, shape says {}",
            shape.0
        );
        let shards = shards
            .into_iter()
            .map(|s| Shard {
                rows: s.rows,
                builder: s.builder,
                state: Mutex::new(ShardState {
                    source: ShardSource::Loader(s.loader),
                    cached: None,
                    overlay: Vec::new(),
                    base_nnz: s.nnz,
                    generation: 0,
                    compacting: false,
                }),
            })
            .collect();
        Self {
            shape,
            shards,
            window,
            compaction_threshold: 0.25,
            lru: Mutex::new(Vec::new()),
            cached_count: AtomicUsize::new(0),
            max_built_bytes: AtomicUsize::new(0),
            delta_nnz: AtomicUsize::new(0),
            compactions: AtomicUsize::new(0),
            pool_gate: Mutex::new(()),
            maintenance: Arc::new(Maintenance::default()),
        }
    }

    /// Overrides the compaction trigger: a shard compacts once its overlay
    /// holds more than `threshold · base_nnz` staged entries (default 0.25).
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.compaction_threshold = threshold;
        self
    }

    /// Number of row-block shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The bounded streaming window (max resident built shards).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The compaction trigger fraction.
    pub fn compaction_threshold(&self) -> f64 {
        self.compaction_threshold
    }

    /// Global row range of shard `i`.
    pub fn shard_rows(&self, i: usize) -> Range<usize> {
        self.shards[i].rows.clone()
    }

    /// Built shard kernels currently resident in this operator's window.
    pub fn cached_shards(&self) -> usize {
        self.cached_count.load(Ordering::Relaxed)
    }

    /// Largest accounted footprint of any shard kernel built so far — the
    /// `max_shard_bytes` factor of the residency bound.
    pub fn max_built_shard_bytes(&self) -> usize {
        self.max_built_bytes.load(Ordering::Relaxed)
    }

    /// Staged delta entries not yet folded into a shard by compaction.
    pub fn delta_nnz(&self) -> usize {
        self.delta_nnz.load(Ordering::Relaxed)
    }

    /// Completed background compactions.
    pub fn compactions_completed(&self) -> usize {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Stages an additive update `a[row][col] += value`, visible to every
    /// subsequent apply. May trigger a background compaction of the owning
    /// shard when its overlay crosses the threshold.
    ///
    /// # Panics
    /// Panics if `row`/`col` are outside the operator shape.
    pub fn stage_delta(self: &Arc<Self>, row: usize, col: usize, value: f64) {
        assert!(row < self.shape.0, "delta row {row} out of bounds");
        assert!(col < self.shape.1, "delta col {col} out of bounds");
        let si = self
            .shards
            .partition_point(|s| s.rows.end <= row)
            .min(self.shards.len() - 1);
        let trigger = {
            let mut st = self.shards[si].state.lock().expect("shard state");
            st.overlay.push((row, col, value));
            self.delta_nnz.fetch_add(1, Ordering::Relaxed);
            let over =
                st.overlay.len() as f64 > self.compaction_threshold * st.base_nnz.max(1) as f64;
            if over && !st.compacting {
                st.compacting = true;
                true
            } else {
                false
            }
        };
        if trigger {
            self.spawn_compaction(si);
        }
    }

    /// Blocks until every in-flight background compaction has completed.
    pub fn wait_for_compactions(&self) {
        let mut n = self.maintenance.in_flight.lock().expect("maintenance");
        while *n > 0 {
            n = self.maintenance.done.wait(n).expect("maintenance");
        }
    }

    fn spawn_compaction(self: &Arc<Self>, si: usize) {
        *self.maintenance.in_flight.lock().expect("maintenance") += 1;
        let this = self.clone();
        std::thread::spawn(move || {
            this.compact(si);
            let mut n = this.maintenance.in_flight.lock().expect("maintenance");
            *n -= 1;
            this.maintenance.done.notify_all();
        });
    }

    /// Merges shard `si`'s base fragment with a snapshot of its overlay,
    /// rebuilds the kernel ([`BuildReason::Compaction`]), and swaps both in.
    /// Runs on a background thread; readers keep serving the old base plus
    /// the full overlay (an equivalent state) until the swap.
    fn compact(self: &Arc<Self>, si: usize) {
        let shard = &self.shards[si];
        let (source, snapshot, snap_len, generation) = {
            let st = shard.state.lock().expect("shard state");
            (
                st.source.snapshot(),
                st.overlay.clone(),
                st.overlay.len(),
                st.generation,
            )
        };
        let base = source.load(&shard.rows);
        let mut coo = crate::coo::CooMatrix::new(base.nrows(), base.ncols());
        for r in 0..base.nrows() {
            let (s, e) = (base.rowptr()[r], base.rowptr()[r + 1]);
            for idx in s..e {
                coo.push(r, base.colind()[idx] as usize, base.values()[idx]);
            }
        }
        for &(r, c, v) in &snapshot {
            coo.push(r - shard.rows.start, c, v);
        }
        // from_coo sums duplicates — exactly the additive delta semantics.
        let merged = Arc::new(CsrMatrix::from_coo(&coo));
        let built = {
            let _gate = self.pool_gate.lock().expect("pool gate");
            (shard.builder)(&merged, BuildReason::Compaction)
        };

        let mut st = shard.state.lock().expect("shard state");
        if st.generation != generation {
            // A concurrent swap happened (cannot in practice: `compacting`
            // admits one compactor per shard); drop our work, never corrupt.
            st.compacting = false;
            return;
        }
        st.base_nnz = merged.nnz();
        st.source = ShardSource::Resident(merged);
        st.overlay.drain(..snap_len);
        st.generation += 1;
        if st.cached.is_some() {
            let bytes = built.footprint_bytes();
            self.max_built_bytes.fetch_max(bytes, Ordering::Relaxed);
            st.cached = Some(CachedShard {
                op: Arc::from(built),
                _residency: ResidencyGuard::new(bytes),
            });
        }
        st.compacting = false;
        drop(st);
        self.delta_nnz.fetch_sub(snap_len, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Evicts least-recently-used shards until the cache has room for one
    /// more entry. Never holds the LRU lock and a shard lock at once.
    fn make_room(&self) {
        while self.cached_count.load(Ordering::Relaxed) >= self.window {
            let victim = {
                let mut lru = self.lru.lock().expect("lru");
                if lru.is_empty() {
                    return;
                }
                lru.remove(0)
            };
            let mut st = self.shards[victim].state.lock().expect("shard state");
            if st.cached.take().is_some() {
                self.cached_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn touch_lru(&self, si: usize) {
        let mut lru = self.lru.lock().expect("lru");
        lru.retain(|&x| x != si);
        lru.push(si);
    }

    /// Returns shard `si`'s kernel and an overlay snapshot, loading and
    /// building (and evicting) as needed. `staged` optionally supplies
    /// fragments prefetched by the staging thread.
    fn acquire(
        &self,
        si: usize,
        staged: Option<&Receiver<(usize, u64, CsrMatrix)>>,
    ) -> (Arc<dyn SparseLinOp>, Vec<DeltaEntry>) {
        loop {
            let (source, generation) = {
                let st = self.shards[si].state.lock().expect("shard state");
                if let Some(c) = &st.cached {
                    let snap = (c.op.clone(), st.overlay.clone());
                    drop(st);
                    self.touch_lru(si);
                    return snap;
                }
                (st.source.snapshot(), st.generation)
            };

            let mut csr: Option<Arc<CsrMatrix>> = None;
            if let (ShardSource::Loader(_), Some(rx)) = (&source, staged) {
                // Drain the staging channel up to our shard; earlier or
                // stale entries were loaded for windows that no longer need
                // them and are simply dropped.
                while let Ok((idx, gen, fragment)) = rx.recv() {
                    if idx == si {
                        if gen == generation {
                            csr = Some(Arc::new(fragment));
                        }
                        break;
                    }
                }
            }
            let csr = csr.unwrap_or_else(|| source.load(&self.shards[si].rows));

            self.make_room();
            let built = (self.shards[si].builder)(&csr, BuildReason::Stream);
            let bytes = built.footprint_bytes();

            let mut st = self.shards[si].state.lock().expect("shard state");
            if st.generation != generation {
                continue; // compaction swapped the base under us: rebuild
            }
            self.max_built_bytes.fetch_max(bytes, Ordering::Relaxed);
            st.cached = Some(CachedShard {
                op: Arc::from(built),
                _residency: ResidencyGuard::new(bytes),
            });
            self.cached_count.fetch_add(1, Ordering::Relaxed);
            let snap = (
                st.cached.as_ref().expect("just cached").op.clone(),
                st.overlay.clone(),
            );
            drop(st);
            self.touch_lru(si);
            return snap;
        }
    }

    /// Runs `visit` over every shard in row order, with depth-1 prefetch of
    /// raw fragments on a staging thread when the window allows it.
    fn stream(&self, mut visit: impl FnMut(usize, &Arc<dyn SparseLinOp>, &[(usize, usize, f64)])) {
        let n = self.shards.len();
        if self.window >= 2 && n > 1 {
            std::thread::scope(|s| {
                let (tx, rx): (SyncSender<(usize, u64, CsrMatrix)>, _) = mpsc::sync_channel(1);
                s.spawn(move || {
                    for si in 0..n {
                        let staged = {
                            let st = self.shards[si].state.lock().expect("shard state");
                            if st.cached.is_some() {
                                None
                            } else if let ShardSource::Loader(f) = &st.source {
                                Some((f.clone(), st.generation))
                            } else {
                                None
                            }
                        };
                        if let Some((loader, gen)) = staged {
                            // A failed load is not reported here: the
                            // compute loop retries inline and surfaces it.
                            if let Ok(fragment) = loader() {
                                if tx.send((si, gen, fragment)).is_err() {
                                    return; // apply finished without us
                                }
                            }
                        }
                    }
                });
                for si in 0..n {
                    let (op, overlay) = self.acquire(si, Some(&rx));
                    visit(si, &op, &overlay);
                }
                drop(rx); // unblock the staging thread before scope join
            });
        } else {
            for si in 0..n {
                let (op, overlay) = self.acquire(si, None);
                visit(si, &op, &overlay);
            }
        }
    }

    fn forward(&self, x: &[f64], y: &mut [f64]) {
        self.stream(|si, op, overlay| {
            let rows = &self.shards[si].rows;
            op.apply(Apply::NoTrans, x, &mut y[rows.clone()]);
            for &(r, c, v) in overlay {
                y[r] += v * x[c];
            }
        });
    }

    fn transposed(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        let mut scratch = vec![0.0; self.shape.1];
        self.stream(|si, op, overlay| {
            let rows = &self.shards[si].rows;
            if op.nnz() > 0 {
                scratch.fill(0.0);
                op.apply(Apply::Trans, &x[rows.clone()], &mut scratch);
                for (yi, si) in y.iter_mut().zip(&scratch) {
                    *yi += si;
                }
            }
            for &(r, c, v) in overlay {
                y[c] += v * x[r];
            }
        });
    }

    fn forward_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        let k = x.width();
        let mut block = MultiVec::zeros(0, k.max(1));
        self.stream(|si, op, overlay| {
            let rows = &self.shards[si].rows;
            block.reset_zeroed(rows.len(), k);
            op.apply_multi(Apply::NoTrans, x, &mut block);
            y.as_mut_slice()[rows.start * k..rows.end * k].copy_from_slice(block.as_slice());
            for &(r, c, v) in overlay {
                for (yj, &xj) in y.row_mut(r).iter_mut().zip(x.row(c)) {
                    *yj += v * xj;
                }
            }
        });
    }

    fn transposed_multi(&self, x: &MultiVec, y: &mut MultiVec) {
        let k = x.width();
        y.fill(0.0);
        let mut block_in = MultiVec::zeros(0, k.max(1));
        let mut scratch = MultiVec::zeros(0, k.max(1));
        self.stream(|si, op, overlay| {
            let rows = &self.shards[si].rows;
            if op.nnz() > 0 {
                block_in.reset_zeroed(rows.len(), k);
                block_in
                    .as_mut_slice()
                    .copy_from_slice(&x.as_slice()[rows.start * k..rows.end * k]);
                scratch.reset_zeroed(self.shape.1, k);
                op.apply_multi(Apply::Trans, &block_in, &mut scratch);
                for (yi, si) in y.as_mut_slice().iter_mut().zip(scratch.as_slice()) {
                    *yi += si;
                }
            }
            for &(r, c, v) in overlay {
                for (yj, &xj) in y.row_mut(c).iter_mut().zip(x.row(r)) {
                    *yj += v * xj;
                }
            }
        });
    }
}

impl SparseLinOp for ShardedOp {
    fn name(&self) -> String {
        format!(
            "sharded[shards={},window={}]",
            self.shards.len(),
            self.window
        )
    }

    fn shape(&self) -> (usize, usize) {
        self.shape
    }

    fn nnz(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let st = s.state.lock().expect("shard state");
                st.base_nnz + st.overlay.len()
            })
            .sum()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape, op, x, y);
        let _gate = self.pool_gate.lock().expect("pool gate");
        match op {
            Apply::NoTrans => self.forward(x, y),
            Apply::Trans => self.transposed(x, y),
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape, op, x, y);
        let _gate = self.pool_gate.lock().expect("pool gate");
        match op {
            Apply::NoTrans => self.forward_multi(x, y),
            Apply::Trans => self.transposed_multi(x, y),
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let st = s.state.lock().expect("shard state");
                (s.rows.len() + 1) * std::mem::size_of::<usize>()
                    + (st.base_nnz + st.overlay.len())
                        * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::kernels::SerialCsr;

    fn row_block(full: &CsrMatrix, rows: Range<usize>) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows.len(), full.ncols());
        for (local, r) in rows.enumerate() {
            for k in full.rowptr()[r]..full.rowptr()[r + 1] {
                coo.push(local, full.colind()[k] as usize, full.values()[k]);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn serial_specs(full: &CsrMatrix, block_rows: usize) -> Vec<ShardSpec> {
        let n = full.nrows();
        (0..n.div_ceil(block_rows))
            .map(|s| {
                let rows = s * block_rows..((s + 1) * block_rows).min(n);
                let frag = Arc::new(row_block(full, rows.clone()));
                let loader_frag = frag.clone();
                ShardSpec {
                    rows,
                    nnz: frag.nnz(),
                    loader: Arc::new(move || Ok((*loader_frag).clone())),
                    builder: Arc::new(|csr: &Arc<CsrMatrix>, _| {
                        Box::new(SerialCsr::new(csr.clone())) as Box<dyn SparseLinOp>
                    }),
                }
            })
            .collect()
    }

    fn dense_blocks(
        n: usize,
        block_rows: usize,
        seed: u64,
    ) -> (CooMatrix, CsrMatrix, Vec<ShardSpec>) {
        let mut state = seed.max(1);
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for _ in 0..(rng() % 4) {
                let j = (rng() as usize) % n;
                coo.push(i, j, (rng() % 17) as f64 - 8.0);
            }
        }
        coo.sort_and_dedup();
        let full = CsrMatrix::from_coo(&coo);
        let specs = serial_specs(&full, block_rows);
        (coo, full, specs)
    }

    fn assert_matches(op: &ShardedOp, reference: &CsrMatrix) {
        let serial = SerialCsr::new(Arc::new(reference.clone()));
        for apply in Apply::ALL {
            let (out, inp) = apply.out_in(op.shape());
            let x: Vec<f64> = (0..inp).map(|i| (i % 7) as f64 - 3.0).collect();
            let mut got = vec![0.0; out];
            let mut want = vec![0.0; out];
            op.apply(apply, &x, &mut got);
            serial.apply(apply, &x, &mut want);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0), "{apply:?}");
            }
        }
    }

    #[test]
    fn matches_reference_across_windows() {
        let (_, full, specs) = dense_blocks(60, 13, 5);
        for window in [1, 2, 8] {
            let op = ShardedOp::new((60, 60), specs.clone(), window);
            assert_matches(&op, &full);
            assert!(op.cached_shards() <= window);
        }
    }

    #[test]
    fn deltas_are_visible_and_compaction_preserves_results() {
        let (mut coo, full, specs) = dense_blocks(40, 10, 9);
        let op = Arc::new(ShardedOp::new((40, 40), specs, 2).with_compaction_threshold(0.05));
        // Pre-delta sanity, then stage enough deltas to cross the threshold.
        assert_matches(&op, &full);
        for i in 0..30 {
            let (r, c, v) = (i % 40, (i * 7) % 40, i as f64 * 0.5 - 3.0);
            op.stage_delta(r, c, v);
            coo.push(r, c, v);
        }
        op.wait_for_compactions();
        assert!(op.compactions_completed() >= 1, "threshold must trigger");
        assert_matches(&op, &CsrMatrix::from_coo(&coo));
    }

    #[test]
    fn residency_stays_within_window() {
        let (_, _, specs) = dense_blocks(64, 8, 3);
        let op = ShardedOp::new((64, 64), specs, 2);
        reset_peak_resident_shard_bytes();
        let x = vec![1.0; 64];
        let mut y = vec![0.0; 64];
        for _ in 0..3 {
            op.apply(Apply::NoTrans, &x, &mut y);
        }
        assert!(op.cached_shards() <= 2);
        assert!(op.max_built_shard_bytes() > 0);
        assert!(
            peak_resident_shard_bytes() <= 2 * op.max_built_shard_bytes(),
            "peak {} > 2 x {}",
            peak_resident_shard_bytes(),
            op.max_built_shard_bytes()
        );
    }
}
