//! Sparse triangular solve (SpTRSV) — the second member of the sparse kernel
//! family next to SpMV (the kease reference treats SpMV, SpTRSV, and SymGS
//! as one family), and the compute core of the incomplete-factorization
//! preconditioners in `sparseopt-solver`.
//!
//! Solving `L x = b` (or `U x = b`) is **dependency-bound**, not
//! bandwidth/latency/imbalance-bound like SpMV: row `i` cannot be solved
//! before every row it references. The dependency DAG is exposed by *level
//! scheduling* ([`LevelSets`]): level 0 holds the rows with no off-diagonal
//! dependencies, level `ℓ` the rows whose deepest dependency sits in level
//! `ℓ − 1`. Rows **within** a level are independent, so the kernel solves
//! them pool-parallel with one barrier per level. The shape of the DAG —
//! level count × average level width — decides whether that pays:
//! a banded triangle degenerates to `n` single-row levels (serial chain,
//! [`TrsvAlgo::Serial`] wins), while stencil/random triangles have wide
//! levels where [`TrsvAlgo::LevelScheduled`] approaches `nthreads`-way
//! speedup. The `sparseopt-sim` crate models exactly this trade
//! (`simulate_trsv`), and [`TrsvAlgo::Auto`] applies a host-side heuristic.
//!
//! **Bit-identical guarantee**: both algorithms run the *same* per-row
//! substitution (`x_i = (b_i − Σ_{j≠i} a_ij·x_j) / a_ii`, entries in storage
//! order, one division). Level scheduling only reorders *whole rows* whose
//! inputs are final either way, so the level-scheduled solution is
//! bit-identical to serial substitution — pinned by the equivalence suite.

use super::super::util::SendMutPtr;
use crate::csr::CsrMatrix;
use crate::multivec::MultiVec;
use crate::pool::ExecCtx;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which triangle the operand matrix is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsvDirection {
    /// Lower triangular (`col <= row`): forward substitution, rows solved in
    /// ascending dependency order.
    Lower,
    /// Upper triangular (`col >= row`): backward substitution.
    Upper,
}

/// Execution algorithm for the solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsvAlgo {
    /// Plain forward/backward substitution on one thread — optimal for
    /// serial-chain DAGs (bands) and the reference the level-scheduled path
    /// must match bit-for-bit.
    Serial,
    /// Level-scheduled: rows within a level solved pool-parallel, one spin
    /// barrier per level.
    LevelScheduled,
    /// Pick per matrix: level-scheduled when the DAG is wide enough for the
    /// per-level barrier to amortize on this context's thread count.
    Auto,
}

/// Construction-time validation failure of a triangular operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrsvError {
    /// The matrix is not square.
    NotSquare,
    /// A stored entry lies on the wrong side of the diagonal.
    NotTriangular {
        /// Offending row.
        row: usize,
    },
    /// A non-unit solve found a zero (or absent) diagonal in this row.
    ZeroDiagonal {
        /// Offending row.
        row: usize,
    },
}

impl std::fmt::Display for TrsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrsvError::NotSquare => write!(f, "triangular solve needs a square matrix"),
            TrsvError::NotTriangular { row } => {
                write!(f, "row {row} has an entry outside the triangle")
            }
            TrsvError::ZeroDiagonal { row } => {
                write!(f, "row {row} has a zero diagonal (non-unit solve)")
            }
        }
    }
}

impl std::error::Error for TrsvError {}

/// Level sets of a triangular matrix's dependency DAG.
///
/// `level_ptr[ℓ]..level_ptr[ℓ+1]` delimits level `ℓ`'s rows inside the
/// `rows` permutation; every row's off-diagonal dependencies live in
/// strictly earlier levels. Built once per matrix in `O(NNZ)`.
#[derive(Clone, Debug)]
pub struct LevelSets {
    level_ptr: Vec<usize>,
    rows: Vec<u32>,
}

impl LevelSets {
    /// Computes the level sets of `csr` interpreted as the given triangle.
    /// Entries on the wrong side of the diagonal are ignored here
    /// (construction via [`TrsvKernel`] rejects them before this runs).
    pub fn build(csr: &CsrMatrix, direction: TrsvDirection) -> Self {
        let n = csr.nrows();
        let mut level = vec![0u32; n];
        let mut nlevels = 0u32;
        let order: Box<dyn Iterator<Item = usize>> = match direction {
            TrsvDirection::Lower => Box::new(0..n),
            TrsvDirection::Upper => Box::new((0..n).rev()),
        };
        for i in order {
            let mut lv = 0u32;
            for &c in csr.row_cols(i) {
                let c = c as usize;
                let dep = match direction {
                    TrsvDirection::Lower => c < i,
                    TrsvDirection::Upper => c > i,
                };
                if dep {
                    lv = lv.max(level[c] + 1);
                }
            }
            level[i] = lv;
            nlevels = nlevels.max(lv + 1);
        }
        let nlevels = if n == 0 { 0 } else { nlevels as usize };
        // Bucket rows by level (counting sort keeps rows ascending within a
        // level — deterministic, and cache-friendly chunks for the solver).
        let mut level_ptr = vec![0usize; nlevels + 1];
        for &lv in &level {
            level_ptr[lv as usize + 1] += 1;
        }
        for l in 0..nlevels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor = level_ptr.clone();
        let mut rows = vec![0u32; n];
        for (i, &lv) in level.iter().enumerate() {
            let lv = lv as usize;
            rows[cursor[lv]] = i as u32;
            cursor[lv] += 1;
        }
        Self { level_ptr, rows }
    }

    /// Number of levels (the DAG's critical-path length).
    #[inline]
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len().saturating_sub(1)
    }

    /// Rows of level `l`, in ascending row order.
    #[inline]
    pub fn level_rows(&self, l: usize) -> &[u32] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Mean rows per level — the DAG-width summary the selection heuristic
    /// and the sim's dependency-bound model key on.
    pub fn avg_width(&self) -> f64 {
        if self.nlevels() == 0 {
            0.0
        } else {
            self.rows.len() as f64 / self.nlevels() as f64
        }
    }

    /// Row counts per level (the sim profile's input).
    pub fn level_row_counts(&self) -> Vec<usize> {
        (0..self.nlevels())
            .map(|l| self.level_ptr[l + 1] - self.level_ptr[l])
            .collect()
    }
}

/// A reusable sense-reversing spin barrier for the inter-level
/// synchronization. `std::sync::Barrier` parks threads through a mutex +
/// condvar — microseconds per wait — which would eat the level-parallel win
/// on the thousands of short levels real triangles have; spinning costs
/// ~100 ns on the core counts this pool runs.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    n: usize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            n,
        }
    }

    #[inline]
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 1 << 12 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed pool (more workers than cores): yield so
                    // the straggler can run at all.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Average level width below which level scheduling cannot amortize its
/// per-level barrier against the rows it parallelizes (per thread).
const AUTO_WIDTH_PER_THREAD: f64 = 8.0;

/// The sparse triangular solve kernel: `x = T⁻¹ b` for a lower or upper
/// triangular CSR matrix, with serial substitution and a level-scheduled
/// pool-parallel path that is bit-identical to it.
///
/// ```
/// use sparseopt_core::prelude::*;
/// use std::sync::Arc;
///
/// // L = [2 0; 1 4]: forward substitution gives x = [1, 1].
/// let mut coo = CooMatrix::new(2, 2);
/// for (r, c, v) in [(0, 0, 2.0), (1, 0, 1.0), (1, 1, 4.0)] {
///     coo.push(r, c, v);
/// }
/// let l = Arc::new(CsrMatrix::from_coo(&coo));
/// let solver = TrsvKernel::try_new(
///     l, TrsvDirection::Lower, false, TrsvAlgo::Auto, ExecCtx::new(1),
/// ).expect("valid triangle");
/// let mut x = vec![0.0; 2];
/// solver.solve(&[2.0, 5.0], &mut x);
/// assert_eq!(x, vec![1.0, 1.0]);
/// ```
pub struct TrsvKernel {
    matrix: Arc<CsrMatrix>,
    direction: TrsvDirection,
    unit_diag: bool,
    diag: Vec<f64>,
    levels: LevelSets,
    /// Per-level per-thread chunk boundaries into `levels.rows`
    /// (`nlevels · (nthreads + 1)` absolute offsets, nnz-balanced).
    chunks: Vec<usize>,
    algo: TrsvAlgo,
    ctx: Arc<ExecCtx>,
}

impl TrsvKernel {
    /// Builds the solver, validating shape, triangularity, and (for non-unit
    /// solves) a zero-free diagonal. Duplicate diagonal entries are summed,
    /// like [`CsrMatrix::diagonal`]. `TrsvAlgo::Auto` resolves to
    /// level-scheduled when the context has more than one thread and the DAG
    /// is wide enough to amortize the per-level barrier; a one-thread
    /// context always resolves to serial.
    pub fn try_new(
        matrix: Arc<CsrMatrix>,
        direction: TrsvDirection,
        unit_diag: bool,
        algo: TrsvAlgo,
        ctx: Arc<ExecCtx>,
    ) -> Result<Self, TrsvError> {
        if matrix.nrows() != matrix.ncols() {
            return Err(TrsvError::NotSquare);
        }
        let n = matrix.nrows();
        let mut diag = vec![0.0f64; n];
        for (i, di) in diag.iter_mut().enumerate() {
            for &c in matrix.row_cols(i) {
                let c = c as usize;
                let outside = match direction {
                    TrsvDirection::Lower => c > i,
                    TrsvDirection::Upper => c < i,
                };
                if outside {
                    return Err(TrsvError::NotTriangular { row: i });
                }
            }
            for (&c, &v) in matrix.row_cols(i).iter().zip(matrix.row_vals(i)) {
                if c as usize == i {
                    *di += v;
                }
            }
            if !unit_diag && *di == 0.0 {
                return Err(TrsvError::ZeroDiagonal { row: i });
            }
        }

        let levels = LevelSets::build(&matrix, direction);
        let nthreads = ctx.nthreads();
        let algo = match algo {
            TrsvAlgo::Auto => {
                if nthreads > 1 && levels.avg_width() >= AUTO_WIDTH_PER_THREAD * nthreads as f64 {
                    TrsvAlgo::LevelScheduled
                } else {
                    TrsvAlgo::Serial
                }
            }
            TrsvAlgo::LevelScheduled if nthreads == 1 => TrsvAlgo::Serial,
            a => a,
        };

        // Work-balanced contiguous chunks of each level's row list: the rows
        // of a level are independent, so any split is correct; balancing on
        // nonzeros keeps skewed levels from serializing on one thread. Each
        // row weighs `nnz + 1` — the `+1` charges the per-row divide/store
        // and, crucially, keeps every weight positive: with zero weights an
        // empty row could fall past the last boundary and never be solved,
        // leaving its output unwritten.
        let mut chunks = Vec::new();
        if algo == TrsvAlgo::LevelScheduled {
            chunks.reserve(levels.nlevels() * (nthreads + 1));
            for l in 0..levels.nlevels() {
                let rows = levels.level_rows(l);
                let base = levels.level_ptr[l];
                let total: usize = rows.iter().map(|&i| matrix.row_nnz(i as usize) + 1).sum();
                chunks.push(base);
                let mut acc = 0usize;
                let mut idx = 0usize;
                for t in 1..=nthreads {
                    let target = total * t / nthreads;
                    while idx < rows.len() && acc < target {
                        acc += matrix.row_nnz(rows[idx] as usize) + 1;
                        idx += 1;
                    }
                    chunks.push(base + idx);
                }
            }
        }

        Ok(Self {
            matrix,
            direction,
            unit_diag,
            diag,
            levels,
            chunks,
            algo,
            ctx,
        })
    }

    /// Serial-substitution solver over a fresh one-thread context — the
    /// reference implementation and the fallback for narrow DAGs.
    pub fn serial(
        matrix: Arc<CsrMatrix>,
        direction: TrsvDirection,
        unit_diag: bool,
    ) -> Result<Self, TrsvError> {
        Self::try_new(
            matrix,
            direction,
            unit_diag,
            TrsvAlgo::Serial,
            ExecCtx::new(1),
        )
    }

    /// The triangle being solved.
    pub fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }

    /// The resolved execution algorithm (never `Auto`).
    pub fn algo(&self) -> TrsvAlgo {
        self.algo
    }

    /// The dependency DAG's level structure.
    pub fn levels(&self) -> &LevelSets {
        &self.levels
    }

    /// Solve direction.
    pub fn direction(&self) -> TrsvDirection {
        self.direction
    }

    /// Display name, e.g. `sptrsv-lower[level:41]` or `sptrsv-upper[serial]`.
    pub fn name(&self) -> String {
        let dir = match self.direction {
            TrsvDirection::Lower => "lower",
            TrsvDirection::Upper => "upper",
        };
        match self.algo {
            TrsvAlgo::Serial => format!("sptrsv-{dir}[serial]"),
            TrsvAlgo::LevelScheduled => {
                format!("sptrsv-{dir}[level:{}]", self.levels.nlevels())
            }
            TrsvAlgo::Auto => unreachable!("Auto resolves at construction"),
        }
    }

    /// Flop count of one solve with `k` right-hand sides (a multiply-add per
    /// stored entry, like SpMV).
    pub fn flops(&self, k: usize) -> f64 {
        2.0 * self.matrix.nnz() as f64 * k as f64
    }

    /// Per-thread wall times of the most recent solve.
    pub fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    /// Solves `T x = b`.
    ///
    /// # Panics
    /// Panics if `b` or `x` length differs from the matrix dimension.
    pub fn solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.matrix.nrows();
        assert_eq!(b.len(), n, "b length mismatch");
        assert_eq!(x.len(), n, "x length mismatch");
        self.execute(b, 1, x);
    }

    /// Solves `T X = B` column-wise over row-major multi-vectors — the
    /// block-Krylov preconditioners' entry point.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn solve_multi(&self, b: &MultiVec, x: &mut MultiVec) {
        let n = self.matrix.nrows();
        assert_eq!(b.nrows(), n, "B row count mismatch");
        assert_eq!(x.nrows(), n, "X row count mismatch");
        assert_eq!(b.width(), x.width(), "width mismatch");
        self.execute(b.as_slice(), b.width(), x.as_mut_slice());
    }

    /// The shared per-row substitution: entries in storage order, diagonal
    /// entries skipped during accumulation, one division at the end. Both
    /// execution paths call exactly this, which is what makes them
    /// bit-identical.
    ///
    /// # Safety
    /// Requires `x` reads/writes to be race-free: row `i` is written by
    /// exactly one thread and its dependencies are final (same level ⇒
    /// independent; earlier level ⇒ published by the barrier).
    #[inline]
    unsafe fn solve_row(&self, i: usize, b: &[f64], k: usize, x: &SendMutPtr<f64>) {
        let cols = self.matrix.row_cols(i);
        let vals = self.matrix.row_vals(i);
        for j in 0..k {
            let mut s = b[i * k + j];
            for (&c, &v) in cols.iter().zip(vals) {
                let c = c as usize;
                if c != i {
                    s -= v * unsafe { x.read(c * k + j) };
                }
            }
            let xi = if self.unit_diag { s } else { s / self.diag[i] };
            unsafe { x.write(i * k + j, xi) };
        }
    }

    fn execute(&self, b: &[f64], k: usize, x: &mut [f64]) {
        let n = self.matrix.nrows();
        let xp = SendMutPtr::new(x);
        match self.algo {
            TrsvAlgo::Serial => {
                // Run on the pool (thread 0 does the chain) so
                // `last_thread_times` covers the solve like every kernel.
                self.ctx.run(|tid| {
                    if tid != 0 {
                        return;
                    }
                    match self.direction {
                        TrsvDirection::Lower => {
                            for i in 0..n {
                                // SAFETY: single writer, dependencies already
                                // solved by the ascending order.
                                unsafe { self.solve_row(i, b, k, &xp) };
                            }
                        }
                        TrsvDirection::Upper => {
                            for i in (0..n).rev() {
                                // SAFETY: as above, descending order.
                                unsafe { self.solve_row(i, b, k, &xp) };
                            }
                        }
                    }
                });
            }
            TrsvAlgo::LevelScheduled => {
                let nthreads = self.ctx.nthreads();
                let barrier = SpinBarrier::new(nthreads);
                let stride = nthreads + 1;
                self.ctx.run(|tid| {
                    for l in 0..self.levels.nlevels() {
                        let start = self.chunks[l * stride + tid];
                        let end = self.chunks[l * stride + tid + 1];
                        for &i in &self.levels.rows[start..end] {
                            // SAFETY: rows within a level are independent and
                            // dispensed to exactly one thread; cross-level
                            // reads are published by the barrier below.
                            unsafe { self.solve_row(i as usize, b, k, &xp) };
                        }
                        barrier.wait();
                    }
                });
            }
            TrsvAlgo::Auto => unreachable!("Auto resolves at construction"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Dense reference forward/backward substitution.
    fn dense_solve(m: &CsrMatrix, dir: TrsvDirection, unit: bool, b: &[f64]) -> Vec<f64> {
        let n = m.nrows();
        let mut a = vec![vec![0.0f64; n]; n];
        let mut d = vec![0.0f64; n];
        for (i, c, v) in m.iter() {
            if c == i {
                d[i] += v;
            } else {
                a[i][c] += v;
            }
        }
        let mut x = vec![0.0; n];
        let order: Vec<usize> = match dir {
            TrsvDirection::Lower => (0..n).collect(),
            TrsvDirection::Upper => (0..n).rev().collect(),
        };
        for &i in &order {
            let mut s = b[i];
            for j in 0..n {
                s -= a[i][j] * x[j];
            }
            x[i] = if unit { s } else { s / d[i] };
        }
        x
    }

    fn lower_band(n: usize, band: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + (i % 5) as f64);
            for j in i.saturating_sub(band)..i {
                coo.push(i, j, 0.5 + ((i * 7 + j) % 3) as f64 * 0.25);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    /// Random sparse lower triangle with a wide, shallow dependency DAG.
    fn lower_random(n: usize, deg: usize, seed: u64) -> Arc<CsrMatrix> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 3.0 + (i % 7) as f64);
            for _ in 0..deg.min(i) {
                let j = (next() as usize) % i;
                coo.push(i, j, 0.125 + (next() % 8) as f64 * 0.0625);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn level_sets_of_a_band_are_a_chain() {
        let m = lower_band(64, 2);
        let levels = LevelSets::build(&m, TrsvDirection::Lower);
        assert_eq!(levels.nlevels(), 64);
        assert!((levels.avg_width() - 1.0).abs() < 1e-12);
        for l in 0..64 {
            assert_eq!(levels.level_rows(l), &[l as u32]);
        }
    }

    #[test]
    fn level_sets_of_a_diagonal_are_one_level() {
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
        }
        let m = CsrMatrix::from_coo(&coo);
        let levels = LevelSets::build(&m, TrsvDirection::Lower);
        assert_eq!(levels.nlevels(), 1);
        assert_eq!(levels.level_rows(0).len(), 8);
    }

    #[test]
    fn level_sets_respect_dependencies() {
        let m = lower_random(500, 4, 7);
        for dir in [TrsvDirection::Lower, TrsvDirection::Upper] {
            let levels = LevelSets::build(&m, dir);
            let mut level_of = vec![0usize; 500];
            for l in 0..levels.nlevels() {
                for &i in levels.level_rows(l) {
                    level_of[i as usize] = l;
                }
            }
            for (i, c, _) in m.iter() {
                let dep = match dir {
                    TrsvDirection::Lower => c < i,
                    TrsvDirection::Upper => c > i,
                };
                if dep {
                    assert!(level_of[c] < level_of[i], "dep ({i},{c}) not ordered");
                }
            }
        }
    }

    #[test]
    fn serial_matches_dense_reference() {
        let m = lower_random(200, 5, 3);
        let b: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
        let solver = TrsvKernel::serial(m.clone(), TrsvDirection::Lower, false).unwrap();
        let mut x = vec![f64::NAN; 200];
        solver.solve(&b, &mut x);
        let want = dense_solve(&m, TrsvDirection::Lower, false, &b);
        for (i, (a, w)) in x.iter().zip(&want).enumerate() {
            assert!(
                (a - w).abs() < 1e-9 * (1.0 + w.abs()),
                "row {i}: {a} vs {w}"
            );
        }
        // Residual check: L x == b.
        use crate::kernels::SparseLinOp;
        let mut lx = vec![0.0; 200];
        crate::kernels::SerialCsr::new(m).spmv(&x, &mut lx);
        for (v, bi) in lx.iter().zip(&b) {
            assert!((v - bi).abs() < 1e-9 * (1.0 + bi.abs()));
        }
    }

    #[test]
    fn level_scheduled_is_bit_identical_to_serial() {
        for seed in [1u64, 9, 42] {
            let m = lower_random(777, 6, seed);
            let b: Vec<f64> = (0..777)
                .map(|i| ((i * 13 % 101) as f64) * 0.017 - 0.5)
                .collect();
            let serial = TrsvKernel::serial(m.clone(), TrsvDirection::Lower, false).unwrap();
            let mut xs = vec![0.0; 777];
            serial.solve(&b, &mut xs);
            for nthreads in [2, 3, 4, 7] {
                let par = TrsvKernel::try_new(
                    m.clone(),
                    TrsvDirection::Lower,
                    false,
                    TrsvAlgo::LevelScheduled,
                    ExecCtx::new(nthreads),
                )
                .unwrap();
                assert_eq!(par.algo(), TrsvAlgo::LevelScheduled);
                let mut xp = vec![f64::NAN; 777];
                par.solve(&b, &mut xp);
                assert_eq!(xs, xp, "{nthreads} threads must be bit-identical");
            }
        }
    }

    #[test]
    fn upper_solve_matches_dense_reference() {
        // Transpose the random lower triangle into an upper one.
        let lower = lower_random(300, 4, 11);
        let mut coo = CooMatrix::new(300, 300);
        for (i, c, v) in lower.iter() {
            coo.push(c, i, v);
        }
        let upper = Arc::new(CsrMatrix::from_coo(&coo));
        let b: Vec<f64> = (0..300).map(|i| 1.0 + (i as f64 * 0.21).cos()).collect();
        let want = dense_solve(&upper, TrsvDirection::Upper, false, &b);
        for algo in [TrsvAlgo::Serial, TrsvAlgo::LevelScheduled] {
            let solver = TrsvKernel::try_new(
                upper.clone(),
                TrsvDirection::Upper,
                false,
                algo,
                ExecCtx::new(3),
            )
            .unwrap();
            let mut x = vec![f64::NAN; 300];
            solver.solve(&b, &mut x);
            for (i, (a, w)) in x.iter().zip(&want).enumerate() {
                assert!(
                    (a - w).abs() < 1e-9 * (1.0 + w.abs()),
                    "row {i}: {a} vs {w}"
                );
            }
        }
    }

    #[test]
    fn unit_diagonal_skips_division_and_stored_diag() {
        // Strict lower triangle with unit diagonal implied (the ILU(0) L).
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, 2.0);
        coo.push(2, 1, 3.0);
        let m = Arc::new(CsrMatrix::from_coo(&coo));
        let solver = TrsvKernel::serial(m, TrsvDirection::Lower, true).unwrap();
        let mut x = vec![0.0; 3];
        solver.solve(&[1.0, 1.0, 1.0], &mut x);
        // x0 = 1; x1 = 1 - 2·1 = -1; x2 = 1 - 3·(-1) = 4.
        assert_eq!(x, vec![1.0, -1.0, 4.0]);
    }

    #[test]
    fn multi_vector_solve_matches_columns() {
        let m = lower_random(150, 5, 21);
        let k = 4;
        let b = MultiVec::from_fn(150, k, |i, j| (i as f64 * 0.11 + j as f64 * 0.7).sin());
        for nthreads in [1, 4] {
            let solver = TrsvKernel::try_new(
                m.clone(),
                TrsvDirection::Lower,
                false,
                TrsvAlgo::LevelScheduled,
                ExecCtx::new(nthreads),
            )
            .unwrap();
            let mut x = MultiVec::zeros(150, k);
            solver.solve_multi(&b, &mut x);
            let single = TrsvKernel::serial(m.clone(), TrsvDirection::Lower, false).unwrap();
            for j in 0..k {
                let mut col = vec![0.0; 150];
                single.solve(&b.column(j), &mut col);
                for (i, ci) in col.iter().enumerate() {
                    let got = x.row(i)[j];
                    assert!(
                        (got - ci).abs() < 1e-12 * (1.0 + ci.abs()),
                        "({i},{j}): {got} vs {ci}"
                    );
                }
            }
        }
    }

    #[test]
    fn construction_rejects_bad_operands() {
        // Not square.
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        let rect = Arc::new(CsrMatrix::from_coo(&coo));
        assert_eq!(
            TrsvKernel::serial(rect, TrsvDirection::Lower, false).err(),
            Some(TrsvError::NotSquare)
        );
        // Entry above the diagonal in a lower solve.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 5.0);
        coo.push(1, 1, 1.0);
        let m = Arc::new(CsrMatrix::from_coo(&coo));
        assert_eq!(
            TrsvKernel::serial(m.clone(), TrsvDirection::Lower, false).err(),
            Some(TrsvError::NotTriangular { row: 0 })
        );
        // ... which is a perfectly fine upper solve.
        assert!(TrsvKernel::serial(m, TrsvDirection::Upper, false).is_ok());
        // Zero diagonal on a non-unit solve.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let m = Arc::new(CsrMatrix::from_coo(&coo));
        assert_eq!(
            TrsvKernel::serial(m.clone(), TrsvDirection::Lower, false).err(),
            Some(TrsvError::ZeroDiagonal { row: 1 })
        );
        // Unit solves don't need the diagonal.
        assert!(TrsvKernel::serial(m, TrsvDirection::Lower, true).is_ok());
    }

    #[test]
    fn auto_resolves_by_dag_width() {
        // Band ⇒ serial chain even on many threads.
        let band = lower_band(512, 1);
        let k = TrsvKernel::try_new(
            band,
            TrsvDirection::Lower,
            false,
            TrsvAlgo::Auto,
            ExecCtx::new(4),
        )
        .unwrap();
        assert_eq!(k.algo(), TrsvAlgo::Serial);
        // Wide random DAG ⇒ level-scheduled on a multi-thread context...
        let wide = lower_random(4096, 3, 5);
        let k = TrsvKernel::try_new(
            wide.clone(),
            TrsvDirection::Lower,
            false,
            TrsvAlgo::Auto,
            ExecCtx::new(2),
        )
        .unwrap();
        assert_eq!(k.algo(), TrsvAlgo::LevelScheduled);
        assert!(k.name().starts_with("sptrsv-lower[level:"));
        // ... but serial on one thread regardless.
        let k = TrsvKernel::try_new(
            wide,
            TrsvDirection::Lower,
            false,
            TrsvAlgo::LevelScheduled,
            ExecCtx::new(1),
        )
        .unwrap();
        assert_eq!(k.algo(), TrsvAlgo::Serial);
    }

    #[test]
    fn empty_and_single_row_matrices() {
        let empty = Arc::new(CsrMatrix::from_coo(&CooMatrix::new(0, 0)));
        let solver = TrsvKernel::serial(empty, TrsvDirection::Lower, false).unwrap();
        let mut x: Vec<f64> = vec![];
        solver.solve(&[], &mut x);
        assert_eq!(solver.levels().nlevels(), 0);

        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 4.0);
        let one = Arc::new(CsrMatrix::from_coo(&coo));
        for dir in [TrsvDirection::Lower, TrsvDirection::Upper] {
            let solver = TrsvKernel::try_new(
                one.clone(),
                dir,
                false,
                TrsvAlgo::LevelScheduled,
                ExecCtx::new(3),
            )
            .unwrap();
            let mut x = vec![0.0];
            solver.solve(&[8.0], &mut x);
            assert_eq!(x, vec![2.0]);
        }
    }

    #[test]
    fn zero_nnz_rows_are_still_assigned_to_a_chunk() {
        // Regression: chunk balancing used to weight rows by nnz alone, so a
        // level made of empty rows (weight 0) could strand rows past the
        // last thread boundary — their outputs were never written. A strict
        // lower triangle solved with an implied unit diagonal makes every
        // first-level row weightless without the `+1` charge.
        let mut coo = CooMatrix::new(9, 9);
        coo.push(6, 2, -1.0);
        coo.push(7, 3, -2.0);
        let m = Arc::new(CsrMatrix::from_coo(&coo));
        let b: Vec<f64> = (0..9).map(|i| 1.0 + i as f64).collect();
        let serial = TrsvKernel::serial(m.clone(), TrsvDirection::Lower, true).unwrap();
        let mut want = vec![f64::NAN; 9];
        serial.solve(&b, &mut want);
        assert!(want.iter().all(|v| v.is_finite()));
        for nthreads in [2, 4, 8] {
            let par = TrsvKernel::try_new(
                m.clone(),
                TrsvDirection::Lower,
                true,
                TrsvAlgo::LevelScheduled,
                ExecCtx::new(nthreads),
            )
            .unwrap();
            let mut got = vec![f64::NAN; 9];
            par.solve(&b, &mut got);
            assert_eq!(got, want, "nthreads={nthreads}");
        }
    }

    #[test]
    fn duplicate_diagonal_entries_are_summed() {
        // from_raw can carry duplicate diagonal entries; the solve must use
        // their sum, consistent with CsrMatrix::diagonal().
        let m = Arc::new(CsrMatrix::from_raw(
            2,
            2,
            vec![0, 2, 3],
            vec![0, 0, 1],
            vec![1.5, 2.5, 2.0],
        ));
        let solver = TrsvKernel::serial(m, TrsvDirection::Lower, false).unwrap();
        let mut x = vec![0.0; 2];
        solver.solve(&[8.0, 6.0], &mut x);
        assert_eq!(x, vec![2.0, 3.0]);
    }
}
