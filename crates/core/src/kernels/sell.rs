//! Parallel operator over [`SellMatrix`] — the CMP-class vectorization that
//! replaces the per-row gather kernel (Table II "inner loop unrolling +
//! vectorization", done so it actually wins).
//!
//! Why per-row SIMD loses: a CSR row dot product is one serial reduction,
//! so a short row spends its time in kernel dispatch, the horizontal sum,
//! and the scalar remainder — the vector unit never fills. The SELL chunk
//! kernel inverts the layout: `C` rows advance together through a stride-1
//! `vals`/`cols` stream holding `C` independent accumulators, so there is no
//! per-row reduction and no per-row remainder, and the only gather left is
//! the unavoidable `x` access.
//!
//! Per-chunk dispatch is by row-length bucket, resolved **once at operator
//! construction** (no per-row — let alone per-element — feature detection):
//! degenerate chunks write zeros, short chunks run the unrolled scalar
//! microkernel (`C` independent chains already saturate the FMA ports when
//! the stream is short), and long chunks run the AVX2 microkernel when the
//! host has it. Tail columns past a lane's length shrink the active lane
//! count instead of multiplying stored padding (lane lengths are sorted
//! descending inside each chunk), so a hub row costs its own nonzeros, not
//! `C ×` its length.

use super::rowprim::SPMM_COL_TILE;
use super::transpose::TransposePlan;
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::multivec::MultiVec;
use crate::partition::Partition;
use crate::pool::ExecCtx;
use crate::sell::{SellMatrix, SELL_C};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Minimum fully-populated width at which the AVX2 chunk microkernel is
/// dispatched. Below it the unrolled lanes win: `_mm256_i32gather_pd`
/// costs several cycles per element regardless of index locality, so the
/// gather only amortizes once every lane streams a long row — measured on
/// the ci_bench suite, the unrolled kernel beats the gather kernel by
/// 1.6–1.8× on everything with short rows.
const SIMD_MIN_WIDTH: usize = 64;

/// The inner microkernel a chunk dispatches to, resolved once when the
/// operator is built — the per-row `simd_available()` checks of the CSR
/// SIMD path are exactly the overhead this operator exists to remove.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkKernel {
    /// Unrolled scalar lanes (`C` independent accumulator chains).
    Unrolled,
    /// AVX2 lanes for wide chunks, unrolled lanes for narrow ones.
    Avx2,
}

impl ChunkKernel {
    fn label(self) -> &'static str {
        match self {
            ChunkKernel::Unrolled => "unrolled",
            ChunkKernel::Avx2 => "simd",
        }
    }
}

/// Parallel SELL-C-σ operator: chunk-parallel forward sweep, shared
/// scratch-merge transpose, full `{NoTrans, Trans} × {vec, multivec}`
/// surface.
pub struct SellKernel {
    matrix: Arc<SellMatrix>,
    ctx: Arc<ExecCtx>,
    kernel: ChunkKernel,
    /// Chunk ranges balanced by padded slots (the actual stream cost).
    part: Partition,
    tplan: TransposePlan,
}

impl SellKernel {
    /// Builds the operator. `vectorize` requests the AVX2 microkernel; it
    /// resolves to the unrolled one when the host lacks AVX2, so the
    /// reported label always matches what runs.
    pub fn new(matrix: Arc<SellMatrix>, vectorize: bool, ctx: Arc<ExecCtx>) -> Self {
        let kernel = if vectorize && crate::util::simd_available() {
            ChunkKernel::Avx2
        } else {
            ChunkKernel::Unrolled
        };
        let nthreads = ctx.nthreads();
        let part = Partition::by_rowptr(matrix.chunk_ptr(), nthreads);
        let tplan = TransposePlan::by_rowptr(matrix.chunk_ptr(), matrix.ncols(), nthreads);
        Self {
            matrix,
            ctx,
            kernel,
            part,
            tplan,
        }
    }

    /// The CMP-pool configuration: vectorized where the host allows.
    pub fn vectorized(matrix: Arc<SellMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, true, ctx)
    }

    /// The stored matrix.
    pub fn matrix(&self) -> &Arc<SellMatrix> {
        &self.matrix
    }

    /// Single-vector sweep of one chunk: `C` accumulators over the slot
    /// stream, active lanes shrinking through the tail columns, results
    /// scattered to `y[perm[..]]`.
    ///
    /// # Safety
    /// The caller must own the chunk's output rows exclusively (guaranteed
    /// by the disjoint chunk partition and `perm` being a permutation).
    unsafe fn chunk_spmv(&self, c: usize, x: &[f64], yp: &SendMutPtr<f64>) {
        let m = &self.matrix;
        let (cols, vals) = (m.chunk_cols(c), m.chunk_vals(c));
        let lens = m.chunk_lens(c);
        let full = lens[SELL_C - 1] as usize; // min lane length: all-lanes-active prefix
        let width = m.chunk_width(c);

        let mut acc = [0.0f64; SELL_C];
        match self.kernel {
            #[cfg(target_arch = "x86_64")]
            ChunkKernel::Avx2 if full >= SIMD_MIN_WIDTH => {
                // SAFETY: AVX2 verified at construction; slot stream bounds
                // hold by SellMatrix construction.
                unsafe { chunk_lanes_avx2(cols, vals, x, full, &mut acc) };
            }
            _ => {
                for j in 0..full {
                    let o = j * SELL_C;
                    for (r, a) in acc.iter_mut().enumerate() {
                        *a += vals[o + r] * x[cols[o + r] as usize];
                    }
                }
            }
        }
        // Tail columns: lane lengths are descending, so the active lane
        // count only shrinks — padded slots are skipped, not multiplied.
        let mut active = SELL_C;
        for j in full..width {
            while active > 0 && lens[active - 1] as usize <= j {
                active -= 1;
            }
            let o = j * SELL_C;
            for (r, a) in acc.iter_mut().enumerate().take(active) {
                *a += vals[o + r] * x[cols[o + r] as usize];
            }
        }

        let rows_here = SELL_C.min(m.nrows() - (c * SELL_C).min(m.nrows()));
        for (r, &a) in acc.iter().enumerate().take(rows_here) {
            // SAFETY: forwarded from the caller's contract.
            unsafe { yp.write(m.perm()[c * SELL_C + r], a) };
        }
    }

    /// Multi-vector sweep of one chunk: per lane, a register-tiled pass over
    /// the lane's (strided) slots, written to `y[perm[lane] · k ..]`.
    ///
    /// # Safety
    /// Same exclusive-output contract as [`Self::chunk_spmv`].
    unsafe fn chunk_spmm(&self, c: usize, xs: &[f64], k: usize, yp: &SendMutPtr<f64>) {
        let m = &self.matrix;
        let (cols, vals) = (m.chunk_cols(c), m.chunk_vals(c));
        let lens = m.chunk_lens(c);
        let rows_here = SELL_C.min(m.nrows() - (c * SELL_C).min(m.nrows()));
        for (r, &lane) in lens.iter().enumerate().take(rows_here) {
            let len = lane as usize;
            let out = m.perm()[c * SELL_C + r] * k;
            let mut t0 = 0;
            while t0 < k {
                let tl = (k - t0).min(SPMM_COL_TILE);
                let acc = match self.kernel {
                    #[cfg(target_arch = "x86_64")]
                    ChunkKernel::Avx2 if tl == SPMM_COL_TILE => {
                        // No width gate here: unlike the single-vector
                        // microkernel this path loads `x` rows contiguously
                        // (no gather to amortize), so it wins at any lane
                        // length. SAFETY: AVX2 verified at construction; a
                        // full tile keeps every load inside the `n·k` block.
                        unsafe { lane_tile8_avx2(cols, vals, xs, r, len, t0, k) }
                    }
                    _ => {
                        let mut a = [0.0f64; SPMM_COL_TILE];
                        for j in 0..len {
                            let e = j * SELL_C + r;
                            let v = vals[e];
                            let base = cols[e] as usize * k + t0;
                            for (s, &xv) in a[..tl].iter_mut().zip(&xs[base..base + tl]) {
                                *s += v * xv;
                            }
                        }
                        a
                    }
                };
                for (t, &a) in acc[..tl].iter().enumerate() {
                    // SAFETY: forwarded from the caller's contract.
                    unsafe { yp.write(out + t0 + t, a) };
                }
                t0 += tl;
            }
        }
    }

    /// Shared transposed path: chunks scatter their stored (unpadded)
    /// elements into the thread-private scratch; the plan merges.
    fn transpose_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        self.tplan.execute(&self.ctx, k, y, |chunks, scratch| {
            for c in chunks {
                let (cols, vals) = (m.chunk_cols(c), m.chunk_vals(c));
                let lens = m.chunk_lens(c);
                let rows_here = SELL_C.min(m.nrows() - (c * SELL_C).min(m.nrows()));
                for r in 0..rows_here {
                    let xrow = &xs[m.perm()[c * SELL_C + r] * k..][..k];
                    for j in 0..lens[r] as usize {
                        let e = j * SELL_C + r;
                        let dst = &mut scratch[cols[e] as usize * k..][..k];
                        for (d, &xv) in dst.iter_mut().zip(xrow) {
                            *d += vals[e] * xv;
                        }
                    }
                }
            }
        });
    }

    fn forward_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let yp = SendMutPtr::new(y);
        let part = &self.part;
        self.ctx.run(|tid| {
            if tid >= part.len() {
                return;
            }
            for c in part.range(tid) {
                // SAFETY: chunk ranges are disjoint and `perm` is a
                // permutation, so output rows are written exactly once.
                unsafe {
                    if k == 1 {
                        self.chunk_spmv(c, xs, &yp);
                    } else {
                        self.chunk_spmm(c, xs, k, &yp);
                    }
                }
            }
        });
    }
}

impl SparseLinOp for SellKernel {
    fn name(&self) -> String {
        format!("sell-c{}[{}]", SELL_C, self.kernel.label())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        match op {
            Apply::NoTrans => self.forward_flat(x, 1, y),
            Apply::Trans => self.transpose_flat(x, 1, y),
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        let k = x.width();
        match op {
            Apply::NoTrans => self.forward_flat(x.as_slice(), k, y.as_mut_slice()),
            Apply::Trans => self.transpose_flat(x.as_slice(), k, y.as_mut_slice()),
        }
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// AVX2 microkernel for the fully-populated prefix of a chunk: two 4-lane
/// accumulator vectors advance through the slot-major stream; `vals`/`cols`
/// loads are stride-1 and only `x` is gathered.
///
/// # Safety
/// Requires AVX2. `cols`/`vals` must hold at least `full · SELL_C` slots and
/// every column index must be in bounds of `x`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn chunk_lanes_avx2(
    cols: &[u32],
    vals: &[f64],
    x: &[f64],
    full: usize,
    acc: &mut [f64; SELL_C],
) {
    use core::arch::x86_64::*;
    unsafe {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        for j in 0..full {
            let o = j * SELL_C;
            let i0 = _mm_loadu_si128(cols.as_ptr().add(o) as *const __m128i);
            let i1 = _mm_loadu_si128(cols.as_ptr().add(o + 4) as *const __m128i);
            let x0 = _mm256_i32gather_pd::<8>(x.as_ptr(), i0);
            let x1 = _mm256_i32gather_pd::<8>(x.as_ptr(), i1);
            let v0 = _mm256_loadu_pd(vals.as_ptr().add(o));
            let v1 = _mm256_loadu_pd(vals.as_ptr().add(o + 4));
            a0 = _mm256_fmadd_pd(v0, x0, a0);
            a1 = _mm256_fmadd_pd(v1, x1, a1);
        }
        _mm256_storeu_pd(acc.as_mut_ptr(), a0);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
    }
}

/// AVX2 full column tile of one SELL lane's multi-vector pass: the lane's
/// slot stream is strided (`j·C + r`), but each nonzero's `x` row slice is
/// contiguous — two 256-bit loads and two FMAs per element, no gather.
/// Per lane the accumulation order matches the scalar tile; the FMA
/// contraction means agreement to rounding, not bit for bit.
///
/// # Safety
/// Requires AVX2; `t0 + SPMM_COL_TILE <= k`, lane `r < SELL_C` with `len`
/// stored slots, and all column indices in bounds of the `n·k` block
/// (SellMatrix construction invariants).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn lane_tile8_avx2(
    cols: &[u32],
    vals: &[f64],
    xs: &[f64],
    r: usize,
    len: usize,
    t0: usize,
    k: usize,
) -> [f64; SPMM_COL_TILE] {
    use core::arch::x86_64::*;
    unsafe {
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        for j in 0..len {
            let e = j * SELL_C + r;
            let base = cols[e] as usize * k + t0;
            let vv = _mm256_set1_pd(vals[e]);
            let x0 = _mm256_loadu_pd(xs.as_ptr().add(base));
            let x1 = _mm256_loadu_pd(xs.as_ptr().add(base + 4));
            a0 = _mm256_fmadd_pd(vv, x0, a0);
            a1 = _mm256_fmadd_pd(vv, x1, a1);
        }
        let mut out = [0.0f64; SPMM_COL_TILE];
        _mm256_storeu_pd(out.as_mut_ptr(), a0);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), a1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::kernels::SerialCsr;

    fn random(nrows: usize, ncols: usize, avg: usize, seed: u64) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(nrows, ncols);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..nrows {
            for _ in 0..(next() % (2 * avg as u64 + 1)) {
                let c = (next() % ncols as u64) as usize;
                coo.push(i, c, (next() % 19) as f64 - 9.0);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    fn assert_matches(csr: &Arc<CsrMatrix>, nthreads: usize, vectorize: bool) {
        let (n, m) = (csr.nrows(), csr.ncols());
        let x: Vec<f64> = (0..m).map(|i| 0.2 + (i as f64 * 0.37).sin()).collect();
        let mut want = vec![0.0; n];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        let sell = Arc::new(SellMatrix::from_csr(csr));
        let op = SellKernel::new(sell, vectorize, ExecCtx::new(nthreads));
        let mut y = vec![f64::NAN; n];
        op.spmv(&x, &mut y);
        for (i, (a, b)) in y.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "row {i}, t={nthreads}, {}: {a} vs {b}",
                op.name()
            );
        }
    }

    #[test]
    fn matches_serial_across_threads_and_kernels() {
        for seed in [1u64, 7, 42] {
            let csr = random(301, 277, 6, seed);
            for nthreads in [1, 2, 5] {
                assert_matches(&csr, nthreads, false);
                assert_matches(&csr, nthreads, true);
            }
        }
    }

    #[test]
    fn hub_row_and_empty_rows() {
        let mut coo = CooMatrix::new(65, 200);
        for j in 0..200 {
            coo.push(30, j, (j % 7) as f64 - 3.0);
        }
        for i in (0..65).step_by(3) {
            coo.push(i, (i * 5) % 200, i as f64 * 0.5 + 1.0);
        }
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        assert_matches(&csr, 3, true);
    }

    #[test]
    fn transpose_matches_serial_reference() {
        let csr = random(160, 90, 4, 9);
        let x: Vec<f64> = (0..160).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut want = vec![0.0; 90];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);
        let sell = Arc::new(SellMatrix::from_csr(&csr));
        let op = SellKernel::vectorized(sell, ExecCtx::new(3));
        let mut y = vec![f64::NAN; 90];
        op.apply(Apply::Trans, &x, &mut y);
        for (i, (a, b)) in y.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "col {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn multi_vector_matches_column_spmvs() {
        let csr = random(120, 120, 5, 3);
        let k = 5usize;
        let x = MultiVec::from_fn(120, k, |i, j| (i as f64 * 0.07 + j as f64 * 0.31).sin());
        let sell = Arc::new(SellMatrix::from_csr(&csr));
        let op = SellKernel::vectorized(sell, ExecCtx::new(4));
        let mut y = MultiVec::zeros(120, k);
        op.spmm(&x, &mut y);
        let serial = SerialCsr::new(csr);
        for j in 0..k {
            let mut col = vec![0.0; 120];
            serial.spmv(&x.column(j), &mut col);
            for (i, want) in col.iter().enumerate() {
                let got = y.row(i)[j];
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn name_capabilities_and_counters() {
        let csr = random(40, 40, 3, 5);
        let sell = Arc::new(SellMatrix::from_csr(&csr));
        let nnz = sell.nnz();
        let op = SellKernel::new(sell, false, ExecCtx::new(2));
        assert_eq!(op.name(), "sell-c8[unrolled]");
        let caps = op.capabilities();
        assert!(caps.transpose && caps.multi_vec);
        assert_eq!(op.nnz(), nnz);
        assert_eq!(op.shape(), (40, 40));
        let mut y = vec![0.0; 40];
        op.spmv(&[1.0; 40], &mut y);
        assert_eq!(op.last_thread_times().len(), 2);
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = Arc::new(CsrMatrix::from_coo(&CooMatrix::new(5, 5)));
        let sell = Arc::new(SellMatrix::from_csr(&csr));
        let op = SellKernel::vectorized(sell, ExecCtx::new(2));
        let mut y = vec![f64::NAN; 5];
        op.spmv(&[1.0; 5], &mut y);
        assert_eq!(y, vec![0.0; 5]);
    }
}
