//! Operator over delta-compressed CSR (the MB optimization of Table II:
//! "column index compression through delta encoding + vectorization").
//!
//! Vectorization composes with compression by decoding each row's column
//! indices into a reusable thread-local buffer **once** and running the
//! SIMD/unrolled dot product directly over the decoded slice — decode and
//! multiply are two streaming passes, with no per-block copy in between
//! serializing the SIMD path on the decoder. The multi-vector and
//! transposed paths reuse the same decoded buffer for the shared row pass /
//! scatter machinery.

use super::rowprim::{row_dot, row_spmm_write, InnerLoop};
use super::transpose::{scatter_row, TransposePlan};
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::delta::DeltaCsrMatrix;
use crate::multivec::MultiVec;
use crate::pool::ExecCtx;
use crate::schedule::{ResolvedSchedule, Schedule};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

std::thread_local! {
    /// Reusable per-thread column decode buffer — the decoded paths must
    /// not allocate per row.
    static DECODE_BUF: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Parallel operator over [`DeltaCsrMatrix`].
pub struct DeltaKernel {
    matrix: Arc<DeltaCsrMatrix>,
    ctx: Arc<ExecCtx>,
    resolved: ResolvedSchedule,
    inner: InnerLoop,
    prefetch: bool,
    tplan: TransposePlan,
}

impl DeltaKernel {
    /// Builds the operator. `inner` selects the post-decode dot product;
    /// `Scalar` multiplies while decoding (no buffer).
    pub fn new(
        matrix: Arc<DeltaCsrMatrix>,
        inner: InnerLoop,
        prefetch: bool,
        schedule: Schedule,
        ctx: Arc<ExecCtx>,
    ) -> Self {
        // Schedules needing row-length information resolve against the
        // rowptr, which the delta format preserves verbatim.
        let resolved =
            schedule.resolve_with_rowptr(matrix.nrows(), matrix.rowptr(), ctx.nthreads());
        let tplan = TransposePlan::by_rowptr(matrix.rowptr(), matrix.ncols(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            resolved,
            inner: inner.resolve_for_host(),
            prefetch,
            tplan,
        }
    }

    /// Baseline configuration: scalar loop, nnz-balanced static schedule.
    pub fn baseline(matrix: Arc<DeltaCsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, InnerLoop::Scalar, false, Schedule::StaticNnz, ctx)
    }

    /// The paper's MB configuration: compression + vectorization, baseline
    /// schedule.
    pub fn compressed_vectorized(matrix: Arc<DeltaCsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, InnerLoop::Simd, false, Schedule::StaticNnz, ctx)
    }

    /// Row dot product with decode + vectorized accumulate. Decodes into a
    /// reusable thread-local buffer (no per-row allocation) and runs the
    /// inner loop over the decoded slice directly — the historical
    /// block-copy into a second stack buffer serialized the SIMD path on a
    /// `memcpy` per 64 elements and was the `delta-simd` pathology.
    fn row_dot_decoded(&self, i: usize, x: &[f64]) -> f64 {
        let m = &self.matrix;
        DECODE_BUF.with(|buf| {
            let mut decoded = buf.borrow_mut();
            decoded.clear();
            m.decode_row_into(i, &mut decoded);
            let vals = &m.values()[m.rowptr()[i]..m.rowptr()[i + 1]];
            row_dot(self.inner, self.prefetch, &decoded, vals, x)
        })
    }
}

impl SparseLinOp for DeltaKernel {
    fn name(&self) -> String {
        let w = match self.matrix.width() {
            crate::delta::DeltaWidth::U8 => "d8",
            crate::delta::DeltaWidth::U16 => "d16",
        };
        let pf = if self.prefetch { "+prefetch" } else { "" };
        format!("csr-delta-{w}[{}{}]", self.inner.label(), pf)
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        let m = &self.matrix;
        check_apply_operands(self.shape(), op, x, y);
        match op {
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y);
                self.resolved.execute(&self.ctx, m.nrows(), |rows| {
                    for i in rows {
                        let v = if matches!(self.inner, InnerLoop::Scalar) {
                            m.row_dot(i, x)
                        } else {
                            self.row_dot_decoded(i, x)
                        };
                        // SAFETY: schedule guarantees row-disjoint writes.
                        unsafe { yp.write(i, v) };
                    }
                });
            }
            Apply::Trans => self.transpose_flat(x, 1, y),
        }
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_apply_multi_operands(self.shape(), op, x, y);
        let k = x.width();
        let xs = x.as_slice();
        match op {
            Apply::NoTrans => {
                let yp = SendMutPtr::new(y.as_mut_slice());
                self.resolved.execute(&self.ctx, m.nrows(), |rows| {
                    DECODE_BUF.with(|buf| {
                        let mut decoded = buf.borrow_mut();
                        for i in rows.clone() {
                            decoded.clear();
                            m.decode_row_into(i, &mut decoded);
                            let vals = &m.values()[m.rowptr()[i]..m.rowptr()[i + 1]];
                            // SAFETY: row-disjoint writes per the schedule.
                            unsafe { row_spmm_write(i, &decoded, vals, xs, k, &yp) };
                        }
                    });
                });
            }
            Apply::Trans => self.transpose_flat(xs, k, y.as_mut_slice()),
        }
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

impl DeltaKernel {
    /// Shared transposed path: decode each row, scatter into the
    /// thread-private scratch, merge (see [`TransposePlan`]).
    fn transpose_flat(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        self.tplan.execute(&self.ctx, k, y, |rows, scratch| {
            DECODE_BUF.with(|buf| {
                let mut decoded = buf.borrow_mut();
                for i in rows {
                    decoded.clear();
                    m.decode_row_into(i, &mut decoded);
                    let vals = &m.values()[m.rowptr()[i]..m.rowptr()[i + 1]];
                    scatter_row(&decoded, vals, &xs[i * k..(i + 1) * k], k, scratch);
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::kernels::SerialCsr;

    fn banded(n: usize, band: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                coo.push(i, j, ((i * 31 + j * 7) % 17) as f64 - 8.0);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn matches_serial_all_inner_loops() {
        let csr = banded(300, 5);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut reference = vec![0.0; 300];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let delta = Arc::new(DeltaCsrMatrix::from_csr(&csr));
        let ctx = ExecCtx::new(4);
        for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
            for pf in [false, true] {
                let k =
                    DeltaKernel::new(delta.clone(), inner, pf, Schedule::StaticNnz, ctx.clone());
                let mut y = vec![f64::NAN; 300];
                k.spmv(&x, &mut y);
                for (i, (a, b)) in y.iter().zip(&reference).enumerate() {
                    assert!((a - b).abs() < 1e-10, "row {i} for {}", k.name());
                }
            }
        }
    }

    #[test]
    fn transpose_matches_serial_reference() {
        let csr = banded(200, 3);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut want = vec![0.0; 200];
        SerialCsr::new(csr.clone()).apply(Apply::Trans, &x, &mut want);

        let delta = Arc::new(DeltaCsrMatrix::from_csr(&csr));
        let k = DeltaKernel::baseline(delta, ExecCtx::new(3));
        let mut y = vec![f64::NAN; 200];
        k.apply(Apply::Trans, &x, &mut y);
        for (i, (a, b)) in y.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + b.abs()),
                "row {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn long_rows_cross_decode_blocks() {
        // One row with 1000 nonzeros exercises multi-block decoding.
        let mut coo = CooMatrix::new(4, 4000);
        for j in 0..1000 {
            coo.push(1, j * 4, (j % 13) as f64 + 0.5);
        }
        coo.push(0, 0, 2.0);
        coo.push(3, 3999, 1.0);
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let x: Vec<f64> = (0..4000).map(|i| ((i % 7) as f64) * 0.25).collect();
        let mut reference = vec![0.0; 4];
        SerialCsr::new(csr.clone()).spmv(&x, &mut reference);

        let delta = Arc::new(DeltaCsrMatrix::from_csr(&csr));
        let k = DeltaKernel::compressed_vectorized(delta, ExecCtx::new(2));
        let mut y = vec![0.0; 4];
        k.spmv(&x, &mut y);
        for (a, b) in y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn name_reflects_width() {
        let csr = banded(32, 1);
        let delta = Arc::new(DeltaCsrMatrix::from_csr(&csr));
        let k = DeltaKernel::new(
            delta,
            InnerLoop::Scalar,
            false,
            Schedule::StaticNnz,
            ExecCtx::new(1),
        );
        assert!(k.name().starts_with("csr-delta-d8"));
    }
}
