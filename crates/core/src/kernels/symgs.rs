//! Symmetric Gauss-Seidel (SymGS) over symmetric sparse skyline storage —
//! the third member of the sparse kernel family (SpMV, SpTRSV, SymGS) and
//! the smoother/preconditioner `M = (L + D) D⁻¹ (D + Lᵀ)` used by the
//! solver stack.
//!
//! The kernel reuses the [`SssCsr`] layout from the symmetric SpMV work:
//! only the strict lower triangle `L` plus the dense diagonal `D` are
//! stored, and the upper triangle is *implied* as `Lᵀ`. That halves the
//! matrix traffic exactly like [`super::SymCsr`] does for SpMV, but it
//! changes the sweep structure:
//!
//! - the **forward** solve `(L + D) z = r` is a plain *gather* over stored
//!   lower rows in ascending order;
//! - the **backward** solve `(D + Lᵀ) z = r` never materializes `Lᵀ` —
//!   walking rows in *descending* order, once `z_i` is final the stored row
//!   `L_i` tells us every `(Lᵀ)_{c,i} = l_{ic}` contribution, so the solve
//!   *scatters* `-l_{ic}·z_i` into the still-pending entries `c < i`.
//!
//! Both sweeps are dependency chains over the full row order (a SymGS sweep
//! is inherently more serial than SpTRSV: forward and backward halves each
//! traverse every row), so the kernel is serial by design — the win over
//! Jacobi comes from convergence rate, not kernel parallelism, which is
//! exactly the trade the preconditioned-solver scenario class weighs.

use crate::sss::SssCsr;
use std::sync::Arc;

/// Construction-time failure of a SymGS operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymGsError {
    /// A Gauss-Seidel sweep divides by every diagonal entry; row `row` has
    /// a zero one.
    ZeroDiagonal {
        /// Offending row.
        row: usize,
    },
}

impl std::fmt::Display for SymGsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymGsError::ZeroDiagonal { row } => {
                write!(
                    f,
                    "row {row} has a zero diagonal (Gauss-Seidel divides by it)"
                )
            }
        }
    }
}

impl std::error::Error for SymGsError {}

/// Symmetric Gauss-Seidel sweeps over a symmetric matrix in SSS storage.
///
/// One [`sweep`](SymGsKernel::sweep) performs the textbook symmetric
/// Gauss-Seidel update (forward sweep then backward sweep); the triangular
/// half-solves are exposed separately because the preconditioner
/// `M⁻¹ = (D + Lᵀ)⁻¹ D (L + D)⁻¹` applies them with a diagonal scaling in
/// between.
pub struct SymGsKernel {
    matrix: Arc<SssCsr>,
}

impl SymGsKernel {
    /// Builds the kernel, rejecting matrices with a zero diagonal entry.
    pub fn try_new(matrix: Arc<SssCsr>) -> Result<Self, SymGsError> {
        if let Some(row) = matrix.diag().iter().position(|&d| d == 0.0) {
            return Err(SymGsError::ZeroDiagonal { row });
        }
        Ok(Self { matrix })
    }

    /// The underlying symmetric matrix.
    pub fn matrix(&self) -> &Arc<SssCsr> {
        &self.matrix
    }

    /// Display name for bench/report rows.
    pub fn name(&self) -> &'static str {
        "symgs-sss"
    }

    /// Flop count of one full symmetric sweep: each half-sweep touches every
    /// logical nonzero once (multiply-add) plus a division per row.
    pub fn flops(&self) -> f64 {
        2.0 * (2.0 * self.matrix.logical_nnz() as f64)
    }

    /// Forward solve `(L + D) z = r` — ascending gather over stored rows.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn forward_solve(&self, r: &[f64], z: &mut [f64]) {
        let n = self.matrix.n();
        assert_eq!(r.len(), n, "r length mismatch");
        assert_eq!(z.len(), n, "z length mismatch");
        let d = self.matrix.diag();
        for i in 0..n {
            let mut s = r[i];
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                s -= v * z[c as usize];
            }
            z[i] = s / d[i];
        }
    }

    /// Backward solve `(D + Lᵀ) z = r`, in place: on entry `z` holds `r`, on
    /// exit the solution. Descending scatter — row `i`'s stored lower entries
    /// are exactly column `i` of the implied upper triangle.
    pub fn backward_solve_in_place(&self, z: &mut [f64]) {
        let n = self.matrix.n();
        assert_eq!(z.len(), n, "z length mismatch");
        let d = self.matrix.diag();
        for i in (0..n).rev() {
            let zi = z[i] / d[i];
            z[i] = zi;
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                z[c as usize] -= v * zi;
            }
        }
    }

    /// One full symmetric Gauss-Seidel sweep on `A x = b`, updating `x` in
    /// place: a forward sweep `(L + D) x_new = b − Lᵀ x_old` followed by a
    /// backward sweep `(D + Lᵀ) x_newer = b − L x_new`, each evaluated
    /// against the freshest values exactly like the textbook row-by-row
    /// update. Starting from `x = 0`, one sweep computes
    /// `M⁻¹ b` for `M = (L + D) D⁻¹ (D + Lᵀ)`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn sweep(&self, b: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        let n = self.matrix.n();
        assert_eq!(b.len(), n, "b length mismatch");
        assert_eq!(x.len(), n, "x length mismatch");
        let d = self.matrix.diag();

        // Forward half: rows ascending, x_i ← (b_i − Σ_{j<i} l_ij x_j(new)
        // − Σ_{j>i} l_ji x_j(old)) / d_i. The upper-triangle (old-x)
        // contributions are pre-scattered into `s` so the ascending pass only
        // gathers stored lower rows.
        scratch.clear();
        scratch.extend_from_slice(b);
        // The whole scatter runs before any x update, so every implied-upper
        // contribution l_ic · x_i lands at the *old* x, as the textbook
        // update requires.
        for (i, &xi) in x.iter().enumerate() {
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                scratch[c as usize] -= v * xi;
            }
        }
        for i in 0..n {
            let mut s = scratch[i];
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                s -= v * x[c as usize];
            }
            x[i] = s / d[i];
        }

        // Backward half: rows descending, using the post-forward x. The
        // lower-triangle (now-old… actually still-current) gather t = b − L x
        // is taken first, then the descending scatter finalizes each row.
        scratch.clear();
        scratch.extend_from_slice(b);
        for (i, si) in scratch.iter_mut().enumerate() {
            let mut s = *si;
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                s -= v * x[c as usize];
            }
            *si = s;
        }
        for i in (0..n).rev() {
            let xi = scratch[i] / d[i];
            x[i] = xi;
            for (&c, &v) in self.matrix.row_cols(i).iter().zip(self.matrix.row_vals(i)) {
                scratch[c as usize] -= v * xi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;

    /// Dense symmetric test matrix (SPD band) and its CSR/SSS forms.
    #[allow(clippy::needless_range_loop)] // symmetric 2D writes read clearer indexed
    fn spd_band(n: usize, band: usize) -> (Vec<Vec<f64>>, Arc<SssCsr>) {
        let mut dense = vec![vec![0.0f64; n]; n];
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in i.saturating_sub(band)..i {
                let v = -(1.0 + ((i * 3 + j) % 4) as f64 * 0.25);
                dense[i][j] = v;
                dense[j][i] = v;
                coo.push(i, j, v);
                coo.push(j, i, v);
                row_sum += v.abs();
            }
            let d = 2.0 * (row_sum + 1.0);
            dense[i][i] = d;
            coo.push(i, i, d);
        }
        let csr = CsrMatrix::from_coo(&coo);
        // Diagonal dominance is per-row here, not global, so re-derive dense
        // diag to stay exactly consistent with what SSS stores.
        let sss = Arc::new(SssCsr::try_from_csr(&csr).expect("symmetric"));
        (dense, sss)
    }

    /// Reference dense symmetric Gauss-Seidel sweep (forward then backward).
    fn dense_symgs_sweep(a: &[Vec<f64>], b: &[f64], x: &mut [f64]) {
        let n = b.len();
        for i in 0..n {
            let mut s = b[i];
            for j in 0..n {
                if j != i {
                    s -= a[i][j] * x[j];
                }
            }
            x[i] = s / a[i][i];
        }
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in 0..n {
                if j != i {
                    s -= a[i][j] * x[j];
                }
            }
            x[i] = s / a[i][i];
        }
    }

    #[test]
    fn sweep_matches_dense_reference() {
        let (dense, sss) = spd_band(60, 3);
        let kernel = SymGsKernel::try_new(sss).unwrap();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.31).sin() + 0.2).collect();
        let mut x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut want = x.clone();
        let mut scratch = Vec::new();
        for _ in 0..3 {
            kernel.sweep(&b, &mut x, &mut scratch);
            dense_symgs_sweep(&dense, &b, &mut want);
        }
        for (i, (a, w)) in x.iter().zip(&want).enumerate() {
            assert!(
                (a - w).abs() < 1e-10 * (1.0 + w.abs()),
                "row {i}: {a} vs {w}"
            );
        }
    }

    #[test]
    fn forward_backward_solves_match_dense_triangles() {
        let (dense, sss) = spd_band(40, 2);
        let kernel = SymGsKernel::try_new(sss).unwrap();
        let r: Vec<f64> = (0..40).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();

        // (L + D) z = r, forward substitution on the dense lower triangle.
        let mut z = vec![0.0; 40];
        kernel.forward_solve(&r, &mut z);
        let mut want = vec![0.0; 40];
        for i in 0..40 {
            let mut s = r[i];
            for j in 0..i {
                s -= dense[i][j] * want[j];
            }
            want[i] = s / dense[i][i];
        }
        for (a, w) in z.iter().zip(&want) {
            assert!((a - w).abs() < 1e-11 * (1.0 + w.abs()));
        }

        // (D + Lᵀ) z = r, backward substitution on the dense upper triangle.
        let mut z = r.clone();
        kernel.backward_solve_in_place(&mut z);
        let mut want = vec![0.0; 40];
        for i in (0..40).rev() {
            let mut s = r[i];
            for j in (i + 1)..40 {
                s -= dense[i][j] * want[j];
            }
            want[i] = s / dense[i][i];
        }
        for (a, w) in z.iter().zip(&want) {
            assert!((a - w).abs() < 1e-11 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn one_sweep_from_zero_applies_the_preconditioner() {
        // M = (L+D) D⁻¹ (D+Lᵀ): one sweep from x = 0 must equal
        // backward⁻¹(D · forward⁻¹(b)).
        let (_, sss) = spd_band(30, 2);
        let kernel = SymGsKernel::try_new(sss.clone()).unwrap();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 - 14.5) * 0.1).collect();

        let mut x = vec![0.0; 30];
        let mut scratch = Vec::new();
        kernel.sweep(&b, &mut x, &mut scratch);

        let mut z = vec![0.0; 30];
        kernel.forward_solve(&b, &mut z);
        for (zi, di) in z.iter_mut().zip(sss.diag()) {
            *zi *= di;
        }
        kernel.backward_solve_in_place(&mut z);

        for (i, (a, w)) in x.iter().zip(&z).enumerate() {
            assert!(
                (a - w).abs() < 1e-12 * (1.0 + w.abs()),
                "row {i}: {a} vs {w}"
            );
        }
    }

    #[test]
    fn sweeps_converge_on_spd_system() {
        let (dense, sss) = spd_band(50, 2);
        let kernel = SymGsKernel::try_new(sss.clone()).unwrap();
        let want: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) * 0.3 - 1.0).collect();
        let mut b = vec![0.0; 50];
        for i in 0..50 {
            for j in 0..50 {
                b[i] += dense[i][j] * want[j];
            }
        }
        let mut x = vec![0.0; 50];
        let mut scratch = Vec::new();
        for _ in 0..200 {
            kernel.sweep(&b, &mut x, &mut scratch);
        }
        for (i, (a, w)) in x.iter().zip(&want).enumerate() {
            assert!(
                (a - w).abs() < 1e-8 * (1.0 + w.abs()),
                "row {i}: {a} vs {w}"
            );
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        // Row 1 has no diagonal entry ⇒ SSS stores d[1] = 0.
        let csr = CsrMatrix::from_coo(&coo);
        let sss = Arc::new(SssCsr::try_from_csr(&csr).expect("symmetric"));
        assert_eq!(
            SymGsKernel::try_new(sss).err(),
            Some(SymGsError::ZeroDiagonal { row: 1 })
        );
    }
}
