//! SpMM kernels: `Y = A·X` for a dense block of `k` right-hand sides.
//!
//! The multiple-RHS workload is the natural extension of the paper's
//! amortization argument (Table V): block-Krylov methods call the sparse
//! operator on `k` vectors at once, so every fetched nonzero is reused `k`
//! times. Column blocking turns the per-nonzero arithmetic intensity from
//! `2 flops / (12..16 bytes)` into `2k flops / (12..16 bytes)`, shifting
//! MB-bound matrices toward the compute-bound regime the classifier models
//! (see `sparseopt-sim`'s analytic SpMM model).
//!
//! All kernels share the same structure: the row loop is partitioned across
//! the thread pool exactly like the SpMV kernels, and each row runs a
//! register-blocked inner loop over a column tile of `X` ([`SPMM_COL_TILE`]
//! accumulators held in registers), so `X`'s rows stream with unit stride.

use super::{check_spmm_operands, SpmmKernel};
use crate::bcsr::BcsrMatrix;
use crate::csr::CsrMatrix;
use crate::decomposed::DecomposedCsrMatrix;
use crate::delta::DeltaCsrMatrix;
use crate::ell::{EllMatrix, PAD};
use crate::multivec::MultiVec;
use crate::partition::Partition;
use crate::pool::ExecCtx;
use crate::schedule::{ResolvedSchedule, Schedule};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Width of the register-blocked column tile: the number of accumulators a
/// row holds live while streaming its nonzeros (8 doubles = one cache line
/// of `X`, and few enough registers that the compiler keeps them enregistered
/// alongside the value/index streams).
pub const SPMM_COL_TILE: usize = 8;

std::thread_local! {
    /// Reusable per-thread column decode buffer for the delta kernel.
    static SPMM_DECODE_BUF: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One row of the output: `Σ_j vals[j] · X[cols[j], ·]`, computed tile by
/// tile with [`SPMM_COL_TILE`] register accumulators, written through `yp`.
///
/// # Safety
/// `yp` must point at a `nrows × k` row-major buffer and row `i` must be
/// owned exclusively by the calling thread.
#[inline]
unsafe fn row_spmm_write(
    i: usize,
    cols: &[u32],
    vals: &[f64],
    xs: &[f64],
    k: usize,
    yp: &SendMutPtr<f64>,
) {
    let mut t0 = 0;
    while t0 < k {
        let tl = (k - t0).min(SPMM_COL_TILE);
        let mut acc = [0.0f64; SPMM_COL_TILE];
        for (&c, &v) in cols.iter().zip(vals) {
            let base = c as usize * k + t0;
            let xr = &xs[base..base + tl];
            for (a, &xv) in acc[..tl].iter_mut().zip(xr) {
                *a += v * xv;
            }
        }
        for (t, &a) in acc[..tl].iter().enumerate() {
            // SAFETY: forwarded from the caller's contract.
            unsafe { yp.write(i * k + t0 + t, a) };
        }
        t0 += tl;
    }
}

/// Pool-parallel SpMM over plain CSR.
pub struct CsrSpmm {
    matrix: Arc<CsrMatrix>,
    ctx: Arc<ExecCtx>,
    schedule: Schedule,
    resolved: ResolvedSchedule,
}

impl CsrSpmm {
    /// Builds the kernel, resolving the schedule against the matrix.
    pub fn new(matrix: Arc<CsrMatrix>, schedule: Schedule, ctx: Arc<ExecCtx>) -> Self {
        let resolved = schedule.resolve(&matrix, ctx.nthreads());
        Self {
            matrix,
            ctx,
            schedule,
            resolved,
        }
    }

    /// Baseline: static nnz-balanced row partition (the SpMV baseline's
    /// distribution).
    pub fn baseline(matrix: Arc<CsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, Schedule::StaticNnz, ctx)
    }
}

impl SpmmKernel for CsrSpmm {
    fn name(&self) -> String {
        format!("csr-spmm[{}]", self.schedule.label())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_spmm_operands(m.nrows(), m.ncols(), x, y);
        let k = x.width();
        let xs = x.as_slice();
        let yp = SendMutPtr::new(y.as_mut_slice());
        self.resolved.execute(&self.ctx, m.nrows(), |rows| {
            for i in rows {
                // SAFETY: the schedule dispenses each row exactly once, so
                // writes to y's row i are disjoint across threads.
                unsafe { row_spmm_write(i, m.row_cols(i), m.row_vals(i), xs, k, &yp) };
            }
        });
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Pool-parallel SpMM over delta-compressed CSR (column indices decoded into
/// a per-thread buffer once per row, then reused by every column tile).
pub struct DeltaSpmm {
    matrix: Arc<DeltaCsrMatrix>,
    ctx: Arc<ExecCtx>,
    schedule: Schedule,
    resolved: ResolvedSchedule,
}

impl DeltaSpmm {
    /// Builds the kernel; nnz-balanced schedules resolve against the
    /// preserved rowptr.
    pub fn new(matrix: Arc<DeltaCsrMatrix>, schedule: Schedule, ctx: Arc<ExecCtx>) -> Self {
        let resolved =
            schedule.resolve_with_rowptr(matrix.nrows(), matrix.rowptr(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            schedule,
            resolved,
        }
    }

    /// Baseline: static nnz-balanced partition.
    pub fn baseline(matrix: Arc<DeltaCsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, Schedule::StaticNnz, ctx)
    }
}

impl SpmmKernel for DeltaSpmm {
    fn name(&self) -> String {
        let w = match self.matrix.width() {
            crate::delta::DeltaWidth::U8 => "d8",
            crate::delta::DeltaWidth::U16 => "d16",
        };
        format!("csr-delta-{w}-spmm[{}]", self.schedule.label())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_spmm_operands(m.nrows(), m.ncols(), x, y);
        let k = x.width();
        let xs = x.as_slice();
        let yp = SendMutPtr::new(y.as_mut_slice());
        self.resolved.execute(&self.ctx, m.nrows(), |rows| {
            SPMM_DECODE_BUF.with(|buf| {
                let mut decoded = buf.borrow_mut();
                for i in rows.clone() {
                    decoded.clear();
                    m.decode_row_into(i, &mut decoded);
                    let vals = &m.values()[m.rowptr()[i]..m.rowptr()[i + 1]];
                    // SAFETY: row-disjoint writes per the schedule.
                    unsafe { row_spmm_write(i, &decoded, vals, xs, k, &yp) };
                }
            });
        });
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Pool-parallel SpMM over BCSR: each stored `r × c` block multiplies `c`
/// rows of `X` into `r` rows of a block-row-local accumulator, so the dense
/// payload streams once per column tile with fixed trip counts.
pub struct BcsrSpmm {
    matrix: Arc<BcsrMatrix>,
    ctx: Arc<ExecCtx>,
    /// Block rows per thread, balanced by stored-block count.
    partition: Partition,
}

impl BcsrSpmm {
    /// Builds the kernel with a block-count-balanced static partition of the
    /// block rows.
    pub fn new(matrix: Arc<BcsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        let partition = Partition::by_rowptr(matrix.browptr(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            partition,
        }
    }
}

impl SpmmKernel for BcsrSpmm {
    fn name(&self) -> String {
        let (r, c) = self.matrix.block_shape();
        format!("bcsr-{r}x{c}-spmm[static-blocks]")
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_spmm_operands(m.nrows(), m.ncols(), x, y);
        let k = x.width();
        let (r, c) = m.block_shape();
        let nrows = m.nrows();
        let ncols = m.ncols();
        let xs = x.as_slice();
        let yp = SendMutPtr::new(y.as_mut_slice());
        let partition = self.partition.clone();
        self.ctx.run(|tid| {
            if tid >= partition.len() {
                return;
            }
            // Block-row-local accumulator: r rows × k columns, reused.
            let mut acc = vec![0.0f64; r * k];
            for br in partition.range(tid) {
                let row_lo = br * r;
                let rows_here = (nrows - row_lo).min(r);
                acc[..rows_here * k].fill(0.0);
                for bk in m.browptr()[br]..m.browptr()[br + 1] {
                    let col_lo = m.bcolind()[bk] as usize * c;
                    let cols_here = (ncols - col_lo).min(c);
                    let payload = &m.blocks()[bk * r * c..(bk + 1) * r * c];
                    for di in 0..rows_here {
                        let arow = &mut acc[di * k..(di + 1) * k];
                        for dj in 0..cols_here {
                            // Explicit fill zeros multiply through, exactly
                            // like BcsrMatrix::spmv — a branch here would
                            // also cost more than the madd it skips.
                            let a = payload[di * c + dj];
                            let xr = &xs[(col_lo + dj) * k..(col_lo + dj + 1) * k];
                            for (av, &xv) in arow.iter_mut().zip(xr) {
                                *av += a * xv;
                            }
                        }
                    }
                }
                for di in 0..rows_here {
                    for t in 0..k {
                        // SAFETY: block rows are dispensed to exactly one
                        // thread, so these output rows are thread-exclusive.
                        unsafe { yp.write((row_lo + di) * k + t, acc[di * k + t]) };
                    }
                }
            }
        });
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Pool-parallel SpMM over ELLPACK: the row loop is partitioned by rows and
/// each row walks its fixed-width slot list once per column tile.
pub struct EllSpmm {
    matrix: Arc<EllMatrix>,
    ctx: Arc<ExecCtx>,
    partition: Partition,
}

impl EllSpmm {
    /// Builds the kernel with an equal-row-count partition (ELL's fixed
    /// width makes rows near-uniform by construction).
    pub fn new(matrix: Arc<EllMatrix>, ctx: Arc<ExecCtx>) -> Self {
        let partition = Partition::by_rows(matrix.nrows(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            partition,
        }
    }
}

impl SpmmKernel for EllSpmm {
    fn name(&self) -> String {
        format!("ell-w{}-spmm[static-rows]", self.matrix.width())
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_spmm_operands(m.nrows(), m.ncols(), x, y);
        let k = x.width();
        let width = m.width();
        let xs = x.as_slice();
        let yp = SendMutPtr::new(y.as_mut_slice());
        let partition = self.partition.clone();
        self.ctx.run(|tid| {
            if tid >= partition.len() {
                return;
            }
            for i in partition.range(tid) {
                let mut t0 = 0;
                while t0 < k {
                    let tl = (k - t0).min(SPMM_COL_TILE);
                    let mut acc = [0.0f64; SPMM_COL_TILE];
                    for s in 0..width {
                        let c = m.slot_cols(s)[i];
                        if c == PAD {
                            continue;
                        }
                        let v = m.slot_vals(s)[i];
                        let base = c as usize * k + t0;
                        let xr = &xs[base..base + tl];
                        for (a, &xv) in acc[..tl].iter_mut().zip(xr) {
                            *a += v * xv;
                        }
                    }
                    for (t, &a) in acc[..tl].iter().enumerate() {
                        // SAFETY: the static row partition is disjoint.
                        unsafe { yp.write(i * k + t0 + t, a) };
                    }
                    t0 += tl;
                }
            }
        });
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

/// Two-phase SpMM over a decomposed matrix (paper Fig. 6 generalized to `k`
/// right-hand sides): phase 1 runs the tiled row loop over short rows;
/// phase 2 splits every long row's nonzeros across all threads and reduces
/// `k`-wide partial sums.
pub struct DecomposedSpmm {
    matrix: Arc<DecomposedCsrMatrix>,
    ctx: Arc<ExecCtx>,
    phase1: ResolvedSchedule,
}

impl DecomposedSpmm {
    /// Builds the kernel; the phase-1 schedule balances short-row nonzeros.
    pub fn new(matrix: Arc<DecomposedCsrMatrix>, schedule: Schedule, ctx: Arc<ExecCtx>) -> Self {
        let phase1 =
            schedule.resolve_with_rowptr(matrix.nrows(), matrix.short_rowptr(), ctx.nthreads());
        Self {
            matrix,
            ctx,
            phase1,
        }
    }

    /// Baseline: nnz-balanced phase 1.
    pub fn baseline(matrix: Arc<DecomposedCsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, Schedule::StaticNnz, ctx)
    }
}

impl SpmmKernel for DecomposedSpmm {
    fn name(&self) -> String {
        "csr-decomposed-spmm".into()
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        let m = &self.matrix;
        check_spmm_operands(m.nrows(), m.ncols(), x, y);
        let k = x.width();
        let nthreads = self.ctx.nthreads();
        let long_rows = m.long_rows();
        let cols = m.colind();
        let vals = m.values();
        let xs = x.as_slice();

        // Phase 1: tiled row loop, long rows skipped (empty short ranges).
        let yp = SendMutPtr::new(y.as_mut_slice());
        self.phase1.execute(&self.ctx, m.nrows(), |rows| {
            for i in rows {
                if m.is_long(i) {
                    continue;
                }
                let r = m.row_range(i);
                // SAFETY: row-disjoint writes per the schedule.
                unsafe { row_spmm_write(i, &cols[r.clone()], &vals[r], xs, k, &yp) };
            }
        });

        // Phase 2: every thread computes a k-wide slice of each long row.
        if long_rows.is_empty() {
            return;
        }
        let mut partials = vec![0.0f64; long_rows.len() * nthreads * k];
        let pp = SendMutPtr::new(&mut partials);
        self.ctx.run(|tid| {
            for (li, &row) in long_rows.iter().enumerate() {
                let r = m.row_range(row as usize);
                let len = r.len();
                let chunk = len.div_ceil(nthreads);
                let s = r.start + (tid * chunk).min(len);
                let e = r.start + ((tid + 1) * chunk).min(len);
                if s < e {
                    // SAFETY: slot (li, tid) is written only by thread tid.
                    unsafe {
                        row_spmm_write(li * nthreads + tid, &cols[s..e], &vals[s..e], xs, k, &pp)
                    };
                }
            }
        });
        for (li, &row) in long_rows.iter().enumerate() {
            let out = y.row_mut(row as usize);
            out.fill(0.0);
            for tid in 0..nthreads {
                let p = &partials[(li * nthreads + tid) * k..(li * nthreads + tid + 1) * k];
                for (o, &v) in out.iter_mut().zip(p) {
                    *o += v;
                }
            }
        }
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::kernels::{SerialCsr, SpmvKernel};

    fn random_matrix(n: usize, per_row: usize, seed: u64) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..per_row {
                let c = (next() % n as u64) as usize;
                coo.push(i, c, (next() % 1000) as f64 / 100.0 - 5.0);
            }
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    /// Reference: k independent serial SpMVs, one per column.
    fn spmv_columns(csr: &Arc<CsrMatrix>, x: &MultiVec) -> MultiVec {
        let kernel = SerialCsr::new(csr.clone());
        let mut y = MultiVec::zeros(csr.nrows(), x.width());
        for j in 0..x.width() {
            let xj = x.column(j);
            let mut yj = vec![0.0; csr.nrows()];
            kernel.spmv(&xj, &mut yj);
            y.set_column(j, &yj);
        }
        y
    }

    fn assert_close(name: &str, got: &MultiVec, want: &MultiVec) {
        assert_eq!(got.nrows(), want.nrows());
        assert_eq!(got.width(), want.width());
        for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "{name}: flat index {i} differs: {a} vs {b}"
            );
        }
    }

    fn all_kernels(csr: &Arc<CsrMatrix>, ctx: &Arc<ExecCtx>) -> Vec<Box<dyn SpmmKernel>> {
        let threshold = DecomposedCsrMatrix::auto_threshold(csr, 4.0);
        vec![
            Box::new(CsrSpmm::baseline(csr.clone(), ctx.clone())),
            Box::new(CsrSpmm::new(
                csr.clone(),
                Schedule::Dynamic { chunk: 3 },
                ctx.clone(),
            )),
            Box::new(DeltaSpmm::baseline(
                Arc::new(DeltaCsrMatrix::from_csr(csr)),
                ctx.clone(),
            )),
            Box::new(BcsrSpmm::new(
                Arc::new(BcsrMatrix::from_csr(csr, 2, 3)),
                ctx.clone(),
            )),
            Box::new(EllSpmm::new(
                Arc::new(EllMatrix::from_csr(csr)),
                ctx.clone(),
            )),
            Box::new(DecomposedSpmm::baseline(
                Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold)),
                ctx.clone(),
            )),
        ]
    }

    #[test]
    fn every_kernel_matches_columnwise_spmv() {
        let csr = random_matrix(120, 5, 0x9e3779b97f4a7c15);
        let ctx = ExecCtx::new(3);
        for k in [1usize, 3, 8, 11] {
            let x = MultiVec::from_fn(csr.ncols(), k, |i, j| {
                ((i * 7 + j * 13) as f64 * 0.21).sin()
            });
            let want = spmv_columns(&csr, &x);
            for kernel in all_kernels(&csr, &ctx) {
                let mut y = MultiVec::zeros(csr.nrows(), k);
                y.fill(f64::NAN);
                kernel.spmm(&x, &mut y);
                assert_close(&format!("{} k={k}", kernel.name()), &y, &want);
            }
        }
    }

    #[test]
    fn skewed_matrix_exercises_decomposed_phase2() {
        let mut coo = CooMatrix::new(64, 64);
        for i in 0..64 {
            coo.push(i, i, 3.0);
        }
        for j in 0..64 {
            coo.push(7, j, 0.25 * (j % 5) as f64 + 0.5);
        }
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let ctx = ExecCtx::new(4);
        let dec = Arc::new(DecomposedCsrMatrix::from_csr(&csr, 8));
        assert_eq!(dec.long_rows(), &[7]);
        let x = MultiVec::from_fn(64, 5, |i, j| (i + j) as f64 * 0.1);
        let want = spmv_columns(&csr, &x);
        let mut y = MultiVec::zeros(64, 5);
        DecomposedSpmm::baseline(dec, ctx).spmm(&x, &mut y);
        assert_close("decomposed long row", &y, &want);
    }

    #[test]
    fn flops_scale_with_k() {
        let csr = random_matrix(32, 3, 7);
        let k = CsrSpmm::baseline(csr.clone(), ExecCtx::new(1));
        assert_eq!(k.flops(4), 4.0 * 2.0 * csr.nnz() as f64);
    }

    #[test]
    #[should_panic(expected = "x rows")]
    fn shape_mismatch_panics() {
        let csr = random_matrix(10, 2, 3);
        let kernel = CsrSpmm::baseline(csr, ExecCtx::new(1));
        let x = MultiVec::zeros(4, 2);
        let mut y = MultiVec::zeros(10, 2);
        kernel.spmm(&x, &mut y);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        let csr = random_matrix(10, 2, 3);
        let kernel = CsrSpmm::baseline(csr, ExecCtx::new(1));
        let x = MultiVec::zeros(10, 2);
        let mut y = MultiVec::zeros(10, 3);
        kernel.spmm(&x, &mut y);
    }
}
