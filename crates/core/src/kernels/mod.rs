//! SpMV kernels: the baseline CSR kernel (paper Fig. 2), its optimized
//! variants (Table II), and the micro-benchmark kernels used by the per-class
//! performance bounds (Section III-B).
//!
//! Kernels are built once per matrix (paying any preprocessing cost up
//! front, which the amortization analysis of Table V charges) and then invoked
//! repeatedly via [`SpmvKernel::spmv`].

mod csr;
mod decomposed;
mod delta;
mod microbench;
mod rowprim;

pub use csr::{CsrKernelConfig, ParallelCsr, SerialCsr};
pub use decomposed::DecomposedKernel;
pub use delta::DeltaKernel;
pub use microbench::{regularize_colind, UnitStrideCsr};
pub use rowprim::{row_dot, InnerLoop};

use std::time::Duration;

/// A reusable `y = A·x` kernel.
pub trait SpmvKernel: Send + Sync {
    /// Human-readable kernel identifier, e.g. `csr-parallel[simd+prefetch]`.
    fn name(&self) -> String;

    /// `(nrows, ncols)` of the operator.
    fn shape(&self) -> (usize, usize);

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);

    /// Per-thread wall times of the most recent `spmv` call, if the kernel
    /// tracks them (parallel kernels do; serial kernels return one entry).
    fn last_thread_times(&self) -> Vec<Duration> {
        Vec::new()
    }

    /// Bytes of matrix data the kernel streams per multiplication.
    fn footprint_bytes(&self) -> usize;

    /// Floating-point operations per multiplication (`2 · NNZ`, the paper's
    /// convention).
    fn flops(&self) -> f64 {
        2.0 * self.nnz() as f64
    }
}

/// Computes Gflop/s from a flop count and a duration in seconds.
pub fn gflops(flops: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        flops / secs / 1e9
    }
}

/// Validates operand shapes; shared by all kernel implementations.
#[inline]
pub(crate) fn check_operands(nrows: usize, ncols: usize, x: &[f64], y: &[f64]) {
    assert_eq!(x.len(), ncols, "x length {} != ncols {}", x.len(), ncols);
    assert_eq!(y.len(), nrows, "y length {} != nrows {}", y.len(), nrows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1.0, 0.0), 0.0);
    }
}
