//! SpMV kernels: the baseline CSR kernel (paper Fig. 2), its optimized
//! variants (Table II), and the micro-benchmark kernels used by the per-class
//! performance bounds (Section III-B).
//!
//! Kernels are built once per matrix (paying any preprocessing cost up
//! front, which the amortization analysis of Table V charges) and then invoked
//! repeatedly via [`SpmvKernel::spmv`].

mod csr;
mod decomposed;
mod delta;
mod microbench;
mod rowprim;
mod spmm;

pub use csr::{CsrKernelConfig, ParallelCsr, SerialCsr};
pub use decomposed::DecomposedKernel;
pub use delta::DeltaKernel;
pub use microbench::{regularize_colind, UnitStrideCsr};
pub use rowprim::{row_dot, InnerLoop};
pub use spmm::{BcsrSpmm, CsrSpmm, DecomposedSpmm, DeltaSpmm, EllSpmm, SPMM_COL_TILE};

use crate::multivec::MultiVec;
use std::time::Duration;

/// A reusable `y = A·x` kernel.
pub trait SpmvKernel: Send + Sync {
    /// Human-readable kernel identifier, e.g. `csr-parallel[simd+prefetch]`.
    fn name(&self) -> String;

    /// `(nrows, ncols)` of the operator.
    fn shape(&self) -> (usize, usize);

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);

    /// Per-thread wall times of the most recent `spmv` call, if the kernel
    /// tracks them (parallel kernels do; serial kernels return one entry).
    fn last_thread_times(&self) -> Vec<Duration> {
        Vec::new()
    }

    /// Bytes of matrix data the kernel streams per multiplication.
    fn footprint_bytes(&self) -> usize;

    /// Floating-point operations per multiplication (`2 · NNZ`, the paper's
    /// convention).
    fn flops(&self) -> f64 {
        2.0 * self.nnz() as f64
    }
}

/// A reusable `Y = A·X` kernel over a dense block of `k` right-hand sides
/// (SpMM). The matrix stream is read once per call and reused across all `k`
/// columns — the reuse-factor argument that makes block-Krylov consumers
/// cheaper per right-hand side than `k` separate [`SpmvKernel::spmv`] calls.
///
/// ```
/// use sparseopt_core::prelude::*;
/// use std::sync::Arc;
///
/// let mut coo = CooMatrix::new(3, 3);
/// for i in 0..3 { coo.push(i, i, 2.0); }
/// let csr = Arc::new(CsrMatrix::from_coo(&coo));
/// let kernel = CsrSpmm::baseline(csr, ExecCtx::new(2));
///
/// let x = MultiVec::from_fn(3, 4, |row, rhs| (row + rhs) as f64);
/// let mut y = MultiVec::zeros(3, 4);
/// kernel.spmm(&x, &mut y);
/// assert_eq!(y.row(1), &[2.0, 4.0, 6.0, 8.0]);
/// ```
pub trait SpmmKernel: Send + Sync {
    /// Human-readable kernel identifier, e.g. `csr-spmm[static-nnz]`.
    fn name(&self) -> String;

    /// `(nrows, ncols)` of the operator.
    fn shape(&self) -> (usize, usize);

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Computes `Y = A·X` for row-major `X ∈ R^{ncols×k}`, `Y ∈ R^{nrows×k}`.
    ///
    /// # Panics
    /// Panics if `x.nrows() != ncols`, `y.nrows() != nrows`, or the two
    /// multi-vectors disagree on `k`.
    fn spmm(&self, x: &MultiVec, y: &mut MultiVec);

    /// Per-thread wall times of the most recent `spmm` call, if tracked.
    fn last_thread_times(&self) -> Vec<Duration> {
        Vec::new()
    }

    /// Bytes of matrix data the kernel streams per multiplication (streamed
    /// once regardless of `k`).
    fn footprint_bytes(&self) -> usize;

    /// Floating-point operations per multiplication with `k` right-hand
    /// sides (`2 · NNZ · k`).
    fn flops(&self, k: usize) -> f64 {
        2.0 * self.nnz() as f64 * k as f64
    }
}

/// Computes Gflop/s from a flop count and a duration in seconds.
pub fn gflops(flops: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        flops / secs / 1e9
    }
}

/// Validates operand shapes; shared by all kernel implementations.
#[inline]
pub(crate) fn check_operands(nrows: usize, ncols: usize, x: &[f64], y: &[f64]) {
    assert_eq!(x.len(), ncols, "x length {} != ncols {}", x.len(), ncols);
    assert_eq!(y.len(), nrows, "y length {} != nrows {}", y.len(), nrows);
}

/// Validates SpMM operand shapes; shared by all [`SpmmKernel`] impls.
#[inline]
pub(crate) fn check_spmm_operands(nrows: usize, ncols: usize, x: &MultiVec, y: &MultiVec) {
    assert_eq!(x.nrows(), ncols, "x rows {} != ncols {}", x.nrows(), ncols);
    assert_eq!(y.nrows(), nrows, "y rows {} != nrows {}", y.nrows(), nrows);
    assert_eq!(
        x.width(),
        y.width(),
        "x width {} != y width {}",
        x.width(),
        y.width()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1.0, 0.0), 0.0);
    }
}
