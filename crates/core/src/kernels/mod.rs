//! Sparse operator kernels: the baseline CSR kernel (paper Fig. 2), its
//! optimized variants (Table II), the other storage formats' operators
//! (BCSR, ELL), and the micro-benchmark kernels used by the per-class
//! performance bounds (Section III-B).
//!
//! Since the operator-layer unification there is **one operator type per
//! format**, each implementing the format-erased [`SparseLinOp`] trait over
//! the full `{NoTrans, Trans} × {vector, multi-vector}` application space.
//! Operators are built once per matrix (paying any preprocessing cost up
//! front, which the amortization analysis of Table V charges) and then
//! applied repeatedly via [`SparseLinOp::apply`] / [`SparseLinOp::apply_multi`]
//! or the [`SparseLinOp::spmv`] / [`SparseLinOp::spmm`] conveniences.
//!
//! [`SpmvKernel`] and [`SpmmKernel`] survive only as thin shims over
//! [`SparseLinOp`] so historical signatures keep compiling; new code should
//! name `SparseLinOp` directly.

mod csr;
mod decomposed;
mod delta;
mod linop;
mod merge;
mod microbench;
mod rowprim;
mod sell;
mod sharded;
mod slab;
mod sym;
mod symgs;
pub(crate) mod transpose;
mod trsv;

pub use csr::{CsrKernelConfig, ParallelCsr, SerialCsr};
pub use decomposed::DecomposedKernel;
pub use delta::DeltaKernel;
pub(crate) use linop::{check_apply_multi_operands, check_apply_operands};
pub use linop::{Apply, OpCapabilities, SparseLinOp};
pub use merge::MergeCsr;
pub use microbench::{regularize_colind, UnitStrideCsr};
pub use rowprim::{row_dot, InnerLoop, SPMM_COL_TILE};
pub use sell::SellKernel;
pub use sharded::{
    peak_resident_shard_bytes, reset_peak_resident_shard_bytes, resident_shard_bytes, BuildReason,
    ShardBuildFn, ShardLoadFn, ShardSpec, ShardedOp,
};
pub use slab::{BcsrKernel, EllKernel};
pub use sym::SymCsr;
pub use symgs::{SymGsError, SymGsKernel};
pub use trsv::{LevelSets, TrsvAlgo, TrsvDirection, TrsvError, TrsvKernel};

/// Thin compatibility shim: the historical single-vector view of an
/// operator. Blanket-implemented for every [`SparseLinOp`], so
/// `Box<dyn SpmvKernel>` / `&dyn SpmvKernel` signatures keep working and
/// upcast freely to the unified trait.
pub trait SpmvKernel: SparseLinOp {}
impl<T: SparseLinOp + ?Sized> SpmvKernel for T {}

/// Thin compatibility shim: the historical multi-vector view of an
/// operator. Blanket-implemented for every [`SparseLinOp`].
pub trait SpmmKernel: SparseLinOp {}
impl<T: SparseLinOp + ?Sized> SpmmKernel for T {}

/// Computes Gflop/s from a flop count and a duration in seconds.
pub fn gflops(flops: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        flops / secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1.0, 0.0), 0.0);
    }

    #[test]
    fn shim_traits_upcast_to_the_unified_op() {
        use crate::coo::CooMatrix;
        use crate::csr::CsrMatrix;
        use std::sync::Arc;

        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let boxed: Box<dyn SpmvKernel> = Box::new(SerialCsr::new(csr));
        // The shim is just a view: the unified trait is reachable from it.
        let op: &dyn SparseLinOp = boxed.as_ref();
        assert_eq!(op.shape(), (2, 2));
        let mut y = vec![0.0; 2];
        boxed.spmv(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }
}
