//! Pool-parallel transposed application shared by every row-major format.
//!
//! `y = Aᵀ·x` over row-partitioned storage inverts the access pattern of
//! SpMV: the matrix and `x` stream sequentially, but the output is
//! *scattered* through the column indices. Writing `y` directly from
//! multiple threads would race, so the shared machinery here uses the
//! scratch-accumulate-and-merge scheme:
//!
//! 1. **Scatter** — rows (or block rows) are statically partitioned across
//!    the pool, weight-balanced by nonzeros where a row pointer exists.
//!    Each thread accumulates `Σ vals[j] · x[row, ·]` into a *private*
//!    `ncols × k` scratch buffer, so no synchronization is needed.
//! 2. **Merge** — the output rows are partitioned across the pool and each
//!    thread reduces the per-thread partials for its output range into `y`.
//!
//! Scratch memory is `nthreads · ncols · k` doubles per application; the
//! alternative (a precomputed CSC view) doubles the *matrix* footprint
//! instead, which loses for the `nnz ≫ ncols` matrices this library
//! targets.

use crate::partition::Partition;
use crate::pool::ExecCtx;
use crate::util::SendMutPtr;
use std::ops::Range;

/// A reusable transposed-application plan: the scatter-side work partition
/// (built once per operator, weight-balanced like the forward schedule) plus
/// the merge-side partition of the output rows.
#[derive(Clone, Debug)]
pub(crate) struct TransposePlan {
    /// Scatter partition over the format's work units (rows / block rows).
    work: Partition,
    /// Merge partition over the output rows.
    merge: Partition,
    /// Output dimension (`ncols` of the stored matrix).
    out_dim: usize,
}

std::thread_local! {
    /// Reusable scatter scratch, keyed to the applying thread — Krylov
    /// solvers call the transposed apply once per iteration, and the hot
    /// loop must not pay an `nthreads · ncols · k` allocation each time.
    static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl TransposePlan {
    /// Plan with nnz-balanced work units from a cumulative row pointer.
    pub fn by_rowptr(rowptr: &[usize], out_dim: usize, nthreads: usize) -> Self {
        Self {
            work: Partition::by_rowptr(rowptr, nthreads),
            merge: Partition::by_rows(out_dim, nthreads),
            out_dim,
        }
    }

    /// Plan with equal-count work units (ELL rows, near-uniform by
    /// construction).
    pub fn by_rows(nunits: usize, out_dim: usize, nthreads: usize) -> Self {
        Self {
            work: Partition::by_rows(nunits, nthreads),
            merge: Partition::by_rows(out_dim, nthreads),
            out_dim,
        }
    }

    /// Executes one transposed application: `scatter(units, scratch)` must
    /// accumulate every work unit's contribution into the thread-private
    /// `out_dim × k` row-major `scratch`; the merge into `y` is handled
    /// here. `y` must hold `out_dim · k` values and is fully overwritten.
    pub fn execute<F>(&self, ctx: &ExecCtx, k: usize, y: &mut [f64], scatter: F)
    where
        F: Fn(Range<usize>, &mut [f64]) + Sync,
    {
        let nthreads = ctx.nthreads();
        let stride = self.out_dim * k;
        assert_eq!(y.len(), stride, "output length mismatch");

        SCRATCH.with(|cell| {
            // Phase 1: thread-private scatter. One flat reusable buffer,
            // handed out as disjoint per-thread windows through the raw
            // pointer (the borrow lives on the applying thread only). Each
            // worker zeroes its own window, so the clearing is parallel and
            // stale contents from the previous application never leak into
            // the merge.
            let mut scratch = cell.borrow_mut();
            if scratch.len() != nthreads * stride {
                scratch.resize(nthreads * stride, 0.0);
            }
            let sp = SendMutPtr::new(&mut scratch);
            let work = &self.work;
            ctx.run(|tid| {
                // SAFETY: window `tid` is touched by thread `tid` only, and
                // the pool joins before `scratch` is read below.
                let buf = unsafe { sp.window(tid * stride, stride) };
                buf.fill(0.0);
                if tid >= work.len() {
                    return;
                }
                let units = work.range(tid);
                if units.is_empty() {
                    return;
                }
                scatter(units, buf);
            });
            let scatter_times = ctx.last_thread_times();

            // Phase 2: merge the per-thread partials, output-parallel.
            let merge = &self.merge;
            let yp = SendMutPtr::new(y);
            let scratch = &*scratch;
            ctx.run(|tid| {
                if tid >= merge.len() {
                    return;
                }
                for c in merge.range(tid) {
                    for t in 0..k {
                        let mut sum = 0.0;
                        for w in 0..nthreads {
                            sum += scratch[w * stride + c * k + t];
                        }
                        // SAFETY: output rows are partitioned disjointly.
                        unsafe { yp.write(c * k + t, sum) };
                    }
                }
            });
            // Report scatter + merge together: `last_thread_times` must
            // cover the whole application, not just the final phase.
            ctx.accumulate_last_times(&scatter_times);
        });
    }
}

/// Windowed variant of the scratch-accumulate-and-merge scheme, used by the
/// symmetric operator ([`crate::kernels::SymCsr`]): each scatter thread
/// declares at plan-build time the *column window* it can possibly touch,
/// and both the scratch memory and the merge pass shrink to those windows.
///
/// For the lower triangle of a banded matrix, thread `t`'s window is its own
/// row range plus a halo of one bandwidth below it — so the merge reads
/// `ncols + nthreads · band` values instead of `nthreads · ncols`, which is
/// what keeps the scratch-merge overhead from eating the symmetric format's
/// traffic halving on many-core platforms. On an unstructured matrix the
/// windows degrade gracefully toward the full [`TransposePlan`] cost.
#[derive(Clone, Debug)]
pub(crate) struct WindowedMergePlan {
    /// Scatter partition over the work units (rows of the stored triangle).
    work: Partition,
    /// Per-thread column window: every index thread `t` scatters to lies in
    /// `windows[t]` (empty range for threads with no work).
    windows: Vec<Range<usize>>,
    /// Element offset of each thread's scratch window at `k = 1`
    /// (`offsets[t+1] - offsets[t] = windows[t].len()`).
    offsets: Vec<usize>,
    /// Merge partition over the output rows.
    merge: Partition,
    /// Output dimension.
    out_dim: usize,
}

impl WindowedMergePlan {
    /// Builds the plan from the scatter work partition and the per-thread
    /// column windows (computed by the caller from the stored structure).
    ///
    /// # Panics
    /// Panics if `windows` does not have one entry per work partition slot
    /// or a window exceeds `out_dim`.
    pub fn new(
        work: Partition,
        windows: Vec<Range<usize>>,
        out_dim: usize,
        nthreads: usize,
    ) -> Self {
        assert_eq!(windows.len(), work.len(), "one window per work slot");
        assert!(
            windows.iter().all(|w| w.end <= out_dim),
            "windows must stay inside the output dimension"
        );
        let mut offsets = Vec::with_capacity(windows.len() + 1);
        offsets.push(0usize);
        for w in &windows {
            offsets.push(offsets.last().unwrap() + w.len());
        }
        Self {
            work,
            windows,
            offsets,
            merge: Partition::by_rows(out_dim, nthreads),
            out_dim,
        }
    }

    /// Total scratch elements at `k = 1` (the windowed footprint the
    /// execution model charges).
    pub fn scratch_elems(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Executes one windowed scatter + merge: `scatter(units, lo, scratch)`
    /// must accumulate every contribution of its work units into the
    /// thread-private `windows[t].len() × k` row-major `scratch`, indexing
    /// output row `c` at `(c - lo) * k`. `y` must hold `out_dim · k` values
    /// and is fully overwritten.
    pub fn execute<F>(&self, ctx: &ExecCtx, k: usize, y: &mut [f64], scatter: F)
    where
        F: Fn(Range<usize>, usize, &mut [f64]) + Sync,
    {
        assert_eq!(y.len(), self.out_dim * k, "output length mismatch");

        SCRATCH.with(|cell| {
            let total = self.scratch_elems() * k;
            let mut scratch = cell.borrow_mut();
            if scratch.len() != total {
                scratch.resize(total, 0.0);
            }
            let sp = SendMutPtr::new(&mut scratch);
            let (work, windows, offsets) = (&self.work, &self.windows, &self.offsets);
            ctx.run(|tid| {
                if tid >= work.len() {
                    return;
                }
                let window = windows[tid].clone();
                if window.is_empty() {
                    return;
                }
                // SAFETY: window `tid` is touched by thread `tid` only, and
                // the pool joins before `scratch` is read below.
                let buf = unsafe { sp.window(offsets[tid] * k, window.len() * k) };
                buf.fill(0.0);
                let units = work.range(tid);
                if units.is_empty() {
                    return;
                }
                scatter(units, window.start, buf);
            });
            let scatter_times = ctx.last_thread_times();

            // Merge: output-parallel; only windows overlapping a merge range
            // are read.
            let merge = &self.merge;
            let yp = SendMutPtr::new(y);
            let scratch = &*scratch;
            ctx.run(|tid| {
                if tid >= merge.len() {
                    return;
                }
                let out = merge.range(tid);
                if out.is_empty() {
                    return;
                }
                // SAFETY: output rows are partitioned disjointly.
                let dst = unsafe { yp.window(out.start * k, out.len() * k) };
                dst.fill(0.0);
                for (w, window) in windows.iter().enumerate() {
                    let lo = window.start.max(out.start);
                    let hi = window.end.min(out.end);
                    if lo >= hi {
                        continue;
                    }
                    let src = &scratch[(offsets[w] + lo - window.start) * k
                        ..(offsets[w] + hi - window.start) * k];
                    let d = &mut dst[(lo - out.start) * k..(hi - out.start) * k];
                    for (di, si) in d.iter_mut().zip(src) {
                        *di += si;
                    }
                }
            });
            ctx.accumulate_last_times(&scatter_times);
        });
    }
}

/// Accumulates one row's transposed contribution:
/// `scratch[cols[j], ·] += vals[j] · xrow` for every stored element.
#[inline]
pub(crate) fn scatter_row(cols: &[u32], vals: &[f64], xrow: &[f64], k: usize, scratch: &mut [f64]) {
    for (&c, &v) in cols.iter().zip(vals) {
        let dst = &mut scratch[c as usize * k..c as usize * k + k];
        for (d, &xv) in dst.iter_mut().zip(xrow) {
            *d += v * xv;
        }
    }
}

/// Serial transposed application into `y` (reference path for
/// [`crate::kernels::SerialCsr`]): `y` is zeroed, then every row scatters.
#[inline]
pub(crate) fn serial_transpose<'a>(
    rows: impl Iterator<Item = (&'a [u32], &'a [f64], &'a [f64])>,
    k: usize,
    y: &mut [f64],
) {
    y.fill(0.0);
    for (cols, vals, xrow) in rows {
        scatter_row(cols, vals, xrow, k, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;

    fn sample(nrows: usize, ncols: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(nrows, ncols);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..nrows {
            for _ in 0..3 {
                let c = (next() % ncols as u64) as usize;
                coo.push(i, c, (next() % 19) as f64 - 9.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn dense_transpose(m: &CsrMatrix, xs: &[f64], k: usize) -> Vec<f64> {
        let mut y = vec![0.0; m.ncols() * k];
        for (r, c, v) in m.iter() {
            for t in 0..k {
                y[c * k + t] += v * xs[r * k + t];
            }
        }
        y
    }

    #[test]
    fn plan_matches_dense_reference_across_threads_and_widths() {
        let m = sample(37, 23, 0x5eed);
        for nthreads in [1usize, 2, 5] {
            let ctx = ExecCtx::new(nthreads);
            for k in [1usize, 3, 8] {
                let xs: Vec<f64> = (0..37 * k).map(|i| (i as f64 * 0.17).sin()).collect();
                let want = dense_transpose(&m, &xs, k);
                let plan = TransposePlan::by_rowptr(m.rowptr(), m.ncols(), nthreads);
                let mut y = vec![f64::NAN; 23 * k];
                plan.execute(&ctx, k, &mut y, |rows, scratch| {
                    for i in rows {
                        scatter_row(
                            m.row_cols(i),
                            m.row_vals(i),
                            &xs[i * k..(i + 1) * k],
                            k,
                            scratch,
                        );
                    }
                });
                for (a, b) in y.iter().zip(&want) {
                    assert!(
                        (a - b).abs() < 1e-10 * (1.0 + b.abs()),
                        "t={nthreads} k={k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let m = CsrMatrix::from_coo(&CooMatrix::new(4, 6));
        let ctx = ExecCtx::new(3);
        let plan = TransposePlan::by_rows(4, 6, 3);
        let mut y = vec![1.0; 6];
        plan.execute(&ctx, 1, &mut y, |rows, scratch| {
            for i in rows {
                scatter_row(m.row_cols(i), m.row_vals(i), &[0.0], 1, scratch);
            }
        });
        assert_eq!(y, vec![0.0; 6]);
    }
}
