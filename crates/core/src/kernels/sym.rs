//! Symmetric-storage SpMV operator over [`SssCsr`] — the second MB-class
//! traffic halver of the optimization pool (Table II extension), next to
//! the delta compression of [`DeltaKernel`].
//!
//! For a symmetric matrix `A = L + D + Lᵀ`, one sweep over the stored lower
//! triangle computes the full product: row `i` contributes its gather-side
//! dot product `d_i·x_i + L_i·x` *and* scatters `L_i ᵀ·x_i` into the columns
//! it references — every stored off-diagonal element performs two fused
//! multiply-adds while being streamed **once**. The streamed matrix bytes
//! therefore drop to roughly half of full CSR, which is exactly what the
//! memory-bandwidth-bound class needs.
//!
//! The scatter side raises the same write-conflict problem as transposed
//! application, and it is solved by the same machinery: pool-parallel
//! per-thread scratch rows merged without atomics. The twist is the
//! [`WindowedMergePlan`]: because row `i` of the lower triangle only
//! references columns `< i`, each thread's scatter targets live in a
//! *window* `[min_col, rows.end)` computed at build time — for banded
//! symmetric matrices the windows barely exceed the thread's own row range,
//! so the scratch footprint and the merge traffic stay `O(n + halo)` rather
//! than `O(nthreads · n)`.
//!
//! For symmetric `A`, `Aᵀ = A`: the transposed application short-circuits
//! to the forward sweep, so the operator covers the full
//! `{NoTrans, Trans} × {vec, multivec}` surface by construction.
//!
//! [`DeltaKernel`]: super::DeltaKernel

use super::rowprim::{row_dot, row_spmm_acc, InnerLoop};
use super::transpose::WindowedMergePlan;
use super::{check_apply_multi_operands, check_apply_operands, Apply, SparseLinOp};
use crate::multivec::MultiVec;
use crate::partition::Partition;
use crate::pool::ExecCtx;
use crate::sss::SssCsr;
use std::sync::Arc;
use std::time::Duration;

/// The symmetric-storage operator: one sweep over the lower triangle,
/// windowed scratch merge for the scatter side, no atomics.
pub struct SymCsr {
    matrix: Arc<SssCsr>,
    ctx: Arc<ExecCtx>,
    inner: InnerLoop,
    prefetch: bool,
    plan: WindowedMergePlan,
}

impl SymCsr {
    /// Builds the operator: an nnz-balanced partition of the lower-triangle
    /// rows plus one column-window scan (`O(stored_nnz)` — far below any
    /// format conversion; the triangle split itself is charged by the
    /// amortization model).
    pub fn new(matrix: Arc<SssCsr>, inner: InnerLoop, prefetch: bool, ctx: Arc<ExecCtx>) -> Self {
        let nthreads = ctx.nthreads();
        let work = Partition::by_rowptr(matrix.rowptr(), nthreads);
        let mut windows = Vec::with_capacity(work.len());
        for t in 0..work.len() {
            let rows = work.range(t);
            if rows.is_empty() {
                windows.push(0..0);
                continue;
            }
            // The window must cover the thread's own rows (gather-side row
            // results land at slot `i`) and every column its lower-triangle
            // entries scatter to (all `< i`, hence `>= min first column`).
            let mut lo = rows.start;
            for i in rows.clone() {
                if let Some(&c) = matrix.row_cols(i).first() {
                    lo = lo.min(c as usize);
                }
            }
            windows.push(lo..rows.end);
        }
        let plan = WindowedMergePlan::new(work, windows, matrix.n(), nthreads);
        Self {
            matrix,
            ctx,
            inner: inner.resolve_for_host(),
            prefetch,
            plan,
        }
    }

    /// Scalar-loop symmetric operator — the pure MB storage optimization.
    pub fn baseline(matrix: Arc<SssCsr>, ctx: Arc<ExecCtx>) -> Self {
        Self::new(matrix, InnerLoop::Scalar, false, ctx)
    }

    /// The stored matrix.
    pub fn matrix(&self) -> &Arc<SssCsr> {
        &self.matrix
    }

    /// Total scratch elements of the windowed merge at `k = 1` (inspection,
    /// tests: banded matrices must stay near `n`, not `nthreads · n`).
    pub fn scratch_elems(&self) -> usize {
        self.plan.scratch_elems()
    }

    /// The shared flat one-sweep application (`k = 1` is the vector path):
    /// each thread accumulates `d_i x_i + L_i·x` into its private slot `i`
    /// and scatters `v·x_i` into slots `c < i`; the windowed merge reduces
    /// the per-thread partials into `y = (L + D + Lᵀ)·x`.
    fn sweep(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        if self.ctx.nthreads() == 1 {
            // A single thread cannot race on the scatter side: skip the
            // scratch + windowed merge entirely and accumulate straight
            // into `y`. (The plan's scratch copy + merge pass was pure
            // overhead at one thread — a measured ~40% slowdown against
            // the plain CSR baseline on small stencils.)
            return self.sweep_serial(xs, k, y);
        }
        let m = &self.matrix;
        let diag = m.diag();
        let inner = self.inner;
        let prefetch = self.prefetch;
        self.plan.execute(&self.ctx, k, y, |rows, lo, buf| {
            for i in rows {
                let (cols, vals) = (m.row_cols(i), m.row_vals(i));
                let xrow = &xs[i * k..(i + 1) * k];
                // Scatter side: Lᵀ contribution of row i (columns < i, all
                // inside the window by construction).
                for (&c, &v) in cols.iter().zip(vals) {
                    let base = (c as usize - lo) * k;
                    for (d, &xv) in buf[base..base + k].iter_mut().zip(xrow) {
                        *d += v * xv;
                    }
                }
                // Gather side: D + L row result, accumulated (slot i may
                // already hold scatter contributions from earlier rows).
                let base = (i - lo) * k;
                if k == 1 {
                    buf[base] += diag[i] * xs[i] + row_dot(inner, prefetch, cols, vals, xs);
                } else {
                    let out = &mut buf[base..base + k];
                    row_spmm_acc(cols, vals, xs, k, out);
                    for (o, &xv) in out.iter_mut().zip(xrow) {
                        *o += diag[i] * xv;
                    }
                }
            }
        });
    }

    /// The `nthreads == 1` sweep: same gather + scatter arithmetic, but the
    /// output vector *is* the accumulation buffer — `y` is zeroed once and
    /// every contribution lands directly, with no scratch and no merge. Runs
    /// inside the pool so `last_thread_times` still covers the work.
    fn sweep_serial(&self, xs: &[f64], k: usize, y: &mut [f64]) {
        let m = &self.matrix;
        let diag = m.diag();
        let (inner, prefetch) = (self.inner, self.prefetch);
        let n = m.n();
        let yp = crate::util::SendMutPtr::new(y);
        self.ctx.run(|_| {
            // SAFETY: the pool has exactly one thread, so the window is the
            // whole output and there is no concurrent writer.
            let y = unsafe { yp.window(0, n * k) };
            y.fill(0.0);
            for i in 0..n {
                let (cols, vals) = (m.row_cols(i), m.row_vals(i));
                let xrow = &xs[i * k..(i + 1) * k];
                for (&c, &v) in cols.iter().zip(vals) {
                    let dst = &mut y[c as usize * k..(c as usize + 1) * k];
                    for (d, &xv) in dst.iter_mut().zip(xrow) {
                        *d += v * xv;
                    }
                }
                if k == 1 {
                    y[i] += diag[i] * xs[i] + row_dot(inner, prefetch, cols, vals, xs);
                } else {
                    let out = &mut y[i * k..(i + 1) * k];
                    row_spmm_acc(cols, vals, xs, k, out);
                    for (o, &xv) in out.iter_mut().zip(xrow) {
                        *o += diag[i] * xv;
                    }
                }
            }
        });
    }
}

impl SparseLinOp for SymCsr {
    fn name(&self) -> String {
        let pf = if self.prefetch { "+prefetch" } else { "" };
        format!("sym-sss[{}{}]", self.inner.label(), pf)
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.n(), self.matrix.n())
    }

    fn nnz(&self) -> usize {
        self.matrix.logical_nnz()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        check_apply_operands(self.shape(), op, x, y);
        // Aᵀ = A for the symmetric matrix this storage can represent: both
        // application modes are the same one-sweep kernel.
        self.sweep(x, 1, y);
    }

    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec) {
        check_apply_multi_operands(self.shape(), op, x, y);
        self.sweep(x.as_slice(), x.width(), y.as_mut_slice());
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::kernels::SerialCsr;

    /// Symmetric banded sample: diagonally dominant, values mirrored exactly.
    fn sym_band(n: usize, band: usize) -> (Arc<CsrMatrix>, Arc<SssCsr>) {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 * band as f64 + 1.0);
            for j in i.saturating_sub(band)..i {
                let v = 0.25 + ((i * 31 + j * 7) % 11) as f64 * 0.125;
                coo.push(i, j, v);
                coo.push(j, i, v);
            }
        }
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let sss = Arc::new(SssCsr::try_from_csr(&csr).expect("band is symmetric"));
        (csr, sss)
    }

    fn assert_matches_full(csr: &Arc<CsrMatrix>, sss: &Arc<SssCsr>, nthreads: usize) {
        let n = csr.nrows();
        let x: Vec<f64> = (0..n).map(|i| 0.3 + (i as f64 * 0.41).sin()).collect();
        let mut want = vec![0.0; n];
        SerialCsr::new(csr.clone()).spmv(&x, &mut want);
        for inner in [InnerLoop::Scalar, InnerLoop::Unrolled4, InnerLoop::Simd] {
            let op = SymCsr::new(sss.clone(), inner, false, ExecCtx::new(nthreads));
            let mut y = vec![f64::NAN; n];
            op.spmv(&x, &mut y);
            for (i, (a, b)) in y.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                    "row {i}, {nthreads} threads, {}: {a} vs {b}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn matches_full_csr_across_threads_and_inners() {
        let (csr, sss) = sym_band(257, 5);
        for nthreads in [1, 2, 4, 7] {
            assert_matches_full(&csr, &sss, nthreads);
        }
    }

    #[test]
    fn transpose_is_the_forward_sweep() {
        let (csr, sss) = sym_band(101, 3);
        let x: Vec<f64> = (0..101).map(|i| 1.0 + (i as f64 * 0.13).cos()).collect();
        let op = SymCsr::baseline(sss, ExecCtx::new(3));
        let mut fwd = vec![f64::NAN; 101];
        op.apply(Apply::NoTrans, &x, &mut fwd);
        let mut tr = vec![f64::NAN; 101];
        op.apply(Apply::Trans, &x, &mut tr);
        assert_eq!(fwd, tr, "Aᵀ must be A for symmetric storage");
        let mut want = vec![0.0; 101];
        SerialCsr::new(csr).apply(Apply::Trans, &x, &mut want);
        for (a, b) in tr.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn multi_vector_matches_column_spmvs() {
        let (csr, sss) = sym_band(83, 4);
        let k = 5usize;
        let x = MultiVec::from_fn(83, k, |i, j| (i as f64 * 0.07 + j as f64 * 0.31).sin());
        let op = SymCsr::baseline(sss, ExecCtx::new(4));
        let mut y = MultiVec::zeros(83, k);
        op.spmm(&x, &mut y);
        let serial = SerialCsr::new(csr);
        for j in 0..k {
            let mut col = vec![0.0; 83];
            serial.spmv(&x.column(j), &mut col);
            for (i, want) in col.iter().enumerate() {
                let got = y.row(i)[j];
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn banded_windows_stay_near_n_not_threads_times_n() {
        let (_, sss) = sym_band(4096, 4);
        let nthreads = 8;
        let op = SymCsr::baseline(sss, ExecCtx::new(nthreads));
        // Each thread's halo is at most one bandwidth: the windowed scratch
        // must be ~n, not nthreads·n (the whole point of the windowed plan).
        assert!(
            op.scratch_elems() <= 4096 + nthreads * 4,
            "windowed scratch blew up: {}",
            op.scratch_elems()
        );
    }

    #[test]
    fn all_diagonal_matrix() {
        let mut coo = CooMatrix::new(9, 9);
        for i in 0..9 {
            coo.push(i, i, 1.0 + i as f64);
        }
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let sss = Arc::new(SssCsr::try_from_csr(&csr).unwrap());
        assert_matches_full(&csr, &sss, 3);
    }

    #[test]
    fn empty_matrix_zeroes_output() {
        let csr = Arc::new(CsrMatrix::from_coo(&CooMatrix::new(4, 4)));
        let sss = Arc::new(SssCsr::try_from_csr(&csr).unwrap());
        let op = SymCsr::baseline(sss, ExecCtx::new(3));
        let mut y = vec![f64::NAN; 4];
        op.spmv(&[1.0; 4], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn single_row_matrix() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 3.5);
        let csr = Arc::new(CsrMatrix::from_coo(&coo));
        let sss = Arc::new(SssCsr::try_from_csr(&csr).unwrap());
        for nthreads in [1, 4] {
            assert_matches_full(&csr, &sss, nthreads);
        }
    }

    #[test]
    fn name_capabilities_and_counters() {
        let (_, sss) = sym_band(16, 2);
        let op = SymCsr::new(sss.clone(), InnerLoop::Scalar, true, ExecCtx::new(2));
        assert_eq!(op.name(), "sym-sss[scalar+prefetch]");
        let caps = op.capabilities();
        assert!(caps.transpose && caps.multi_vec);
        assert_eq!(op.nnz(), sss.logical_nnz());
        assert_eq!(op.shape(), (16, 16));
        let mut y = vec![0.0; 16];
        op.spmv(&[1.0; 16], &mut y);
        assert_eq!(op.last_thread_times().len(), 2);
    }
}
