//! The format-erased sparse operator layer.
//!
//! Every storage format in the library exposes exactly one operator type,
//! and every consumer — Krylov solvers, the bounds profilers, the adaptive
//! optimizer, benches — programs against [`SparseLinOp`] instead of a
//! per-format (or per-workload) trait. The trait spans the full application
//! space `{NoTrans, Trans} × {vector, multi-vector}`:
//!
//! | call | computes |
//! |---|---|
//! | `apply(Apply::NoTrans, x, y)` | `y = A·x` |
//! | `apply(Apply::Trans, x, y)` | `y = Aᵀ·x` |
//! | `apply_multi(Apply::NoTrans, X, Y)` | `Y = A·X` |
//! | `apply_multi(Apply::Trans, X, Y)` | `Y = Aᵀ·X` |
//!
//! Transposed application keeps the row-major storage: each thread scatters
//! its row range into a private output-sized scratch buffer and a parallel
//! merge reduces the per-thread partials (see [`crate::kernels::transpose`]'s
//! machinery, shared by all five formats).

use crate::multivec::MultiVec;
use std::time::Duration;

/// Which operator an application uses: `A` itself or its transpose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Apply {
    /// Apply the operator as stored: `y = A·x`.
    #[default]
    NoTrans,
    /// Apply the transpose: `y = Aᵀ·x`.
    Trans,
}

impl Apply {
    /// Both application modes, for exhaustive sweeps.
    pub const ALL: [Apply; 2] = [Apply::NoTrans, Apply::Trans];

    /// Short stable label (`"A"` / `"A^T"`).
    pub fn label(self) -> &'static str {
        match self {
            Apply::NoTrans => "A",
            Apply::Trans => "A^T",
        }
    }

    /// `(output_len, input_len)` of this application for an operator of the
    /// given `(nrows, ncols)` shape.
    pub fn out_in(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Apply::NoTrans => (shape.0, shape.1),
            Apply::Trans => (shape.1, shape.0),
        }
    }
}

/// What a concrete operator implementation supports. Consumers that need a
/// capability (e.g. a transpose-requiring solver) check this before
/// committing to an operator; the adaptive optimizer threads the same
/// record through its plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCapabilities {
    /// `apply(Apply::Trans, ..)` / `apply_multi(Apply::Trans, ..)` work.
    pub transpose: bool,
    /// `apply_multi` works (all library formats; micro-benchmark kernels
    /// may opt out).
    pub multi_vec: bool,
}

impl OpCapabilities {
    /// The full application space — the default for every storage format.
    pub const fn full() -> Self {
        Self {
            transpose: true,
            multi_vec: true,
        }
    }

    /// Forward-only, single-vector (micro-benchmark kernels).
    pub const fn spmv_only() -> Self {
        Self {
            transpose: false,
            multi_vec: false,
        }
    }

    /// True when `self` offers everything `required` asks for.
    pub fn satisfies(&self, required: &OpCapabilities) -> bool {
        (self.transpose || !required.transpose) && (self.multi_vec || !required.multi_vec)
    }
}

/// A reusable sparse linear operator: the format-erased `y = op(A)·x` /
/// `Y = op(A)·X` kernel every consumer layer programs against.
///
/// Implementations are built once per matrix (paying preprocessing up
/// front, which the amortization analysis of Table V charges) and applied
/// repeatedly. The single-vector entry points are the `k = 1` slice of the
/// multi-vector ones, so an operator's whole behavior is pinned down by
/// `apply_multi`.
///
/// ```
/// use sparseopt_core::prelude::*;
/// use std::sync::Arc;
///
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 1, 2.0); // A = [0 2 0; 0 0 3]
/// coo.push(1, 2, 3.0);
/// let op = ParallelCsr::baseline(Arc::new(CsrMatrix::from_coo(&coo)), ExecCtx::new(2));
///
/// // y = A·x (lengths follow the operator shape: in = ncols, out = nrows).
/// let mut y = vec![0.0; 2];
/// op.apply(Apply::NoTrans, &[1.0, 1.0, 1.0], &mut y);
/// assert_eq!(y, vec![2.0, 3.0]);
///
/// // z = Aᵀ·y over the same storage — no transposed copy is materialized.
/// let mut z = vec![0.0; 3];
/// op.apply(Apply::Trans, &y, &mut z);
/// assert_eq!(z, vec![0.0, 4.0, 9.0]);
/// assert!(op.capabilities().transpose);
/// ```
pub trait SparseLinOp: Send + Sync {
    /// Human-readable operator identifier, e.g. `csr-parallel[simd+auto]`.
    fn name(&self) -> String;

    /// `(nrows, ncols)` of the stored matrix (`Apply::Trans` swaps them for
    /// operand sizing — see [`Apply::out_in`]).
    fn shape(&self) -> (usize, usize);

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Which applications this operator supports. Formats support the full
    /// space; micro-benchmark kernels may restrict it.
    fn capabilities(&self) -> OpCapabilities {
        OpCapabilities::full()
    }

    /// Computes `y = op(A)·x`.
    ///
    /// # Panics
    /// Panics if the operand lengths disagree with [`Apply::out_in`] of the
    /// operator shape, or if `op` is unsupported per [`Self::capabilities`].
    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]);

    /// Computes `Y = op(A)·X` for row-major multi-vectors.
    ///
    /// # Panics
    /// Panics on operand shape/width mismatch or an unsupported `op`.
    fn apply_multi(&self, op: Apply, x: &MultiVec, y: &mut MultiVec);

    /// Per-thread wall times of the most recent application, if the
    /// operator tracks them (parallel kernels do).
    fn last_thread_times(&self) -> Vec<Duration> {
        Vec::new()
    }

    /// Bytes of matrix data streamed per application (streamed once
    /// regardless of the multi-vector width).
    fn footprint_bytes(&self) -> usize;

    /// Floating-point operations per application with `k` right-hand sides
    /// (`2 · NNZ · k`, the paper's convention; transpose is identical).
    fn flops(&self, k: usize) -> f64 {
        2.0 * self.nnz() as f64 * k as f64
    }

    /// Convenience: `y = A·x`.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.apply(Apply::NoTrans, x, y);
    }

    /// Convenience: `Y = A·X`.
    fn spmm(&self, x: &MultiVec, y: &mut MultiVec) {
        self.apply_multi(Apply::NoTrans, x, y);
    }
}

/// Validates operand lengths for one application; shared by every operator
/// implementation.
#[inline]
pub(crate) fn check_apply_operands(shape: (usize, usize), op: Apply, x: &[f64], y: &[f64]) {
    let (out, inp) = op.out_in(shape);
    assert_eq!(x.len(), inp, "x length {} != input dim {}", x.len(), inp);
    assert_eq!(y.len(), out, "y length {} != output dim {}", y.len(), out);
}

/// Validates multi-vector operand shapes for one application.
#[inline]
pub(crate) fn check_apply_multi_operands(
    shape: (usize, usize),
    op: Apply,
    x: &MultiVec,
    y: &MultiVec,
) {
    let (out, inp) = op.out_in(shape);
    assert_eq!(x.nrows(), inp, "x rows {} != input dim {}", x.nrows(), inp);
    assert_eq!(y.nrows(), out, "y rows {} != output dim {}", y.nrows(), out);
    assert_eq!(
        x.width(),
        y.width(),
        "x width {} != y width {}",
        x.width(),
        y.width()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_out_in_swaps_for_transpose() {
        assert_eq!(Apply::NoTrans.out_in((3, 5)), (3, 5));
        assert_eq!(Apply::Trans.out_in((3, 5)), (5, 3));
    }

    #[test]
    fn capability_satisfaction() {
        let full = OpCapabilities::full();
        let micro = OpCapabilities::spmv_only();
        assert!(full.satisfies(&micro));
        assert!(full.satisfies(&full));
        assert!(!micro.satisfies(&full));
        assert!(micro.satisfies(&micro));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Apply::NoTrans.label(), "A");
        assert_eq!(Apply::Trans.label(), "A^T");
    }
}
