//! Micro-benchmark kernels used by the per-class performance bounds
//! (paper Section III-B).
//!
//! - `P_ML` runs "a modified SpMV kernel where irregular accesses to the
//!   right-hand side vector x are converted to regular accesses ... by
//!   setting all entries of the colind array to the row index of the
//!   corresponding element" — [`regularize_colind`] builds that matrix and any
//!   CSR kernel runs it.
//! - `P_CMP` runs "a modified SpMV kernel where we completely eliminate
//!   indirect memory references ... we no longer use colind to index vector
//!   x, but always access x[i]" — [`UnitStrideCsr`].

use super::{check_apply_operands, Apply, OpCapabilities, SparseLinOp};
use crate::csr::CsrMatrix;
use crate::multivec::MultiVec;
use crate::pool::ExecCtx;
use crate::schedule::{ResolvedSchedule, Schedule};
use crate::util::SendMutPtr;
use std::sync::Arc;
use std::time::Duration;

/// Returns a structurally identical matrix whose every column index in row
/// `i` is `i` itself (clamped to the column count), which converts all `x`
/// accesses into regular, cache-resident ones. Used for the `P_ML` bound.
pub fn regularize_colind(csr: &CsrMatrix) -> CsrMatrix {
    let mut colind = Vec::with_capacity(csr.nnz());
    let ncols = csr.ncols();
    for i in 0..csr.nrows() {
        let c = i.min(ncols.saturating_sub(1)) as u32;
        colind.extend(std::iter::repeat_n(c, csr.row_nnz(i)));
    }
    CsrMatrix::from_raw(
        csr.nrows(),
        csr.ncols(),
        csr.rowptr().to_vec(),
        colind,
        csr.values().to_vec(),
    )
}

/// CSR kernel that ignores `colind` entirely and accesses `x[i]` — the
/// `P_CMP` micro-benchmark. Note the result is *not* `A·x`; it exists purely
/// to measure the compute-only upper bound.
pub struct UnitStrideCsr {
    matrix: Arc<CsrMatrix>,
    ctx: Arc<ExecCtx>,
    resolved: ResolvedSchedule,
}

impl UnitStrideCsr {
    /// Builds the micro-benchmark kernel with the baseline schedule.
    pub fn new(matrix: Arc<CsrMatrix>, ctx: Arc<ExecCtx>) -> Self {
        let resolved = Schedule::StaticNnz.resolve(&matrix, ctx.nthreads());
        Self {
            matrix,
            ctx,
            resolved,
        }
    }
}

impl SparseLinOp for UnitStrideCsr {
    fn name(&self) -> String {
        "csr-unit-stride(microbench)".into()
    }

    fn shape(&self) -> (usize, usize) {
        (self.matrix.nrows(), self.matrix.ncols())
    }

    fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// Forward single-vector only: this kernel exists to time the compute
    /// roof, not to implement the operator algebra.
    fn capabilities(&self) -> OpCapabilities {
        OpCapabilities::spmv_only()
    }

    fn apply(&self, op: Apply, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            op,
            Apply::NoTrans,
            "UnitStrideCsr is a forward-only micro-benchmark (see capabilities)"
        );
        let m = &self.matrix;
        check_apply_operands(self.shape(), op, x, y);
        let yp = SendMutPtr::new(y);
        let ncols = m.ncols();
        self.resolved.execute(&self.ctx, m.nrows(), |rows| {
            for i in rows {
                let xi = x[i.min(ncols - 1)];
                let mut sum = 0.0;
                for &v in m.row_vals(i) {
                    sum += v * xi;
                }
                // SAFETY: schedule guarantees row-disjoint writes.
                unsafe { yp.write(i, sum) };
            }
        });
    }

    fn apply_multi(&self, _op: Apply, _x: &MultiVec, _y: &mut MultiVec) {
        panic!("UnitStrideCsr is a single-vector micro-benchmark (see capabilities)");
    }

    fn last_thread_times(&self) -> Vec<Duration> {
        self.ctx.last_thread_times()
    }

    fn footprint_bytes(&self) -> usize {
        // No colind traffic: values + rowptr only.
        self.matrix.values_bytes() + (self.matrix.nrows() + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::kernels::{ParallelCsr, SerialCsr};

    fn sample(n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i * 17 + 3) % n, 1.5);
            coo.push(i, (i * 5 + 1) % n, -0.5);
        }
        Arc::new(CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn regularized_matrix_has_row_index_columns() {
        let m = sample(40);
        let reg = regularize_colind(&m);
        assert_eq!(reg.nnz(), m.nnz());
        for i in 0..40 {
            for &c in reg.row_cols(i) {
                assert_eq!(c as usize, i);
            }
        }
    }

    #[test]
    fn regularized_matrix_runs_on_standard_kernels() {
        let m = sample(60);
        let reg = Arc::new(regularize_colind(&m));
        let x = vec![2.0; 60];
        let mut y = vec![0.0; 60];
        ParallelCsr::baseline(reg.clone(), ExecCtx::new(2)).spmv(&x, &mut y);
        // Every row sums its values times x[i] = 2.0.
        let mut expect = vec![0.0; 60];
        SerialCsr::new(reg).spmv(&x, &mut expect);
        assert_eq!(y, expect);
    }

    #[test]
    fn unit_stride_sums_row_values() {
        let m = sample(30);
        let k = UnitStrideCsr::new(m.clone(), ExecCtx::new(2));
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut y = vec![0.0; 30];
        k.spmv(&x, &mut y);
        for (i, &yi) in y.iter().enumerate() {
            let expect: f64 = m.row_vals(i).iter().sum::<f64>() * i as f64;
            assert!((yi - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_stride_footprint_excludes_colind() {
        let m = sample(30);
        let k = UnitStrideCsr::new(m.clone(), ExecCtx::new(1));
        assert!(k.footprint_bytes() < m.footprint_bytes());
    }
}
