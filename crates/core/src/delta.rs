//! Delta-compressed CSR — the paper's MB-class optimization (Table II).
//!
//! Column indices are stored as deltas from the previous nonzero in the same
//! row, "8- or 16-bit deltas wherever possible, but never both, in order to
//! limit the branching overhead" (Section III-E). Deltas that do not fit the
//! chosen width (including each row's first, absolute index when large) are
//! escaped into a `u32` exception stream; a per-row exception pointer keeps
//! rows independently decodable so the row loop still parallelizes.

use crate::csr::CsrMatrix;

/// The single delta width used for a whole matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaWidth {
    /// 1-byte deltas, sentinel `0xFF`.
    U8,
    /// 2-byte deltas, sentinel `0xFFFF`.
    U16,
}

impl DeltaWidth {
    /// Bytes per stored delta.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            DeltaWidth::U8 => 1,
            DeltaWidth::U16 => 2,
        }
    }

    /// Largest representable delta (the sentinel itself is reserved).
    #[inline]
    pub fn max_delta(self) -> u32 {
        match self {
            DeltaWidth::U8 => u8::MAX as u32 - 1,
            DeltaWidth::U16 => u16::MAX as u32 - 1,
        }
    }
}

/// Width-specific delta storage.
#[derive(Clone, Debug, PartialEq)]
enum DeltaData {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// CSR with delta-encoded column indices.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaCsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    deltas: DeltaData,
    /// Escaped absolute column indices, in stream order.
    exceptions: Vec<u32>,
    /// `exc_rowptr[i]` = exceptions consumed before row `i` starts.
    exc_rowptr: Vec<usize>,
    values: Vec<f64>,
}

impl DeltaCsrMatrix {
    /// Encodes a CSR matrix choosing the width (u8 vs u16) that minimizes the
    /// index footprint, per the paper's "one width only" rule.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let (exc8, exc16) = count_exceptions(csr);
        let nnz = csr.nnz();
        let bytes8 = nnz + exc8 * 4;
        let bytes16 = nnz * 2 + exc16 * 4;
        let width = if bytes8 <= bytes16 {
            DeltaWidth::U8
        } else {
            DeltaWidth::U16
        };
        Self::from_csr_with_width(csr, width)
    }

    /// Encodes with an explicit width (exposed for tests and ablations).
    pub fn from_csr_with_width(csr: &CsrMatrix, width: DeltaWidth) -> Self {
        let nnz = csr.nnz();
        let mut exceptions = Vec::new();
        let mut exc_rowptr = Vec::with_capacity(csr.nrows() + 1);
        exc_rowptr.push(0);

        let max_delta = width.max_delta();
        let mut enc8 = Vec::new();
        let mut enc16 = Vec::new();
        match width {
            DeltaWidth::U8 => enc8.reserve(nnz),
            DeltaWidth::U16 => enc16.reserve(nnz),
        }

        for i in 0..csr.nrows() {
            let mut prev: u32 = 0;
            for (idx, &col) in csr.row_cols(i).iter().enumerate() {
                // First element encodes the absolute column (delta from 0).
                let delta_ok = col >= prev || idx == 0;
                let delta = col.wrapping_sub(if idx == 0 { 0 } else { prev });
                let fits = delta_ok && delta <= max_delta;
                match width {
                    DeltaWidth::U8 => {
                        if fits {
                            enc8.push(delta as u8);
                        } else {
                            enc8.push(u8::MAX);
                            exceptions.push(col);
                        }
                    }
                    DeltaWidth::U16 => {
                        if fits {
                            enc16.push(delta as u16);
                        } else {
                            enc16.push(u16::MAX);
                            exceptions.push(col);
                        }
                    }
                }
                prev = col;
            }
            exc_rowptr.push(exceptions.len());
        }

        let deltas = match width {
            DeltaWidth::U8 => DeltaData::U8(enc8),
            DeltaWidth::U16 => DeltaData::U16(enc16),
        };
        Self {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            rowptr: csr.rowptr().to_vec(),
            deltas,
            exceptions,
            exc_rowptr,
            values: csr.values().to_vec(),
        }
    }

    /// The width in use.
    pub fn width(&self) -> DeltaWidth {
        match self.deltas {
            DeltaData::U8(_) => DeltaWidth::U8,
            DeltaData::U16(_) => DeltaWidth::U16,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array.
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of escaped (non-fitting) indices.
    #[inline]
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Footprint in bytes of the compressed layout (the `M_A` term after
    /// compression in the paper's MB analysis).
    pub fn footprint_bytes(&self) -> usize {
        let delta_bytes = self.nnz() * self.width().bytes();
        self.values.len() * 8
            + delta_bytes
            + self.exceptions.len() * 4
            + self.rowptr.len() * 8
            + self.exc_rowptr.len() * 8
    }

    /// Compression ratio of the index data versus plain 4-byte `colind`
    /// (< 1.0 means the encoding is smaller).
    pub fn index_compression_ratio(&self) -> f64 {
        let plain = self.nnz() * 4;
        let packed = self.nnz() * self.width().bytes() + self.exceptions.len() * 4;
        if plain == 0 {
            1.0
        } else {
            packed as f64 / plain as f64
        }
    }

    /// Decodes the column indices of row `i`, appending into `out`.
    /// This is the reference decoder; the hot kernels inline the same logic.
    pub fn decode_row_into(&self, i: usize, out: &mut Vec<u32>) {
        let mut prev = 0u32;
        let mut e = self.exc_rowptr[i];
        let range = self.rowptr[i]..self.rowptr[i + 1];
        match &self.deltas {
            DeltaData::U8(d) => {
                for k in range {
                    let col = if d[k] == u8::MAX {
                        let c = self.exceptions[e];
                        e += 1;
                        c
                    } else {
                        prev.wrapping_add(d[k] as u32)
                    };
                    prev = col;
                    out.push(col);
                }
            }
            DeltaData::U16(d) => {
                for k in range {
                    let col = if d[k] == u16::MAX {
                        let c = self.exceptions[e];
                        e += 1;
                        c
                    } else {
                        prev.wrapping_add(d[k] as u32)
                    };
                    prev = col;
                    out.push(col);
                }
            }
        }
    }

    /// Fully decodes back to a plain CSR matrix (round-trip check, tests).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut colind = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            self.decode_row_into(i, &mut colind);
        }
        CsrMatrix::from_raw(
            self.nrows,
            self.ncols,
            self.rowptr.clone(),
            colind,
            self.values.clone(),
        )
    }

    /// Row-local dot product `Σ val·x[col]` with inline delta decoding.
    #[inline]
    pub(crate) fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let mut prev = 0u32;
        let mut e = self.exc_rowptr[i];
        let range = self.rowptr[i]..self.rowptr[i + 1];
        let mut sum = 0.0;
        match &self.deltas {
            DeltaData::U8(d) => {
                for k in range {
                    let col = if d[k] == u8::MAX {
                        let c = self.exceptions[e];
                        e += 1;
                        c
                    } else {
                        prev.wrapping_add(d[k] as u32)
                    };
                    prev = col;
                    sum += self.values[k] * x[col as usize];
                }
            }
            DeltaData::U16(d) => {
                for k in range {
                    let col = if d[k] == u16::MAX {
                        let c = self.exceptions[e];
                        e += 1;
                        c
                    } else {
                        prev.wrapping_add(d[k] as u32)
                    };
                    prev = col;
                    sum += self.values[k] * x[col as usize];
                }
            }
        }
        sum
    }
}

/// Counts how many indices would escape under each width.
fn count_exceptions(csr: &CsrMatrix) -> (usize, usize) {
    let (mut e8, mut e16) = (0usize, 0usize);
    for i in 0..csr.nrows() {
        let mut prev = 0u32;
        for (idx, &col) in csr.row_cols(i).iter().enumerate() {
            let base = if idx == 0 { 0 } else { prev };
            if col < base {
                e8 += 1;
                e16 += 1;
            } else {
                let d = col - base;
                if d > DeltaWidth::U8.max_delta() {
                    e8 += 1;
                }
                if d > DeltaWidth::U16.max_delta() {
                    e16 += 1;
                }
            }
            prev = col;
        }
    }
    (e8, e16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn banded(n: usize, band: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                coo.push(i, j, (i + j) as f64 + 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn banded_picks_u8_and_round_trips() {
        let csr = banded(64, 2);
        let d = DeltaCsrMatrix::from_csr(&csr);
        assert_eq!(d.width(), DeltaWidth::U8);
        assert_eq!(d.to_csr(), csr);
        assert!(
            d.index_compression_ratio() < 0.6,
            "banded matrix must compress well"
        );
    }

    #[test]
    fn wide_rows_pick_u16() {
        // Columns spaced 1000 apart: deltas overflow u8 but fit u16.
        let mut coo = CooMatrix::new(8, 64_000);
        for i in 0..8 {
            for j in 0..32 {
                coo.push(i, j * 1000, 1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let d = DeltaCsrMatrix::from_csr(&csr);
        assert_eq!(d.width(), DeltaWidth::U16);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn huge_first_column_escapes() {
        let mut coo = CooMatrix::new(2, 1_000_000);
        coo.push(0, 999_999, 3.0);
        coo.push(1, 0, 4.0);
        let csr = CsrMatrix::from_coo(&coo);
        for w in [DeltaWidth::U8, DeltaWidth::U16] {
            let d = DeltaCsrMatrix::from_csr_with_width(&csr, w);
            assert_eq!(d.exception_count(), 1, "width {w:?}");
            assert_eq!(d.to_csr(), csr);
        }
    }

    #[test]
    fn sentinel_valued_delta_escapes() {
        // Delta of exactly 255 must be escaped under u8 (sentinel reserved).
        let mut coo = CooMatrix::new(1, 512);
        coo.push(0, 0, 1.0);
        coo.push(0, 255, 2.0);
        let csr = CsrMatrix::from_coo(&coo);
        let d = DeltaCsrMatrix::from_csr_with_width(&csr, DeltaWidth::U8);
        assert_eq!(d.exception_count(), 1);
        assert_eq!(d.to_csr(), csr);
    }

    #[test]
    fn row_dot_matches_plain() {
        let csr = banded(100, 3);
        let d = DeltaCsrMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        for i in 0..100 {
            let plain: f64 = csr
                .row_cols(i)
                .iter()
                .zip(csr.row_vals(i))
                .map(|(&c, &v)| v * x[c as usize])
                .sum();
            assert!((d.row_dot(i, &x) - plain).abs() < 1e-12);
        }
    }

    #[test]
    fn footprint_smaller_than_csr_for_regular() {
        let csr = banded(256, 4);
        let d = DeltaCsrMatrix::from_csr(&csr);
        assert!(d.footprint_bytes() < csr.footprint_bytes() + 256 * 8);
        // Index stream shrinks 4x minus exceptions.
        assert!(d.index_compression_ratio() < 0.5);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(3, 3);
        let csr = CsrMatrix::from_coo(&coo);
        let d = DeltaCsrMatrix::from_csr(&csr);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_csr(), csr);
    }
}
