//! Dense multi-vector storage for SpMM (`X ∈ R^{n×k}`).
//!
//! The multiple-right-hand-side workload stores its `k` dense vectors
//! **row-major**: all `k` values of logical row `i` are contiguous. This is
//! the layout that makes SpMM profitable — every fetched nonzero `a_ij`
//! multiplies the whole row `x[j, 0..k]` with unit-stride loads, so the
//! matrix stream is amortized over `k` flops per element instead of one
//! (the reuse-factor argument behind the analytic SpMM model in
//! `sparseopt-sim`).
//!
//! ```
//! use sparseopt_core::MultiVec;
//!
//! let x = MultiVec::from_fn(3, 2, |row, col| (row * 10 + col) as f64);
//! assert_eq!(x.row(1), &[10.0, 11.0]);
//! assert_eq!(x.column(1), vec![1.0, 11.0, 21.0]);
//! ```

/// A dense `nrows × k` block of column vectors, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVec {
    nrows: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An all-zero `nrows × k` multi-vector.
    ///
    /// # Panics
    /// Panics for `k == 0` (a multi-vector holds at least one column).
    pub fn zeros(nrows: usize, k: usize) -> Self {
        assert!(k > 0, "MultiVec needs at least one column");
        Self {
            nrows,
            k,
            data: vec![0.0; nrows * k],
        }
    }

    /// Builds from a per-entry function `f(row, col)`.
    pub fn from_fn(nrows: usize, k: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut v = Self::zeros(nrows, k);
        for i in 0..nrows {
            for j in 0..k {
                v.data[i * k + j] = f(i, j);
            }
        }
        v
    }

    /// Builds from `k` equal-length column vectors.
    ///
    /// # Panics
    /// Panics on zero columns or ragged lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        assert!(!cols.is_empty(), "MultiVec needs at least one column");
        let nrows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == nrows),
            "all columns must have equal length"
        );
        Self::from_fn(nrows, cols.len(), |i, j| cols[j][i])
    }

    /// Number of logical rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (right-hand sides), the reuse factor `k`.
    #[inline]
    pub fn width(&self) -> usize {
        self.k
    }

    /// Row `i` as a contiguous `k`-slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Copies column `j` out into a contiguous vector (strided read).
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        (0..self.nrows).map(|i| self.data[i * self.k + j]).collect()
    }

    /// Gathers `k` independent column vectors into one row-major block —
    /// the coalescing entry point of the serving layer, which folds many
    /// same-matrix `y = A·x` requests into a single SpMM application so the
    /// matrix bytes stream once for all of them.
    ///
    /// Walks the output row-major (unit-stride writes); each source column
    /// is read at stride 1 within its own slice.
    ///
    /// ```
    /// use sparseopt_core::MultiVec;
    ///
    /// let a = vec![1.0, 2.0];
    /// let b = vec![3.0, 4.0];
    /// let x = MultiVec::gather_columns(&[&a, &b]);
    /// assert_eq!(x.row(0), &[1.0, 3.0]);
    /// assert_eq!(x.row(1), &[2.0, 4.0]);
    /// ```
    ///
    /// # Panics
    /// Panics on zero columns or ragged lengths.
    pub fn gather_columns(cols: &[&[f64]]) -> Self {
        assert!(!cols.is_empty(), "MultiVec needs at least one column");
        let nrows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == nrows),
            "all columns must have equal length"
        );
        let k = cols.len();
        let mut data = vec![0.0; nrows * k];
        for (i, row) in data.chunks_exact_mut(k).enumerate() {
            for (dst, col) in row.iter_mut().zip(cols) {
                *dst = col[i];
            }
        }
        Self { nrows, k, data }
    }

    /// Gathers `k` column vectors into this block, reshaping it as needed
    /// — the in-place form of [`MultiVec::gather_columns`] for callers
    /// that reuse one scratch block across many batches (a dispatch worker
    /// coalescing request after request must not pay an allocation and a
    /// page-fault walk per batch).
    ///
    /// # Panics
    /// Panics on zero columns or ragged lengths.
    pub fn gather_columns_into(&mut self, cols: &[&[f64]]) {
        assert!(!cols.is_empty(), "MultiVec needs at least one column");
        let nrows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == nrows),
            "all columns must have equal length"
        );
        let k = cols.len();
        self.nrows = nrows;
        self.k = k;
        self.data.resize(nrows * k, 0.0);
        #[cfg(target_arch = "x86_64")]
        if k == 8 && crate::util::simd_available() {
            // SAFETY: AVX2 verified; lengths verified above.
            unsafe { gather8_avx2(cols, &mut self.data, nrows) };
            return;
        }
        for (i, row) in self.data.chunks_exact_mut(k).enumerate() {
            for (dst, col) in row.iter_mut().zip(cols) {
                *dst = col[i];
            }
        }
    }

    /// Reshapes to `nrows x k`, reusing the existing allocation where it
    /// suffices, and zero-fills — the scratch-output companion of
    /// [`MultiVec::gather_columns_into`].
    pub fn reset_zeroed(&mut self, nrows: usize, k: usize) {
        assert!(k > 0, "MultiVec needs at least one column");
        self.nrows = nrows;
        self.k = k;
        self.data.clear();
        self.data.resize(nrows * k, 0.0);
    }

    /// Scatters column `j` into a caller-provided buffer (the per-request
    /// response half of a coalesced batch).
    ///
    /// # Panics
    /// Panics on column index or length mismatch.
    pub fn scatter_column_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        assert_eq!(out.len(), self.nrows, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.k + j];
        }
    }

    /// Scatters every column into its own buffer, walking the block
    /// row-major once (unit-stride reads) instead of once per column.
    ///
    /// # Panics
    /// Panics unless exactly `k` buffers of `nrows` length are supplied.
    pub fn scatter_columns_into(&self, outs: &mut [&mut [f64]]) {
        assert_eq!(outs.len(), self.k, "need one output buffer per column");
        for out in outs.iter() {
            assert_eq!(out.len(), self.nrows, "output length mismatch");
        }
        #[cfg(target_arch = "x86_64")]
        if self.k == 8 && crate::util::simd_available() {
            // SAFETY: AVX2 verified; lengths verified above.
            unsafe { scatter8_avx2(&self.data, outs, self.nrows) };
            return;
        }
        for (i, row) in self.data.chunks_exact(self.k).enumerate() {
            for (out, &v) in outs.iter_mut().zip(row) {
                out[i] = v;
            }
        }
    }

    /// Writes a contiguous vector into column `j` (strided write).
    ///
    /// # Panics
    /// Panics on column index or length mismatch.
    pub fn set_column(&mut self, j: usize, col: &[f64]) {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        assert_eq!(col.len(), self.nrows, "column length mismatch");
        for (i, &v) in col.iter().enumerate() {
            self.data[i * self.k + j] = v;
        }
    }

    /// The whole storage, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable storage, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Euclidean norm of each column.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut sq = vec![0.0f64; self.k];
        for row in self.data.chunks_exact(self.k) {
            for (s, &v) in sq.iter_mut().zip(row) {
                *s += v * v;
            }
        }
        sq.iter().map(|s| s.sqrt()).collect()
    }

    /// Storage footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// Transposes four 4-element column vectors `[c0 c1 c2 c3]` (each a
/// `__m256d` holding rows `i..i+4` of one column) into four row vectors
/// `[r_i r_{i+1} r_{i+2} r_{i+3}]` — the classic AVX unpack/permute 4×4
/// double transpose.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn transpose4x4(v: [core::arch::x86_64::__m256d; 4]) -> [core::arch::x86_64::__m256d; 4] {
    use core::arch::x86_64::*;
    unsafe {
        let t0 = _mm256_unpacklo_pd(v[0], v[1]);
        let t1 = _mm256_unpackhi_pd(v[0], v[1]);
        let t2 = _mm256_unpacklo_pd(v[2], v[3]);
        let t3 = _mm256_unpackhi_pd(v[2], v[3]);
        [
            _mm256_permute2f128_pd(t0, t2, 0x20),
            _mm256_permute2f128_pd(t1, t3, 0x20),
            _mm256_permute2f128_pd(t0, t2, 0x31),
            _mm256_permute2f128_pd(t1, t3, 0x31),
        ]
    }
}

/// Interleaves eight equal-length columns into a row-major `nrows × 8`
/// block four rows at a time: load 4 consecutive elements from each
/// column, transpose each 4-column half in registers, store four complete
/// 8-wide rows. Turns the strided scalar writes of the gather into pure
/// unit-stride vector loads/stores — this runs once per coalesced batch
/// in the serving layer, in series with the SpMM itself.
///
/// # Safety
/// Requires AVX2; `cols` must hold exactly 8 slices of length `nrows`,
/// and `data` must have length `nrows * 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather8_avx2(cols: &[&[f64]], data: &mut [f64], nrows: usize) {
    use core::arch::x86_64::*;
    debug_assert_eq!(cols.len(), 8);
    debug_assert_eq!(data.len(), nrows * 8);
    let main = nrows & !3;
    let dst = data.as_mut_ptr();
    unsafe {
        let mut i = 0;
        while i < main {
            for half in 0..2 {
                let v = [
                    _mm256_loadu_pd(cols[4 * half].as_ptr().add(i)),
                    _mm256_loadu_pd(cols[4 * half + 1].as_ptr().add(i)),
                    _mm256_loadu_pd(cols[4 * half + 2].as_ptr().add(i)),
                    _mm256_loadu_pd(cols[4 * half + 3].as_ptr().add(i)),
                ];
                let r = transpose4x4(v);
                for (dr, row) in r.iter().enumerate() {
                    _mm256_storeu_pd(dst.add((i + dr) * 8 + 4 * half), *row);
                }
            }
            i += 4;
        }
        for i in main..nrows {
            for (j, col) in cols.iter().enumerate() {
                *dst.add(i * 8 + j) = col[i];
            }
        }
    }
}

/// The inverse of [`gather8_avx2`]: de-interleaves a row-major
/// `nrows × 8` block into eight contiguous column buffers, four rows at
/// a time via the in-register 4×4 transpose.
///
/// # Safety
/// Requires AVX2; `outs` must hold exactly 8 buffers of length `nrows`,
/// and `data` must have length `nrows * 8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scatter8_avx2(data: &[f64], outs: &mut [&mut [f64]], nrows: usize) {
    use core::arch::x86_64::*;
    debug_assert_eq!(outs.len(), 8);
    debug_assert_eq!(data.len(), nrows * 8);
    let main = nrows & !3;
    let src = data.as_ptr();
    unsafe {
        let mut i = 0;
        while i < main {
            for half in 0..2 {
                let v = [
                    _mm256_loadu_pd(src.add(i * 8 + 4 * half)),
                    _mm256_loadu_pd(src.add((i + 1) * 8 + 4 * half)),
                    _mm256_loadu_pd(src.add((i + 2) * 8 + 4 * half)),
                    _mm256_loadu_pd(src.add((i + 3) * 8 + 4 * half)),
                ];
                let c = transpose4x4(v);
                for (dj, col) in c.iter().enumerate() {
                    _mm256_storeu_pd(outs[4 * half + dj].as_mut_ptr().add(i), *col);
                }
            }
            i += 4;
        }
        for i in main..nrows {
            for (j, out) in outs.iter_mut().enumerate() {
                out[i] = *src.add(i * 8 + j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_columns() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let v = MultiVec::from_columns(&cols);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.width(), 2);
        assert_eq!(v.column(0), cols[0]);
        assert_eq!(v.column(1), cols[1]);
        assert_eq!(v.row(1), &[2.0, 5.0]);
    }

    #[test]
    fn set_column_matches_from_fn() {
        let mut v = MultiVec::zeros(4, 3);
        v.set_column(2, &[1.0, 2.0, 3.0, 4.0]);
        let w = MultiVec::from_fn(4, 3, |i, j| if j == 2 { (i + 1) as f64 } else { 0.0 });
        assert_eq!(v, w);
    }

    #[test]
    fn column_norms_per_column() {
        let v = MultiVec::from_columns(&[vec![3.0, 4.0], vec![0.0, 2.0]]);
        let n = v.column_norms();
        assert!((n[0] - 5.0).abs() < 1e-15);
        assert!((n[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_width_rejected() {
        MultiVec::zeros(4, 0);
    }

    #[test]
    fn gather_matches_from_columns() {
        let cols = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        assert_eq!(
            MultiVec::gather_columns(&refs),
            MultiVec::from_columns(&cols)
        );
    }

    #[test]
    fn scatter_round_trips_gather() {
        let cols = vec![vec![1.0, -2.0], vec![0.5, 4.0], vec![9.0, 0.0]];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let v = MultiVec::gather_columns(&refs);

        let mut single = vec![0.0; 2];
        v.scatter_column_into(1, &mut single);
        assert_eq!(single, cols[1]);

        let mut bufs = vec![vec![0.0; 2]; 3];
        let mut outs: Vec<&mut [f64]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        v.scatter_columns_into(&mut outs);
        assert_eq!(bufs, cols);
    }

    #[test]
    fn wide_gather_scatter_round_trip() {
        // k = 8 takes the AVX2 transpose fast path where available; an odd
        // row count exercises the scalar remainder rows too.
        for nrows in [1usize, 4, 7, 13] {
            let cols: Vec<Vec<f64>> = (0..8)
                .map(|j| (0..nrows).map(|i| (i * 8 + j) as f64).collect())
                .collect();
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut v = MultiVec::zeros(1, 1);
            v.gather_columns_into(&refs);
            assert_eq!(v, MultiVec::from_columns(&cols), "nrows={nrows}");

            let mut bufs = vec![vec![0.0; nrows]; 8];
            let mut outs: Vec<&mut [f64]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            v.scatter_columns_into(&mut outs);
            assert_eq!(bufs, cols, "nrows={nrows}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn gather_rejects_ragged_columns() {
        MultiVec::gather_columns(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "one output buffer per column")]
    fn scatter_rejects_wrong_buffer_count() {
        let v = MultiVec::zeros(2, 3);
        let mut a = [0.0; 2];
        let mut b = [0.0; 2];
        v.scatter_columns_into(&mut [&mut a, &mut b]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let v = MultiVec::zeros(0, 3);
        assert_eq!(v.nrows(), 0);
        assert_eq!(v.as_slice().len(), 0);
        assert_eq!(v.column_norms(), vec![0.0; 3]);
    }
}
