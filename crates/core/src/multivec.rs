//! Dense multi-vector storage for SpMM (`X ∈ R^{n×k}`).
//!
//! The multiple-right-hand-side workload stores its `k` dense vectors
//! **row-major**: all `k` values of logical row `i` are contiguous. This is
//! the layout that makes SpMM profitable — every fetched nonzero `a_ij`
//! multiplies the whole row `x[j, 0..k]` with unit-stride loads, so the
//! matrix stream is amortized over `k` flops per element instead of one
//! (the reuse-factor argument behind the analytic SpMM model in
//! `sparseopt-sim`).
//!
//! ```
//! use sparseopt_core::MultiVec;
//!
//! let x = MultiVec::from_fn(3, 2, |row, col| (row * 10 + col) as f64);
//! assert_eq!(x.row(1), &[10.0, 11.0]);
//! assert_eq!(x.column(1), vec![1.0, 11.0, 21.0]);
//! ```

/// A dense `nrows × k` block of column vectors, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiVec {
    nrows: usize,
    k: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An all-zero `nrows × k` multi-vector.
    ///
    /// # Panics
    /// Panics for `k == 0` (a multi-vector holds at least one column).
    pub fn zeros(nrows: usize, k: usize) -> Self {
        assert!(k > 0, "MultiVec needs at least one column");
        Self {
            nrows,
            k,
            data: vec![0.0; nrows * k],
        }
    }

    /// Builds from a per-entry function `f(row, col)`.
    pub fn from_fn(nrows: usize, k: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut v = Self::zeros(nrows, k);
        for i in 0..nrows {
            for j in 0..k {
                v.data[i * k + j] = f(i, j);
            }
        }
        v
    }

    /// Builds from `k` equal-length column vectors.
    ///
    /// # Panics
    /// Panics on zero columns or ragged lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Self {
        assert!(!cols.is_empty(), "MultiVec needs at least one column");
        let nrows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == nrows),
            "all columns must have equal length"
        );
        Self::from_fn(nrows, cols.len(), |i, j| cols[j][i])
    }

    /// Number of logical rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (right-hand sides), the reuse factor `k`.
    #[inline]
    pub fn width(&self) -> usize {
        self.k
    }

    /// Row `i` as a contiguous `k`-slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.k..(i + 1) * self.k]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.k..(i + 1) * self.k]
    }

    /// Copies column `j` out into a contiguous vector (strided read).
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        (0..self.nrows).map(|i| self.data[i * self.k + j]).collect()
    }

    /// Writes a contiguous vector into column `j` (strided write).
    ///
    /// # Panics
    /// Panics on column index or length mismatch.
    pub fn set_column(&mut self, j: usize, col: &[f64]) {
        assert!(j < self.k, "column {j} out of bounds (k = {})", self.k);
        assert_eq!(col.len(), self.nrows, "column length mismatch");
        for (i, &v) in col.iter().enumerate() {
            self.data[i * self.k + j] = v;
        }
    }

    /// The whole storage, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable storage, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Euclidean norm of each column.
    pub fn column_norms(&self) -> Vec<f64> {
        let mut sq = vec![0.0f64; self.k];
        for row in self.data.chunks_exact(self.k) {
            for (s, &v) in sq.iter_mut().zip(row) {
                *s += v * v;
            }
        }
        sq.iter().map(|s| s.sqrt()).collect()
    }

    /// Storage footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_columns() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let v = MultiVec::from_columns(&cols);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.width(), 2);
        assert_eq!(v.column(0), cols[0]);
        assert_eq!(v.column(1), cols[1]);
        assert_eq!(v.row(1), &[2.0, 5.0]);
    }

    #[test]
    fn set_column_matches_from_fn() {
        let mut v = MultiVec::zeros(4, 3);
        v.set_column(2, &[1.0, 2.0, 3.0, 4.0]);
        let w = MultiVec::from_fn(4, 3, |i, j| if j == 2 { (i + 1) as f64 } else { 0.0 });
        assert_eq!(v, w);
    }

    #[test]
    fn column_norms_per_column() {
        let v = MultiVec::from_columns(&[vec![3.0, 4.0], vec![0.0, 2.0]]);
        let n = v.column_norms();
        assert!((n[0] - 5.0).abs() < 1e-15);
        assert!((n[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_width_rejected() {
        MultiVec::zeros(4, 0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let v = MultiVec::zeros(0, 3);
        assert_eq!(v.nrows(), 0);
        assert_eq!(v.as_slice().len(), 0);
        assert_eq!(v.column_norms(), vec![0.0; 3]);
    }
}
