//! Compressed Sparse Row (CSR) — the baseline storage format of the paper
//! (Section II, Fig. 2).
//!
//! `rowptr[i]..rowptr[i+1]` delimits the nonzeros of row `i` inside the
//! parallel `colind`/`values` arrays. Column indices are `u32` (4 bytes), the
//! same width the paper's footprint analysis assumes.

use crate::coo::CooMatrix;

/// A sparse matrix in CSR form with `f64` values and `u32` column indices.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `rowptr` must have `nrows + 1`
    /// monotonically non-decreasing entries starting at 0 and ending at
    /// `colind.len()`, `colind`/`values` must have equal length, and all
    /// column indices must be `< ncols`.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1, "rowptr must have nrows+1 entries");
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(
            *rowptr.last().expect("nonempty"),
            colind.len(),
            "rowptr must end at nnz"
        );
        assert!(
            rowptr.windows(2).all(|w| w[0] <= w[1]),
            "rowptr must be non-decreasing"
        );
        assert_eq!(colind.len(), values.len(), "colind/values length mismatch");
        assert!(
            colind.iter().all(|&c| (c as usize) < ncols),
            "column index out of bounds"
        );
        Self {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Converts from COO, sorting triplets and summing duplicates.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut sorted = coo.clone();
        sorted.sort_and_dedup();
        let (rows, cols, vals) = sorted.triplets();

        let mut rowptr = vec![0usize; coo.nrows() + 1];
        for &r in rows {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..coo.nrows() {
            rowptr[i + 1] += rowptr[i];
        }
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            rowptr,
            colind: cols.to_vec(),
            values: vals.to_vec(),
        }
    }

    /// Converts back to COO (row-major triplet order).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                coo.push(i, self.colind[k] as usize, self.values[k]);
            }
        }
        coo
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzero elements.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column index array (`nnz` entries).
    #[inline]
    pub fn colind(&self) -> &[u32] {
        &self.colind
    }

    /// The nonzero values array (`nnz` entries).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (structure is immutable once built).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of nonzeros in row `i` (`nnz_i` in Table I).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Iterates `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            self.row_cols(i)
                .iter()
                .zip(self.row_vals(i))
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// In-memory footprint of the format in bytes
    /// (`S_format = 8·NNZ + 4·NNZ + 8·(N+1)` for this layout), the
    /// `M_A_format,min` term of the paper's bandwidth bounds.
    pub fn footprint_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
            + self.colind.len() * std::mem::size_of::<u32>()
            + self.rowptr.len() * std::mem::size_of::<usize>()
    }

    /// Footprint of the values array alone — the paper's `M_A,min` for
    /// `P_peak`, which assumes indexing structures compress away entirely.
    pub fn values_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// Extracts the diagonal (zero where absent). Used by Jacobi
    /// preconditioning and the triangular-solve kernels.
    ///
    /// Duplicate diagonal entries (possible via [`Self::from_raw`] — the COO
    /// path sums duplicates before conversion) are **summed**, matching the
    /// matrix the format logically represents. Taking the first entry and
    /// stopping, as an earlier revision did, silently dropped the rest.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                if self.colind[k] as usize == i {
                    *di += self.values[k];
                }
            }
        }
        d
    }

    /// Extracts the lower triangle (`col <= row` when `with_diag`, else
    /// `col < row`) as a CSR matrix of the same shape. Entry order within a
    /// row is preserved. Used to build triangular-solve operands and the
    /// incomplete factorizations.
    pub fn lower_triangle(&self, with_diag: bool) -> CsrMatrix {
        self.filter_triangle(|c, i| if with_diag { c <= i } else { c < i })
    }

    /// Extracts the upper triangle (`col >= row` when `with_diag`, else
    /// `col > row`) as a CSR matrix of the same shape.
    pub fn upper_triangle(&self, with_diag: bool) -> CsrMatrix {
        self.filter_triangle(|c, i| if with_diag { c >= i } else { c > i })
    }

    fn filter_triangle(&self, keep: impl Fn(usize, usize) -> bool) -> CsrMatrix {
        let mut rowptr = vec![0usize; self.nrows + 1];
        let mut colind = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.nrows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                if keep(self.colind[k] as usize, i) {
                    colind.push(self.colind[k]);
                    values.push(self.values[k]);
                }
            }
            rowptr[i + 1] = colind.len();
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colind,
            values,
        }
    }

    /// Returns a copy restricted to the given rows (used by matrix
    /// decomposition and by partition-local analysis).
    pub fn extract_rows(&self, rows: &[usize]) -> CooMatrix {
        let mut coo = CooMatrix::new(self.nrows, self.ncols);
        for &i in rows {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                coo.push(i, self.colind[k] as usize, self.values[k]);
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // Matrix from the paper's Fig. 5:
        // [7.5 .   .   .   .   . ]
        // [6.8 5.7 3.8 1.0 1.0 1.0]
        // [2.4 6.2 .   .   .   . ]
        // [9.7 .   .   2.3 .   . ]
        // [.   .   .   .   5.8 . ]
        // [.   .   .   .   6.6 . ]
        let mut coo = CooMatrix::new(6, 6);
        for (r, c, v) in [
            (0, 0, 7.5),
            (1, 0, 6.8),
            (1, 1, 5.7),
            (1, 2, 3.8),
            (1, 3, 1.0),
            (1, 4, 1.0),
            (1, 5, 1.0),
            (2, 0, 2.4),
            (2, 1, 6.2),
            (3, 0, 9.7),
            (3, 3, 2.3),
            (4, 4, 5.8),
            (5, 4, 6.6),
        ] {
            coo.push(r, c, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn fig5_rowptr_matches_paper() {
        let m = sample();
        assert_eq!(m.rowptr(), &[0, 1, 7, 9, 11, 12, 13]);
        assert_eq!(m.colind(), &[0, 0, 1, 2, 3, 4, 5, 0, 1, 0, 3, 4, 4]);
    }

    #[test]
    fn coo_round_trip() {
        let m = sample();
        let back = CsrMatrix::from_coo(&m.to_coo());
        assert_eq!(m, back);
    }

    #[test]
    fn row_accessors() {
        let m = sample();
        assert_eq!(m.row_nnz(1), 6);
        assert_eq!(m.row_cols(2), &[0, 1]);
        assert_eq!(m.row_vals(3), &[9.7, 2.3]);
    }

    #[test]
    fn diagonal_extraction() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![7.5, 5.7, 0.0, 2.3, 5.8, 0.0]);
    }

    #[test]
    fn footprint_accounts_all_arrays() {
        let m = sample();
        assert_eq!(m.footprint_bytes(), 13 * 8 + 13 * 4 + 7 * 8);
        assert_eq!(m.values_bytes(), 13 * 8);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(3, 3, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "rowptr must end at nnz")]
    fn from_raw_validates() {
        CsrMatrix::from_raw(1, 1, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    fn diagonal_sums_duplicate_entries() {
        // Regression: the extractor used to take the *first* (col == row)
        // entry and break, silently dropping duplicates that from_raw can
        // legally carry. The represented matrix has a_00 = 1.5 + 2.5.
        let m = CsrMatrix::from_raw(
            2,
            2,
            vec![0, 3, 4],
            vec![0, 0, 1, 1],
            vec![1.5, 2.5, 9.0, 4.0],
        );
        assert_eq!(m.diagonal(), vec![4.0, 4.0]);
    }

    #[test]
    fn triangle_split_partitions_entries() {
        let m = sample();
        let lower = m.lower_triangle(true);
        let strict_upper = m.upper_triangle(false);
        assert_eq!(lower.nnz() + strict_upper.nnz(), m.nnz());
        for (i, c, _) in lower.iter() {
            assert!(c <= i);
        }
        for (i, c, _) in strict_upper.iter() {
            assert!(c > i);
        }
        // Strict lower + diagonal + strict upper reassemble the matrix.
        let mut coo = m.lower_triangle(false).to_coo();
        for (i, c, v) in strict_upper.iter() {
            coo.push(i, c, v);
        }
        for (i, &d) in m.diagonal().iter().enumerate() {
            if d != 0.0 {
                coo.push(i, i, d);
            }
        }
        assert_eq!(CsrMatrix::from_coo(&coo), m);
    }
}
