//! # sparseopt-core
//!
//! Sparse matrix storage formats, SpMV kernels, and the parallel execution
//! substrate (thread pool, partitioners, loop schedules) underlying the
//! `sparseopt` adaptive SpMV optimizer — a reproduction of Elafrou, Goumas &
//! Koziris, *"Performance Analysis and Optimization of Sparse Matrix-Vector
//! Multiplication on Modern Multi- and Many-Core Processors"* (ICPP 2017).
//!
//! ## Layout
//!
//! - [`coo`] / [`csr`] — interchange and baseline compute formats.
//! - [`delta`] — delta-compressed column indices (MB optimization).
//! - [`decomposed`] — long-row decomposition (IMB optimization, Fig. 5/6).
//! - [`kernels`] — the format-erased operator layer: one
//!   [`kernels::SparseLinOp`] implementation per storage format, each
//!   covering the `{NoTrans, Trans} × {vector, multi-vector}` application
//!   space (Fig. 2 baseline, Table II optimizations, Section III-B
//!   micro-benchmarks), plus the merge-path nonzero-split
//!   [`kernels::MergeCsr`] operator for residually imbalanced matrices.
//! - [`sss`] — symmetric sparse skyline storage (lower triangle + dense
//!   diagonal): the MB-class traffic halver behind [`kernels::SymCsr`],
//!   which computes `y = L·x + D·x + Lᵀ·x` in one sweep.
//! - [`multivec`] — dense row-major multi-vector (`X ∈ R^{n×k}`) backing the
//!   multiple-right-hand-side workload; each fetched nonzero is reused `k`
//!   times, amortizing the matrix stream.
//! - [`partition`] / [`schedule`] / [`pool`] — whole-row and merge-path
//!   (nonzero-split) partitioning, loop scheduling policies, and the timed
//!   thread pool.
//!
//! ## Quick start
//!
//! ```
//! use sparseopt_core::prelude::*;
//! use std::sync::Arc;
//!
//! let mut coo = CooMatrix::new(4, 4);
//! for i in 0..4 { coo.push(i, i, 2.0); }
//! let csr = Arc::new(CsrMatrix::from_coo(&coo));
//! let kernel = ParallelCsr::baseline(csr, ExecCtx::new(2));
//!
//! let x = vec![1.0; 4];
//! let mut y = vec![0.0; 4];
//! kernel.spmv(&x, &mut y);
//! assert_eq!(y, vec![2.0; 4]);
//! ```

pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod decomposed;
pub mod delta;
pub mod ell;
pub mod kernels;
pub mod multivec;
pub mod partition;
pub mod pool;
pub mod schedule;
pub mod sell;
pub mod sss;
pub mod util;

/// Convenient re-exports of the types used by nearly every consumer.
pub mod prelude {
    pub use crate::bcsr::BcsrMatrix;
    pub use crate::coo::CooMatrix;
    pub use crate::csr::CsrMatrix;
    pub use crate::decomposed::DecomposedCsrMatrix;
    pub use crate::delta::{DeltaCsrMatrix, DeltaWidth};
    pub use crate::ell::EllMatrix;
    pub use crate::kernels::{
        gflops, Apply, BcsrKernel, BuildReason, CsrKernelConfig, DecomposedKernel, DeltaKernel,
        EllKernel, InnerLoop, LevelSets, MergeCsr, OpCapabilities, ParallelCsr, SellKernel,
        SerialCsr, ShardSpec, ShardedOp, SparseLinOp, SpmmKernel, SpmvKernel, SymCsr, SymGsError,
        SymGsKernel, TrsvAlgo, TrsvDirection, TrsvError, TrsvKernel, UnitStrideCsr,
    };
    pub use crate::multivec::MultiVec;
    pub use crate::partition::{MergeSegment, Partition, Partition2d};
    pub use crate::pool::ExecCtx;
    pub use crate::schedule::Schedule;
    pub use crate::sell::{sell_padded_slots, SellMatrix, SELL_C, SELL_SIGMA};
    pub use crate::sss::SssCsr;
}

pub use prelude::*;
