//! SELL-C-σ format (sliced ELLPACK with sorting window σ) — the storage
//! layer of the vectorization fix.
//!
//! The gather-based CSR SIMD kernel loses to scalar on short-row matrices:
//! every row pays a dispatch call, a horizontal reduction, and a scalar
//! remainder that covers most of the row. SELL-C-σ removes the per-row
//! bottleneck structurally. Rows are sorted by descending length inside
//! windows of `σ` rows (so the permutation stays local), grouped into chunks
//! of `C = SELL_C` consecutive rows, and each chunk is stored **slot-major**:
//! slot `j` of all `C` lanes is contiguous, so the inner loop streams
//! `vals`/`cols` with stride 1 and keeps `C` independent accumulators — no
//! per-row reduction, no remainder until the chunk's tail columns.
//!
//! Padding is bounded by the sorting: a chunk is padded to its longest row,
//! and after the σ-window sort rows of similar length share chunks, so the
//! padded slot count `Σ_chunks C · max_len(chunk)` stays near `nnz` for
//! everything but heavy-tailed matrices. The tail case (one hub row drags a
//! chunk wide) is (a) skipped at run time — lane lengths are stored sorted,
//! so kernels shrink the active lane count in the tail columns instead of
//! multiplying stored zeros — and (b) surfaced to the optimizer through
//! [`sell_padded_slots`] so the sim can veto SELL where padding would blow
//! the memory stream (the ELL failure mode, see [`crate::ell`]).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Chunk height `C`: the number of rows stored interleaved per chunk, i.e.
/// the number of independent accumulators the kernels keep live. Eight
/// doubles are two AVX2 vectors — enough independent FMA chains to hide the
/// latency the per-row CSR reduction serializes on.
pub const SELL_C: usize = 8;

/// Default sorting window σ: rows are length-sorted only inside windows of
/// this many rows, so the row permutation stays cache-local while chunks
/// still group rows of similar length. Rounded up to a multiple of
/// [`SELL_C`] at construction.
pub const SELL_SIGMA: usize = 4096;

/// SELL-C-σ storage: slot-major padded chunks of `C` length-sorted rows.
#[derive(Clone, Debug, PartialEq)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    sigma: usize,
    /// Cumulative slot offsets per chunk (`nchunks + 1` entries): chunk `c`
    /// owns `cols[chunk_ptr[c]..chunk_ptr[c+1]]`, which is
    /// `C · chunk_width(c)` slots.
    chunk_ptr: Vec<usize>,
    /// Column indices, slot-major per chunk: slot `j` of lane `r` in chunk
    /// `c` lives at `chunk_ptr[c] + j·C + r`. Padded slots hold column 0.
    cols: Vec<u32>,
    /// Values in the same layout; padded slots hold 0.0, so padded slots are
    /// arithmetic no-ops.
    vals: Vec<f64>,
    /// Length of each lane (`nchunks · C` entries, descending within each
    /// chunk thanks to the sort); lanes past `nrows` in the final chunk have
    /// length 0.
    lane_len: Vec<u32>,
    /// Row permutation: lane position `p` holds original row `perm[p]`
    /// (`nrows` entries).
    perm: Vec<usize>,
}

impl SellMatrix {
    /// Converts from CSR with the default sorting window [`SELL_SIGMA`].
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_csr_with(csr, SELL_SIGMA)
    }

    /// Converts from CSR, sorting rows by descending length inside windows
    /// of `sigma` rows (rounded up to a multiple of [`SELL_C`]).
    pub fn from_csr_with(csr: &CsrMatrix, sigma: usize) -> Self {
        let nrows = csr.nrows();
        let sigma = sigma.max(SELL_C).next_multiple_of(SELL_C);
        let perm = sorted_perm(csr, sigma);

        let nchunks = nrows.div_ceil(SELL_C);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0usize);
        let mut lane_len = vec![0u32; nchunks * SELL_C];
        for c in 0..nchunks {
            let mut width = 0usize;
            for r in 0..SELL_C {
                let p = c * SELL_C + r;
                let len = if p < nrows { csr.row_nnz(perm[p]) } else { 0 };
                lane_len[p] = len as u32;
                width = width.max(len);
            }
            chunk_ptr.push(chunk_ptr[c] + width * SELL_C);
        }

        let slots = *chunk_ptr.last().unwrap();
        let mut cols = vec![0u32; slots];
        let mut vals = vec![0.0f64; slots];
        for (c, &base) in chunk_ptr[..nchunks].iter().enumerate() {
            for r in 0..SELL_C {
                let p = c * SELL_C + r;
                if p >= nrows {
                    continue;
                }
                let (rc, rv) = (csr.row_cols(perm[p]), csr.row_vals(perm[p]));
                for (j, (&col, &val)) in rc.iter().zip(rv).enumerate() {
                    cols[base + j * SELL_C + r] = col;
                    vals[base + j * SELL_C + r] = val;
                }
            }
        }

        Self {
            nrows,
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            sigma,
            chunk_ptr,
            cols,
            vals,
            lane_len,
            perm,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (unpadded) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The sorting window actually used (multiple of [`SELL_C`]).
    #[inline]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of `C`-row chunks.
    #[inline]
    pub fn nchunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// Cumulative slot offsets per chunk (`nchunks + 1` entries) — also the
    /// padded-work weight vector the kernels partition by.
    #[inline]
    pub fn chunk_ptr(&self) -> &[usize] {
        &self.chunk_ptr
    }

    /// Slot count of chunk `c` divided by `C`: the padded width.
    #[inline]
    pub fn chunk_width(&self, c: usize) -> usize {
        (self.chunk_ptr[c + 1] - self.chunk_ptr[c]) / SELL_C
    }

    /// Column indices of chunk `c`, slot-major (`width · C` entries).
    #[inline]
    pub fn chunk_cols(&self, c: usize) -> &[u32] {
        &self.cols[self.chunk_ptr[c]..self.chunk_ptr[c + 1]]
    }

    /// Values of chunk `c`, slot-major (`width · C` entries).
    #[inline]
    pub fn chunk_vals(&self, c: usize) -> &[f64] {
        &self.vals[self.chunk_ptr[c]..self.chunk_ptr[c + 1]]
    }

    /// Lane lengths of chunk `c` (`C` entries, descending).
    #[inline]
    pub fn chunk_lens(&self, c: usize) -> &[u32] {
        &self.lane_len[c * SELL_C..(c + 1) * SELL_C]
    }

    /// The lane → original-row permutation (`nrows` entries).
    #[inline]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Total padded slots (`Σ_chunks C · width`).
    #[inline]
    pub fn padded_slots(&self) -> usize {
        *self.chunk_ptr.last().unwrap_or(&0)
    }

    /// Fraction of stored slots that are padding (0 = perfectly regular).
    pub fn padding_ratio(&self) -> f64 {
        let slots = self.padded_slots();
        if slots == 0 {
            0.0
        } else {
            1.0 - self.nnz as f64 / slots as f64
        }
    }

    /// Footprint in bytes, padding and permutation included — the traffic
    /// quantity the sim charges against the SELL stream.
    pub fn footprint_bytes(&self) -> usize {
        self.vals.len() * 8
            + self.cols.len() * 4
            + self.lane_len.len() * 4
            + self.perm.len() * 8
            + self.chunk_ptr.len() * 8
    }

    /// `y = A·x`: serial reference sweep (tests and conversion checks; the
    /// parallel operator is [`crate::kernels::SellKernel`]).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        for c in 0..self.nchunks() {
            let (cols, vals) = (self.chunk_cols(c), self.chunk_vals(c));
            let lens = self.chunk_lens(c);
            let mut acc = [0.0f64; SELL_C];
            for (r, a) in acc.iter_mut().enumerate() {
                for j in 0..lens[r] as usize {
                    let e = j * SELL_C + r;
                    *a += vals[e] * x[cols[e] as usize];
                }
            }
            for (r, &a) in acc.iter().enumerate() {
                let p = c * SELL_C + r;
                if p < self.nrows {
                    y[self.perm[p]] = a;
                }
            }
        }
    }

    /// Converts back to COO, skipping padding (round-trip checks).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz);
        for c in 0..self.nchunks() {
            let (cols, vals) = (self.chunk_cols(c), self.chunk_vals(c));
            let lens = self.chunk_lens(c);
            for (r, &len) in lens.iter().enumerate() {
                let p = c * SELL_C + r;
                if p >= self.nrows {
                    continue;
                }
                for j in 0..len as usize {
                    let e = j * SELL_C + r;
                    coo.push(self.perm[p], cols[e] as usize, vals[e]);
                }
            }
        }
        coo
    }
}

/// Row permutation of the σ-window descending-length sort (stable, so equal
/// lengths keep their original order and the layout is deterministic).
fn sorted_perm(csr: &CsrMatrix, sigma: usize) -> Vec<usize> {
    let nrows = csr.nrows();
    let mut perm: Vec<usize> = (0..nrows).collect();
    for window in perm.chunks_mut(sigma) {
        window.sort_by_key(|&i| std::cmp::Reverse(csr.row_nnz(i)));
    }
    perm
}

/// Padded slot count a SELL-C-σ conversion of `csr` would store, without
/// building it — the cheap `O(nnz + nrows log σ)` probe the feature
/// extractor and the sim's traffic model share to price SELL padding.
pub fn sell_padded_slots(csr: &CsrMatrix, sigma: usize) -> usize {
    let sigma = sigma.max(SELL_C).next_multiple_of(SELL_C);
    let mut lens: Vec<usize> = (0..csr.nrows()).map(|i| csr.row_nnz(i)).collect();
    let mut slots = 0usize;
    for window in lens.chunks_mut(sigma) {
        window.sort_unstable_by(|a, b| b.cmp(a));
        for chunk in window.chunks(SELL_C) {
            slots += chunk[0] * SELL_C;
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SparseLinOp;

    fn sample(lens: &[usize]) -> CsrMatrix {
        let n = lens.len();
        let w = lens.iter().copied().max().unwrap_or(1).max(n);
        let mut coo = CooMatrix::new(n, w);
        for (i, &l) in lens.iter().enumerate() {
            for j in 0..l {
                coo.push(i, (i + j * 3) % w, (i * 10 + j) as f64 + 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn regular_matrix_has_no_padding() {
        let csr = sample(&[4; 16]);
        let sell = SellMatrix::from_csr(&csr);
        assert_eq!(sell.nchunks(), 2);
        assert_eq!(sell.padding_ratio(), 0.0);
        assert_eq!(sell.padded_slots(), csr.nnz());
        assert_eq!(sell_padded_slots(&csr, SELL_SIGMA), csr.nnz());
    }

    #[test]
    fn sorting_confines_the_hub_to_one_chunk() {
        // One 64-long hub among 2-long rows: after the descending sort the
        // hub shares its chunk with seven 2-rows, every other chunk is
        // padding-free, so the padded slots stay ≪ ELL's nrows · 64.
        let mut lens = vec![2usize; 64];
        lens[11] = 64;
        let csr = sample(&lens);
        let sell = SellMatrix::from_csr(&csr);
        assert_eq!(sell.padded_slots(), 64 * SELL_C + 2 * SELL_C * 7);
        assert_eq!(sell.padded_slots(), sell_padded_slots(&csr, SELL_SIGMA));
        // Lane lengths descend within each chunk (the tail-skip invariant).
        for c in 0..sell.nchunks() {
            let l = sell.chunk_lens(c);
            assert!(l.windows(2).all(|w| w[0] >= w[1]), "chunk {c}: {l:?}");
        }
    }

    #[test]
    fn sigma_windows_keep_the_permutation_local() {
        let mut lens = vec![1usize; 64];
        lens[0] = 5; // window 0's longest
        lens[40] = 9; // window 1's longest
        let csr = sample(&lens);
        let sell = SellMatrix::from_csr_with(&csr, 32);
        assert_eq!(sell.sigma(), 32);
        // Each window's longest row leads its own window — the sort never
        // moves a row across a σ boundary.
        assert_eq!(sell.perm()[0], 0);
        assert_eq!(sell.perm()[32], 40);
    }

    #[test]
    fn spmv_matches_csr_reference() {
        let csr = sample(&[3, 7, 0, 5, 1, 4, 0, 0, 2, 9, 9, 1]);
        let sell = SellMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut want = vec![0.0; csr.nrows()];
        crate::kernels::SerialCsr::new(std::sync::Arc::new(csr.clone())).spmv(&x, &mut want);
        let mut got = vec![f64::NAN; csr.nrows()];
        sell.spmv(&x, &mut got);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn round_trip_preserves_matrix() {
        for lens in [&[2usize, 5, 3, 0, 1][..], &[0; 9], &[7; 23]] {
            let csr = sample(lens);
            let sell = SellMatrix::from_csr(&csr);
            assert_eq!(CsrMatrix::from_coo(&sell.to_coo()), csr, "lens {lens:?}");
        }
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let sell = SellMatrix::from_csr(&csr);
        assert_eq!(sell.nchunks(), 1);
        assert_eq!(sell.padded_slots(), 0);
        let mut y = vec![1.0; 3];
        sell.spmv(&[0.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
