//! ELLPACK (ELL) format — a comparison format from the SpMV literature the
//! paper's related work surveys (fixed-width rows, padding with zeros).
//!
//! ELL stores a dense `nrows × width` slab where `width = max(nnz_i)`;
//! regular matrices vectorize beautifully, but a single long row blows up
//! the padding — exactly the trade-off that motivates the paper's
//! *decomposition* optimization for skewed matrices. Including ELL lets the
//! benches quantify that failure mode directly.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;

/// Sentinel column for padded slots.
pub const PAD: u32 = u32::MAX;

/// ELLPACK storage: column-major `nrows × width` slabs of values and column
/// indices, padded rows marked with a sentinel.
#[derive(Clone, Debug, PartialEq)]
pub struct EllMatrix {
    nrows: usize,
    ncols: usize,
    width: usize,
    /// Column-major: slot `k` of row `i` lives at `k * nrows + i`.
    colind: Vec<u32>,
    values: Vec<f64>,
    nnz: usize,
}

impl EllMatrix {
    /// Converts from CSR. `width` becomes the maximum row length.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let width = (0..nrows).map(|i| csr.row_nnz(i)).max().unwrap_or(0);
        let mut colind = vec![PAD; nrows * width];
        let mut values = vec![0.0f64; nrows * width];
        for i in 0..nrows {
            for (k, (&c, &v)) in csr.row_cols(i).iter().zip(csr.row_vals(i)).enumerate() {
                colind[k * nrows + i] = c;
                values[k * nrows + i] = v;
            }
        }
        Self {
            nrows,
            ncols: csr.ncols(),
            width,
            colind,
            values,
            nnz: csr.nnz(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored (unpadded) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slab width (maximum row length).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column indices of slot `s` for all rows (`nrows` entries; padded
    /// slots hold [`PAD`]).
    #[inline]
    pub fn slot_cols(&self, s: usize) -> &[u32] {
        &self.colind[s * self.nrows..(s + 1) * self.nrows]
    }

    /// Values of slot `s` for all rows (`nrows` entries; padded slots are 0).
    #[inline]
    pub fn slot_vals(&self, s: usize) -> &[f64] {
        &self.values[s * self.nrows..(s + 1) * self.nrows]
    }

    /// Fraction of the slab that is padding (0 = perfectly regular matrix).
    pub fn padding_ratio(&self) -> f64 {
        let slots = self.nrows * self.width;
        if slots == 0 {
            0.0
        } else {
            1.0 - self.nnz as f64 / slots as f64
        }
    }

    /// Footprint in bytes, padding included — the quantity that explodes on
    /// skewed matrices.
    pub fn footprint_bytes(&self) -> usize {
        self.values.len() * 8 + self.colind.len() * 4
    }

    /// `y = A·x` over the slab (row loop with the slab's fixed trip count).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        y.fill(0.0);
        for k in 0..self.width {
            let cols = &self.colind[k * self.nrows..(k + 1) * self.nrows];
            let vals = &self.values[k * self.nrows..(k + 1) * self.nrows];
            for i in 0..self.nrows {
                let c = cols[i];
                if c != PAD {
                    y[i] += vals[i] * x[c as usize];
                }
            }
        }
    }

    /// Converts back to COO (round-trip checks).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz);
        for i in 0..self.nrows {
            for k in 0..self.width {
                let c = self.colind[k * self.nrows + i];
                if c != PAD {
                    coo.push(i, c as usize, self.values[k * self.nrows + i]);
                }
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SparseLinOp;

    fn sample(lens: &[usize]) -> CsrMatrix {
        let n = lens.len();
        let w = lens.iter().copied().max().unwrap_or(1).max(n);
        let mut coo = CooMatrix::new(n, w);
        for (i, &l) in lens.iter().enumerate() {
            for j in 0..l {
                coo.push(i, (i + j * 3) % w, (i * 10 + j) as f64 + 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn regular_matrix_has_no_padding() {
        let csr = sample(&[4; 8]);
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.width(), 4);
        assert_eq!(ell.padding_ratio(), 0.0);
    }

    #[test]
    fn skewed_matrix_pads_heavily() {
        let mut lens = vec![2usize; 32];
        lens[0] = 32;
        let csr = sample(&lens);
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.width(), 32);
        assert!(ell.padding_ratio() > 0.8, "padding {}", ell.padding_ratio());
        assert!(ell.footprint_bytes() > 3 * csr.footprint_bytes());
    }

    #[test]
    fn spmv_matches_csr_reference() {
        let csr = sample(&[3, 7, 0, 5, 1, 4]);
        let ell = EllMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut want = vec![0.0; csr.nrows()];
        crate::kernels::SerialCsr::new(std::sync::Arc::new(csr.clone())).spmv(&x, &mut want);
        let mut got = vec![0.0; csr.nrows()];
        ell.spmv(&x, &mut got);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let csr = sample(&[2, 5, 3, 0, 1]);
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(CsrMatrix::from_coo(&ell.to_coo()), csr);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.width(), 0);
        let mut y = vec![1.0; 3];
        ell.spmv(&[0.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
