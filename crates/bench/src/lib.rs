//! # sparseopt-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1` | Fig. 1 — per-optimization speedups on KNC |
//! | `fig3` | Fig. 3 — baseline + per-class bounds on KNC |
//! | `fig7` | Fig. 7a/b/c — optimizer landscape on KNC/KNL/Broadwell |
//! | `table4` | Table IV — feature-guided classifier LOO accuracy |
//! | `table5` | Table V — amortization iteration counts on KNL |
//! | `tune` | Fig. 4 hyperparameter grid search (`T_ML`, `T_IMB`) |
//! | `ci_bench` | bench-regression gate: pinned micro-suite → `BENCH_TRAJECTORY.json` (stable name), fails on >15% regression vs the committed baseline |
//!
//! The `benches/` directory holds criterion micro-benchmarks of the real
//! host kernels (timing on this machine, not the modeled platforms),
//! including the `merge_spmv` group comparing the merge-path operator
//! against every whole-row schedule.

pub mod labeling;
pub mod report;

pub use labeling::{label_suite, train_feature_classifier, LabeledSuiteMatrix};
pub use report::Table;
