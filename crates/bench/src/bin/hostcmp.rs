//! Host-machine comparison: runs the *real* kernels (not the model) over a
//! subset of the suite on this machine, with profile-guided classification
//! driven by the host bounds profiler. This is the wall-clock analogue of
//! Fig. 7, on whatever CPU executes it.
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin hostcmp [reps]`

use sparseopt_bench::report::Table;
use sparseopt_classifier::{BoundsProfiler, HostBoundsProfiler, ProfileGuidedClassifier};
use sparseopt_core::prelude::*;
use sparseopt_matrix::MatrixFeatures;
use sparseopt_optimizer::{
    inspector_executor_host_kernel, mkl_host_kernel, single_and_pair_plans, OptimizationPlan,
};
use std::time::Instant;

fn time_gflops(k: &dyn SparseLinOp, reps: usize) -> f64 {
    let (nrows, ncols) = k.shape();
    let x = vec![1.0f64; ncols];
    let mut y = vec![0.0f64; nrows];
    k.spmv(&x, &mut y); // warm
    let t0 = Instant::now();
    for _ in 0..reps {
        k.spmv(&x, &mut y);
    }
    std::hint::black_box(&y);
    gflops(k.flops(1) * reps as f64, t0.elapsed().as_secs_f64())
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let ctx = ExecCtx::host();
    println!(
        "host comparison: {} threads, {} reps per kernel\n",
        ctx.nthreads(),
        reps
    );

    let profiler = HostBoundsProfiler::new(ctx.clone()).with_reps(reps.min(8));
    let classifier = ProfileGuidedClassifier::new();
    println!("profiler: {}\n", profiler.label());

    let names = [
        "poisson3Db",
        "FEM_3D_thermal2",
        "webbase-1M",
        "ASIC_680k",
        "consph",
        "SiO2",
    ];
    let mut table = Table::new(vec![
        "matrix", "MKL-like", "IE-like", "baseline", "oracle", "adaptive", "classes",
    ]);
    for name in names {
        let m = sparseopt_matrix::by_name(name).expect("suite matrix");
        let csr = m.csr.clone();
        let features = MatrixFeatures::extract(&csr, 32 * 1024 * 1024);

        let mkl = time_gflops(mkl_host_kernel(&csr, ctx.clone()).as_ref(), reps);
        let ie = time_gflops(
            inspector_executor_host_kernel(&csr, ctx.clone()).as_ref(),
            reps,
        );
        let baseline = time_gflops(&ParallelCsr::baseline(csr.clone(), ctx.clone()), reps);

        // Oracle: time every plan for real, keep the best.
        let mut oracle = baseline;
        for plan in single_and_pair_plans(&features) {
            let k = plan.build_host_kernel(&csr, ctx.clone());
            oracle = oracle.max(time_gflops(k.as_ref(), reps));
        }

        // Adaptive: classify on measured host bounds, build, time.
        let bounds = profiler.measure(&csr);
        let classes = classifier.classify(&bounds);
        let plan = OptimizationPlan::from_classes(classes, &features);
        let adaptive = if plan.is_noop() {
            baseline
        } else {
            time_gflops(plan.build_host_kernel(&csr, ctx.clone()).as_ref(), reps)
        };

        table.row(vec![
            name.to_string(),
            format!("{mkl:.3}"),
            format!("{ie:.3}"),
            format!("{baseline:.3}"),
            format!("{oracle:.3}"),
            format!("{adaptive:.3}"),
            classes.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "All numbers are Gflop/s measured on this machine. With few cores the\n\
         scheduling/imbalance optimizations have little room; the modeled\n\
         platforms (fig7) are the faithful reproduction of the paper's testbeds."
    );
}
