//! Regenerates **Table IV** of the paper: "Feature-guided decision tree
//! classifiers on KNC" — Leave-One-Out cross-validation accuracy (Exact and
//! Partial Match Ratio) of the two feature sets, `O(N)` and `O(NNZ)`.
//!
//! The 210-matrix training sweep is labeled by the profile-guided classifier
//! on the KNC model; each feature set's decision tree is then evaluated with
//! LOO CV (210 train/test experiments per set).
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin table4 [--platform knc|knl|bdw]`

use sparseopt_bench::label_suite;
use sparseopt_bench::report::Table;
use sparseopt_classifier::{FeatureGuidedClassifier, LabeledMatrix};
use sparseopt_matrix::FeatureSet;
use sparseopt_ml::TreeParams;
use sparseopt_sim::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform = match args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("knl") => Platform::knl(),
        Some("bdw") | Some("broadwell") => Platform::broadwell(),
        _ => Platform::knc(),
    };

    eprintln!(
        "[table4] generating and labeling the 210-matrix training sweep on {} ...",
        platform.name
    );
    let labeled = label_suite(sparseopt_matrix::training_suite(), &platform);
    let samples: Vec<LabeledMatrix> = labeled.iter().map(|l| l.to_labeled()).collect();

    // Class distribution sanity line (diversity drives tree quality).
    let mut class_counts = [0usize; 5];
    for s in &samples {
        if s.classes.is_empty() {
            class_counts[4] += 1;
        }
        for c in s.classes.iter() {
            class_counts[c.index()] += 1;
        }
    }
    println!(
        "label distribution over {} matrices: MB {}, ML {}, IMB {}, CMP {}, none {}\n",
        samples.len(),
        class_counts[0],
        class_counts[1],
        class_counts[2],
        class_counts[3],
        class_counts[4]
    );

    let mut table = Table::new(vec![
        "features",
        "complexity",
        "accuracy exact (%)",
        "accuracy partial (%)",
    ]);
    for set in [FeatureSet::LinearInRows, FeatureSet::LinearInNnz] {
        eprintln!(
            "[table4] LOO CV over {} samples, {:?} ...",
            samples.len(),
            set
        );
        let acc = FeatureGuidedClassifier::loo_accuracy(&samples, set, TreeParams::default());
        table.row(vec![
            set.names().join(" "),
            set.complexity().to_string(),
            format!("{:.0}", acc.exact * 100.0),
            format!("{:.0}", acc.partial * 100.0),
        ]);
    }

    println!(
        "== Table IV: feature-guided decision tree classifiers on {} (LOO CV) ==\n",
        platform.name
    );
    print!("{}", table.render());
    println!(
        "\n(paper, KNC: O(N) set 80% exact / 95% partial; O(NNZ) set 84% exact / 100% partial)"
    );
}
