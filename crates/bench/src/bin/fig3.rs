//! Regenerates **Fig. 3** of the paper: "SpMV performance using the CSR
//! format and per-class upper bounds on Intel Xeon Phi (KNC)".
//!
//! For every suite matrix: the modeled baseline `P_CSR` plus the bounds
//! `P_peak`, `P_ML`, `P_IMB`, `P_CMP`, `P_MB` of Section III-B. The spread
//! between baseline and the individual bounds exposes the bottleneck
//! diversity the paper's optimizer exploits.
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin fig3 [--csv] [--platform knc|knl|bdw]`

use sparseopt_bench::report::{gf, Table};
use sparseopt_classifier::{ProfileGuidedClassifier, SimBoundsProfiler};
use sparseopt_sim::Platform;

fn platform_from_args() -> Platform {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--platform") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("knl") => Platform::knl(),
            Some("bdw") | Some("broadwell") => Platform::broadwell(),
            _ => Platform::knc(),
        },
        None => Platform::knc(),
    }
}

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let platform = platform_from_args();
    let profiler = SimBoundsProfiler::new(platform.clone());
    let classifier = ProfileGuidedClassifier::new();
    let suite = sparseopt_matrix::paper_suite();

    let mut table = Table::new(vec![
        "matrix", "CSR", "Peak", "ML", "IMB", "CMP", "MB", "classes",
    ]);
    for m in &suite {
        let b = profiler.measure_scaled(&m.csr, m.scale, m.locality_scale());
        let classes = classifier.classify(&b);
        table.row(vec![
            m.name.to_string(),
            gf(b.p_csr),
            gf(b.p_peak),
            gf(b.p_ml),
            gf(b.p_imb),
            gf(b.p_cmp),
            gf(b.p_mb),
            classes.to_string(),
        ]);
    }

    println!(
        "== Fig. 3: baseline CSR performance and per-class upper bounds ({} model, Gflop/s) ==\n",
        platform.name
    );
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\nReading guide (paper §III-C): P_CSR ≈ P_ML ⇒ no latency problem; \
         P_ML >> P_CSR and/or P_IMB >> P_CSR ⇒ ML/IMB classes; \
         P_CMP < P_MB ⇒ compute-limited (CMP); P_CMP > P_peak ⇒ cache-resident CMP."
    );
}
