//! Regenerates **Fig. 7** of the paper: "SpMV performance landscape on each
//! experimental platform" — MKL, MKL Inspector-Executor, baseline, oracle,
//! and the profile-/feature-guided optimizers for every suite matrix on
//! KNC (7a), KNL (7b), and Broadwell (7c), annotated with each matrix's
//! detected classes.
//!
//! The feature-guided classifier is trained on the 210-matrix training sweep
//! labeled on the same platform, exactly as in Section III-D.
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin fig7 [--csv] [--platform knc|knl|bdw]`

use sparseopt_bench::report::{gf, Table};
use sparseopt_bench::train_feature_classifier;
use sparseopt_matrix::{FeatureSet, MatrixFeatures};
use sparseopt_ml::TreeParams;
use sparseopt_optimizer::SimOptimizerStudy;
use sparseopt_sim::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let only: Option<&str> = args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);

    let platforms: Vec<Platform> = Platform::paper_platforms()
        .into_iter()
        .filter(|p| match only {
            None => true,
            Some("knc") => p.name == "KNC",
            Some("knl") => p.name == "KNL",
            Some(_) => p.name == "Broadwell",
        })
        .collect();

    let suite = sparseopt_matrix::paper_suite();

    for platform in platforms {
        // KNC predates the Inspector-Executor API (paper: "MKL
        // Inspector-Executor is not available on KNC").
        let has_ie = platform.name != "KNC";
        eprintln!(
            "[fig7] training feature-guided classifier on {} ...",
            platform.name
        );
        let clf =
            train_feature_classifier(&platform, FeatureSet::LinearInNnz, TreeParams::default());
        let study = SimOptimizerStudy::new(platform.clone());
        let llc = platform.total_cache_bytes();

        let mut table = Table::new(vec![
            "matrix",
            "MKL",
            "MKL-IE",
            "baseline",
            "oracle",
            "prof",
            "feat",
            "classes(prof)",
        ]);
        let (mut s_prof, mut s_feat, mut s_ie, mut n) = (0.0f64, 0.0f64, 0.0f64, 0usize);
        for m in &suite {
            let eff_llc = ((llc as f64 / m.scale) as usize).max(1);
            let features = MatrixFeatures::extract(&m.csr, eff_llc);
            let e =
                study.evaluate_scaled(&m.csr, &features, m.scale, m.locality_scale(), Some(&clf));
            let feat = e.feat.unwrap_or(e.baseline);
            s_prof += e.prof / e.mkl;
            s_feat += feat / e.mkl;
            s_ie += e.mkl_ie / e.mkl;
            n += 1;
            table.row(vec![
                m.name.to_string(),
                gf(e.mkl),
                if has_ie { gf(e.mkl_ie) } else { "-".into() },
                gf(e.baseline),
                gf(e.oracle),
                gf(e.prof),
                gf(feat),
                e.classes_profile.to_string(),
            ]);
        }

        println!(
            "\n== Fig. 7 ({}): SpMV performance landscape (modeled Gflop/s) ==\n",
            platform.name
        );
        if csv {
            print!("{}", table.render_csv());
        } else {
            print!("{}", table.render());
        }
        let nf = n as f64;
        print!(
            "\naverage speedup over MKL CSR: prof {:.2}x, feat {:.2}x",
            s_prof / nf,
            s_feat / nf
        );
        if has_ie {
            print!(", MKL Inspector-Executor {:.2}x", s_ie / nf);
        }
        println!(
            "\n(paper: KNC 2.72x/2.63x; KNL 6.73x/6.48x with IE 4.89x; Broadwell 2.02x/1.86x with IE 1.49x)"
        );
    }
}
