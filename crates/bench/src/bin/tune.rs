//! Hyperparameter grid search for the profile-guided classifier (Fig. 4):
//! "The values of T_ML and T_IMB ... have been tuned using grid search ...
//! We choose to maximize the average performance gain of the corresponding
//! optimizations on a large set of matrices."
//!
//! Sweeps `(T_ML, T_IMB)` over a grid, scoring each point by the mean
//! speedup of the resulting adaptive plans over the baseline across a
//! training subset, on the KNC model.
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin tune [--platform knc|knl|bdw]`

use sparseopt_classifier::{ProfileGuidedClassifier, ProfileThresholds};
use sparseopt_matrix::MatrixFeatures;
use sparseopt_ml::{cartesian2, grid_search};
use sparseopt_optimizer::{OptimizationPlan, SimOptimizerStudy};
use sparseopt_sim::Platform;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform = match args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("knl") => Platform::knl(),
        Some("bdw") | Some("broadwell") => Platform::broadwell(),
        _ => Platform::knc(),
    };
    let llc = platform.total_cache_bytes();

    // A manageable tuning subset: every 4th training matrix (52 of 210).
    eprintln!("[tune] generating tuning subset ...");
    let suite: Vec<_> = sparseopt_matrix::training_suite()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == 0)
        .map(|(_, m)| m)
        .collect();

    let study = SimOptimizerStudy::new(platform.clone());
    // Precompute per-matrix profiles, features, bounds, and the baseline.
    eprintln!(
        "[tune] profiling {} matrices on {} ...",
        suite.len(),
        platform.name
    );
    let prepared: Vec<_> = suite
        .iter()
        .map(|m| {
            let profile = study
                .profiler()
                .profile_scaled(&m.csr, m.scale, m.locality_scale());
            let bounds = study.profiler().measure_profile(&profile);
            let eff_llc = ((llc as f64 / m.scale) as usize).max(1);
            let features = MatrixFeatures::extract(&m.csr, eff_llc);
            let base = bounds.p_csr;
            (profile, bounds, features, base)
        })
        .collect();

    let grid = cartesian2(
        &(0..14).map(|i| 1.0 + i as f64 * 0.05).collect::<Vec<_>>(),
        &(0..14).map(|i| 1.0 + i as f64 * 0.04).collect::<Vec<_>>(),
    );
    eprintln!("[tune] grid of {} points ...", grid.len());

    let ((t_ml, t_imb), score) = grid_search(&grid, |&(t_ml, t_imb)| {
        let clf = ProfileGuidedClassifier::with_thresholds(ProfileThresholds {
            t_ml,
            t_imb,
            ..Default::default()
        });
        let mut sum = 0.0;
        for (profile, bounds, features, base) in &prepared {
            let classes = clf.classify(bounds);
            let plan = OptimizationPlan::from_classes(classes, features);
            let g = if plan.is_noop() {
                *base
            } else {
                study.plan_gflops(profile, &plan)
            };
            sum += g / base.max(1e-12);
        }
        sum / prepared.len() as f64
    });

    println!(
        "== Fig. 4 hyperparameter grid search ({} model) ==\n",
        platform.name
    );
    println!("best thresholds: T_ML = {t_ml:.2}, T_IMB = {t_imb:.2}");
    println!("mean adaptive speedup over baseline at optimum: {score:.3}x");
    println!("(paper's tuned values on its testbeds: T_ML = 1.25, T_IMB = 1.24)");
}
