//! `traffic` — a deterministic traffic generator for the serving layer.
//!
//! Drives an `SpmvServer` the way the target deployment does: several
//! client threads, each its own tenant, firing bursts of `y = A·x`
//! requests against one registered matrix. Every operand is derived from
//! `(seed, client, request)` alone, so two runs with the same flags submit
//! bit-identical traffic — the run is a reproducible experiment, not a
//! load test with a dice roll inside.
//!
//! Reported at the end: request throughput (and its Gflop/s equivalent),
//! the effective batch width the coalescer achieved (the cross-request
//! `k`), the batch-width histogram, latency p50/p95/p99, and the shed
//! count.
//!
//! `--smoke` is the CI mode (`ci.sh full` runs it): a small matrix, a
//! short fixed trace, and hard checks instead of numbers — every request
//! must complete, sampled replies must match a serial reference SpMV to
//! rounding (coalesced batches run the FMA-contracted SpMM tiles, so
//! agreement is to ~1e-12 relative, not bit for bit), a solve request
//! must converge, and the stats registry must balance. Exits nonzero on
//! any violation.
//!
//! Usage:
//!   traffic [--smoke] [--n ROWS] [--band HALF_BW] [--clients C]
//!           [--burst B] [--rounds R] [--window-us U] [--max-batch K]
//!           [--seed S]

use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use sparseopt_serve::{Reply, ServeConfig, SpmvServer, Ticket, TuneBudget};
use sparseopt_solver::SolverOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Opts {
    smoke: bool,
    n: usize,
    band: usize,
    clients: usize,
    burst: usize,
    rounds: usize,
    window_us: u64,
    max_batch: usize,
    seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            smoke: false,
            n: 20_000,
            band: 4,
            clients: 4,
            burst: 8,
            rounds: 32,
            window_us: 200,
            max_batch: 16,
            seed: 42,
        }
    }
}

fn parse_args() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    let next_usize = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a positive integer"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                o.smoke = true;
                // Small, fast, and still wide enough to coalesce.
                o.n = 2_000;
                o.clients = 2;
                o.burst = 8;
                o.rounds = 4;
            }
            "--n" => o.n = next_usize(&mut args, "--n"),
            "--band" => o.band = next_usize(&mut args, "--band"),
            "--clients" => o.clients = next_usize(&mut args, "--clients").max(1),
            "--burst" => o.burst = next_usize(&mut args, "--burst").max(1),
            "--rounds" => o.rounds = next_usize(&mut args, "--rounds").max(1),
            "--window-us" => o.window_us = next_usize(&mut args, "--window-us") as u64,
            "--max-batch" => o.max_batch = next_usize(&mut args, "--max-batch").max(1),
            "--seed" => o.seed = next_usize(&mut args, "--seed") as u64,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

/// The deterministic operand for request `(client, index)`: a cheap
/// splitmix-style hash of `(seed, client, index)` seeds a phase, and the
/// vector is a sine ramp from it. Reproducible and distinct per request.
fn operand(n: usize, seed: u64, client: usize, index: usize) -> Vec<f64> {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(client as u64 + 1))
        .wrapping_add(0x2545_f491_4f6c_dd1du64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let phase = (z >> 11) as f64 / (1u64 << 53) as f64;
    (0..n)
        .map(|i| 0.5 + (i as f64 * 0.13 + phase * std::f64::consts::TAU).sin())
        .collect()
}

fn main() {
    let o = parse_args();
    let csr = Arc::new(CsrMatrix::from_coo(&g::symmetric_banded(o.n, o.band)));
    let flops_per_request = 2.0 * csr.nnz() as f64;

    let ctx = ExecCtx::host();
    let cfg = ServeConfig {
        batch_window: Duration::from_micros(o.window_us),
        max_batch: o.max_batch,
        // Bursts must be admissible: shedding is a configuration under
        // test only via headroom (burst ≤ capacity), not the common case.
        tenant_capacity: (o.burst * 2).max(8),
        tune_budget: TuneBudget::minimal(),
        ..ServeConfig::default()
    };
    let server = SpmvServer::new(ctx.clone(), cfg);
    let t_reg = Instant::now();
    let matrix = server.register_matrix("traffic", csr.clone());
    let info = server.matrix_info(matrix).expect("just registered");
    println!(
        "traffic: {}x{} band matrix, {} nnz; plan [{}] ({}) in {:.1} ms",
        info.shape.0,
        info.shape.1,
        info.nnz,
        info.plan_label,
        if info.warm { "warm" } else { "cold-tuned" },
        t_reg.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "trace: {} client(s) x {} round(s) x burst {} (window {} us, max batch {})",
        o.clients, o.rounds, o.burst, o.window_us, o.max_batch
    );

    let tenants: Vec<_> = (0..o.clients)
        .map(|c| server.register_tenant(&format!("client-{c}")))
        .collect();

    let total_requests = o.clients * o.rounds * o.burst;
    let t0 = Instant::now();
    let mismatches = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(c, &tenant)| {
                let server = &server;
                let csr = &csr;
                scope.spawn(move || {
                    let mut bad = 0usize;
                    let reference = SerialCsr::new(csr.clone());
                    for round in 0..o.rounds {
                        let mut burst: Vec<(usize, Ticket)> = Vec::with_capacity(o.burst);
                        for b in 0..o.burst {
                            let index = round * o.burst + b;
                            let x = operand(o.n, o.seed, c, index);
                            // Burst submits never shed (capacity covers a
                            // full burst); treat anything else as fatal.
                            let ticket = server
                                .submit(tenant, matrix, x)
                                .expect("burst within tenant capacity");
                            burst.push((index, ticket));
                        }
                        for (index, ticket) in burst {
                            let reply = ticket.wait().expect("server dropped a request");
                            // Smoke mode: verify the first request of each
                            // round against a serial reference (to
                            // rounding — coalesced replies come off the
                            // FMA-contracted SpMM tiles).
                            if o.smoke && index % o.burst == 0 {
                                let Reply::Vector(y) = reply else {
                                    bad += 1;
                                    continue;
                                };
                                let x = operand(o.n, o.seed, c, index);
                                let mut want = vec![0.0; o.n];
                                reference.spmv(&x, &mut want);
                                let close = y
                                    .iter()
                                    .zip(&want)
                                    .all(|(a, b)| (a - b).abs() <= 1e-12 * (1.0 + b.abs()));
                                if !close {
                                    bad += 1;
                                }
                            }
                        }
                    }
                    bad
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum::<usize>()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = server.stats();
    let throughput = total_requests as f64 / elapsed;
    println!(
        "\ncompleted {} / {} submitted requests in {elapsed:.3} s",
        snap.completed, snap.submitted
    );
    println!(
        "throughput: {throughput:.0} req/s  ({:.3} Gflop/s equivalent)",
        throughput * flops_per_request / 1e9
    );
    println!(
        "coalescing: {} batches, mean width {:.2}, {} of {} requests shared a dispatch",
        snap.batches, snap.mean_batch, snap.coalesced, snap.completed
    );
    let hist: Vec<String> = snap
        .batch_hist
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(i, n)| format!("{}x{n}", i + 1))
        .collect();
    println!("batch widths (width x count): {}", hist.join("  "));
    println!(
        "latency: p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  max {:.1} us  ({} shed)",
        snap.p50.as_secs_f64() * 1e6,
        snap.p95.as_secs_f64() * 1e6,
        snap.p99.as_secs_f64() * 1e6,
        snap.max_latency.as_secs_f64() * 1e6,
        snap.shed
    );

    if o.smoke {
        // One solve request rides the same server: the non-coalescible
        // path and the preconditioner hookup get covered too.
        let b = operand(o.n, o.seed, 0, usize::MAX / 2);
        let solve = server
            .submit_solve(
                tenants[0],
                matrix,
                b,
                SolverOptions {
                    tol: 1e-8,
                    max_iters: 500,
                },
            )
            .expect("solve submit");
        let solve_ok = match solve.wait() {
            Ok(Reply::Solve { outcome, .. }) => outcome.converged,
            _ => false,
        };

        let snap = server.stats();
        let mut failures = Vec::new();
        if mismatches > 0 {
            failures.push(format!(
                "{mismatches} replies disagreed with the serial reference"
            ));
        }
        if snap.completed != snap.submitted {
            failures.push(format!(
                "{} submitted vs {} completed",
                snap.submitted, snap.completed
            ));
        }
        if snap.completed != total_requests as u64 + 1 {
            failures.push(format!(
                "expected {} completions, saw {}",
                total_requests + 1,
                snap.completed
            ));
        }
        if !solve_ok {
            failures.push("solve request did not converge".to_string());
        }
        if snap.shed != 0 {
            failures.push(format!("{} requests shed under a sized trace", snap.shed));
        }
        if failures.is_empty() {
            println!("\ntraffic --smoke: ok");
        } else {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            eprintln!("\ntraffic --smoke: FAILED");
            std::process::exit(1);
        }
    }
}
