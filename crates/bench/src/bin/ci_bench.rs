//! `ci_bench` — the bench-regression tier of `ci.sh full`.
//!
//! Runs a pinned micro-suite (one matrix per bottleneck shape × the kernel
//! family, plus the symmetric-storage operator on the symmetric members),
//! writes the measured Gflop/s trajectory to the **stable**
//! `BENCH_TRAJECTORY.json` (so the CI workflow's artifact upload never
//! needs a per-PR filename edit), and exits nonzero if any
//! (matrix, kernel) pair regresses more than the tolerance (default 15%,
//! override with `--tolerance` or `SPARSEOPT_BENCH_TOLERANCE`) against the
//! committed `BENCH_BASELINE.json`. A pair that lands below its floor is
//! re-measured up to [`RETRIES`] times before the tier fails, so transient
//! scheduler noise on shared hosts cannot fail the gate while a genuine
//! collapse (which reproduces on every retry) still does.
//!
//! Two acceptance comparisons ride on top of the drift band. The
//! **vectorization no-loss gate** is unconditional: on every suite matrix
//! the best vectorized kernel (the SELL-C-σ operator or the length-bucketed
//! `csr-simd`) must reach ≥ 1.0× the scalar `csr-baseline` — the CMP
//! class's "vectorize" prescription must never make a matrix slower.
//!
//! The **tuning no-loss gate** pins the tuning service: every suite matrix
//! gets an `adaptive` row (the classifier's guarded one-shot plan) and a
//! `tuned` row (what `PlanTuner` serves after its budgeted empirical
//! search), and a promoted plan must never measure slower than the one-shot
//! it replaced. The tuner's winners persist to `BENCH_PLAN_CACHE.json`,
//! which rides the CI workflow's `BENCH_*.json` artifact glob.
//!
//! It additionally enforces the merge-path acceptance comparison —
//! `MergeCsr` must beat the best whole-row CSR schedule on the power-law
//! hub matrix — whenever the hub row actually overflows a whole-row
//! nonzero quota on this host (hub share ≥ 1.5 / nthreads). Below that the
//! win is not structural (and on one core imbalance cannot surface in wall
//! clock at all), so the comparison is reported but the criterion is
//! carried by the deterministic modeled gate in `tests/merge_path.rs`.
//! When the committed baseline was recorded on a different hardware shape
//! (thread-count mismatch), the absolute-Gflop/s gate degrades to a
//! per-matrix speedup-over-csr-baseline comparison at doubled tolerance
//! rather than switching off.
//!
//! Usage:
//!   ci_bench [--out PATH] [--baseline PATH] [--tolerance F] [--write-baseline]

use sparseopt_bench::Table;
use sparseopt_classifier::SimBoundsProfiler;
use sparseopt_core::kernels::{peak_resident_shard_bytes, reset_peak_resident_shard_bytes};
use sparseopt_core::prelude::*;
use sparseopt_core::CsrKernelConfig;
use sparseopt_matrix::generators as g;
use sparseopt_matrix::{shard::write_shard_file, streaming_suite, ShardStore};
use sparseopt_optimizer::{AdaptiveOptimizer, PlanCache, PlanTuner, TuneBudget};
use sparseopt_serve::{ServeConfig, SpmvServer, Ticket};
use sparseopt_sim::Platform;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default allowed fractional slowdown per (matrix, kernel) pair.
const DEFAULT_TOLERANCE: f64 = 0.15;

/// Target wall time per timed batch, seconds (keeps the tier fast while
/// amortizing timer noise on tiny matrices).
const BATCH_SECS: f64 = 0.02;

/// Timed batches per measurement; the best (minimum) batch is reported, the
/// standard robust estimator for wall-clock microbenchmarks on shared CI.
const BATCHES: usize = 5;

/// Re-measurements granted to a (matrix, kernel) pair that lands below its
/// regression floor before the tier fails. Virtualized single-core CI hosts
/// wobble 20–30% run to run — more than any tolerance band that would still
/// catch a real collapse — but the noise is transient: a genuine regression
/// reproduces on every retry, while a scheduler hiccup clears on the first.
/// Retried values only affect the verdict; the trajectory file keeps the
/// first measurement.
const RETRIES: usize = 2;

struct Entry {
    matrix: String,
    kernel: String,
    gflops: f64,
}

fn measure(op: &dyn SparseLinOp) -> f64 {
    let (nrows, ncols) = op.shape();
    let x: Vec<f64> = (0..ncols).map(|i| 0.5 + (i as f64 * 0.13).sin()).collect();
    let mut y = vec![0.0f64; nrows];
    op.spmv(&x, &mut y); // warm up (faults pages, resolves schedules)

    let t0 = Instant::now();
    op.spmv(&x, &mut y);
    let est = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((BATCH_SECS / est).ceil() as usize).clamp(1, 20_000);

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            op.spmv(&x, &mut y);
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    std::hint::black_box(&y);
    gflops(op.flops(1), best)
}

/// The pinned suite: one matrix per structural shape the classifier cares
/// about. Names are stable identifiers — the baseline JSON keys on them.
fn suite() -> Vec<(&'static str, Arc<CsrMatrix>)> {
    vec![
        (
            "banded-20k-b4",
            Arc::new(CsrMatrix::from_coo(&g::banded(20_000, 4))),
        ),
        (
            "poisson2d-96",
            Arc::new(CsrMatrix::from_coo(&g::poisson2d(96, 96))),
        ),
        (
            "random-8k-d8",
            Arc::new(CsrMatrix::from_coo(&g::random_uniform(8192, 8, 1))),
        ),
        (
            "powerlaw-hub-8k",
            Arc::new(CsrMatrix::from_coo(&g::power_law_hub(8192, 2, 11))),
        ),
        (
            "sym-band-20k",
            Arc::new(CsrMatrix::from_coo(&g::symmetric_banded(20_000, 4))),
        ),
        (
            "spd-powerlaw-12k",
            Arc::new(CsrMatrix::from_coo(&g::symmetric_power_law(12_000, 8, 97))),
        ),
    ]
}

/// The SPD members that carry SpTRSV rows (their lower triangles are the
/// IC(0)/SymGS solve operands): a 2-D stencil (medium-width levels), a pure
/// band (chain DAG — level scheduling must *not* be selected there, but the
/// row still pins its cost) and a symmetrized power-law graph (wide shallow
/// DAG — the level-scheduled win the no-loss gate checks).
const SPTRSV_MATRICES: [&str; 3] = ["poisson2d-96", "sym-band-20k", "spd-powerlaw-12k"];

/// The SPD member on which level-scheduled SpTRSV must not lose to serial
/// substitution when more than one thread is available. Only the wide-DAG
/// member arms the gate: on chain/narrow DAGs serial is the *correct*
/// choice (and what `TrsvAlgo::Auto` picks), so "level wins there" is not a
/// property worth pinning.
const SPTRSV_GATE_MATRIX: &str = "spd-powerlaw-12k";

/// Measures one triangular solve kernel with the same batching protocol as
/// [`measure`] (best batch of [`BATCHES`]).
fn measure_trsv(k: &TrsvKernel) -> f64 {
    let n = k.matrix().nrows();
    let b: Vec<f64> = (0..n).map(|i| 0.5 + (i as f64 * 0.13).sin()).collect();
    let mut x = vec![0.0f64; n];
    k.solve(&b, &mut x); // warm up

    let t0 = Instant::now();
    k.solve(&b, &mut x);
    let est = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((BATCH_SECS / est).ceil() as usize).clamp(1, 20_000);

    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters {
            k.solve(&b, &mut x);
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    std::hint::black_box(&x);
    gflops(k.flops(1), best)
}

/// Builds the (kernel-name, solver) pairs for one SPD matrix's lower
/// triangle. At one thread the level-scheduled kernel resolves to serial,
/// so both rows exist on every host and the baseline keys stay stable.
fn trsv_kernels(csr: &Arc<CsrMatrix>, ctx: &Arc<ExecCtx>) -> Vec<(&'static str, TrsvKernel)> {
    let lower = Arc::new(csr.lower_triangle(true));
    vec![
        (
            "sptrsv-serial",
            TrsvKernel::serial(lower.clone(), TrsvDirection::Lower, false)
                .expect("SPD lower triangle"),
        ),
        (
            "sptrsv-level",
            TrsvKernel::try_new(
                lower,
                TrsvDirection::Lower,
                false,
                TrsvAlgo::LevelScheduled,
                ctx.clone(),
            )
            .expect("SPD lower triangle"),
        ),
    ]
}

/// Requests per serving measurement run.
const SERVE_REQUESTS: usize = 256;

/// Coalescing cap for the batched serving run — the effective `k` the
/// acceptance comparison targets (`mean batch ≥ 4` arms the gate).
const SERVE_BATCH: usize = 8;

/// Fresh-server repetitions per serving measurement; best run is reported
/// (same robust-minimum protocol as [`measure`]).
const SERVE_RUNS: usize = 3;

/// The serving matrix — the banded suite member the coalescing acceptance
/// criterion is pinned on.
const SERVE_MATRIX: &str = "banded-20k-b4";

/// One serving measurement: throughput (Gflop/s equivalent over the
/// request stream), the inverse of the exact client-side p99 latency
/// (inverted so "bigger is better" matches the generic regression gate),
/// and the effective batch width the coalescer achieved.
struct ServeMeasurement {
    gflops: f64,
    p99_inv: f64,
    mean_batch: f64,
    /// Plan label the server registered the matrix under, plus whether it
    /// came warm from the persistent cache — a cold minimal-budget re-tune
    /// is the first suspect when the coalescing ratio collapses.
    plan: String,
}

/// Measures the serving layer on one matrix: `SERVE_REQUESTS` identical
/// `y = A·x` requests from one tenant, either closed-loop (submit, wait,
/// repeat — every dispatch is width 1) or open-loop (submit all, then
/// wait — the backlog coalesces into width-[`SERVE_BATCH`] SpMM batches).
/// Each of the [`SERVE_RUNS`] repetitions builds a fresh server so queue
/// state never leaks between runs; the best run is returned. p99 is exact
/// (sorted client-side latencies), not the serving histogram's
/// octave-resolution readout, so the regression gate's 15% band is
/// meaningful for it.
fn measure_serving(
    ctx: &Arc<ExecCtx>,
    csr: &Arc<CsrMatrix>,
    plan_cache_path: &str,
    coalesce: bool,
) -> ServeMeasurement {
    let cfg = ServeConfig {
        workers: 1,
        batch_window: if coalesce {
            Duration::from_millis(5)
        } else {
            Duration::ZERO
        },
        max_batch: if coalesce { SERVE_BATCH } else { 1 },
        tenant_capacity: SERVE_REQUESTS + 8,
        tune_budget: TuneBudget::minimal(),
    };
    let flops = 2.0 * csr.nnz() as f64 * SERVE_REQUESTS as f64;
    let x: Vec<f64> = (0..csr.ncols())
        .map(|i| 0.5 + (i as f64 * 0.13).sin())
        .collect();
    let mut best = ServeMeasurement {
        gflops: 0.0,
        p99_inv: 0.0,
        mean_batch: 0.0,
        plan: String::new(),
    };
    for _ in 0..SERVE_RUNS {
        // Register against the suite's persistent plan cache: by this point
        // the tuned rows above have promoted and persisted a winner for this
        // matrix, so registration is a warm cache hit — the serving rows
        // compare dispatch policies over ONE deterministic kernel instead of
        // re-running minimal-budget trials whose mid-suite timing noise can
        // promote a different (SpMM-indifferent) plan per server.
        let server =
            SpmvServer::with_plan_cache(ctx.clone(), cfg, PlanCache::at_path(plan_cache_path).0);
        let tenant = server.register_tenant("bench");
        let matrix = server.register_matrix(SERVE_MATRIX, csr.clone());
        // Warm up: faults pages, resolves the kernel's schedule.
        server
            .submit(tenant, matrix, x.clone())
            .and_then(Ticket::wait)
            .expect("warm-up request");
        // Operand clones and reply frees are client-side costs, identical
        // per request in both modes; keeping them inside the timed window
        // would add a fixed tax that dilutes the coalescing ratio. Clone
        // before the clock starts, hold replies until after it stops.
        let mut ops: Vec<Vec<f64>> = (0..SERVE_REQUESTS).map(|_| x.clone()).collect();
        let mut replies = Vec::with_capacity(SERVE_REQUESTS);
        let mut latencies = Vec::with_capacity(SERVE_REQUESTS);
        let t0 = Instant::now();
        if coalesce {
            let in_flight: Vec<(Instant, Ticket)> = ops
                .drain(..)
                .map(|op| {
                    (
                        Instant::now(),
                        server.submit(tenant, matrix, op).expect("sized trace"),
                    )
                })
                .collect();
            // Fulfillment follows queue order, so waiting in submit order
            // reads each completion as it lands.
            for (submitted, ticket) in in_flight {
                replies.push(ticket.wait().expect("server dropped a request"));
                latencies.push(submitted.elapsed());
            }
        } else {
            for op in ops.drain(..) {
                let submitted = Instant::now();
                replies.push(
                    server
                        .submit(tenant, matrix, op)
                        .and_then(Ticket::wait)
                        .expect("sized trace"),
                );
                latencies.push(submitted.elapsed());
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        drop(replies);
        latencies.sort_unstable();
        let p99 = latencies[(SERVE_REQUESTS * 99).div_ceil(100) - 1];
        let gf = flops / elapsed / 1e9;
        if gf > best.gflops {
            // The warm-up dispatch is width 1 by construction; exclude it
            // from the effective-width readout.
            let snap = server.stats();
            let info = server.matrix_info(matrix).expect("registered matrix");
            best = ServeMeasurement {
                gflops: gf,
                p99_inv: 1.0 / p99.as_secs_f64().max(1e-12),
                mean_batch: (snap.completed - 1) as f64 / (snap.batches - 1).max(1) as f64,
                plan: format!(
                    "{}{}",
                    info.plan_label,
                    if info.warm { "" } else { " (cold-tuned)" }
                ),
            };
        }
    }
    best
}

/// The out-of-core streaming member: a degree-sorted power-law matrix whose
/// head shard (hubs) and tail shards (short rows) tune to different formats,
/// benched through the shard container + `ShardedOp` path.
const STREAM_MATRIX: &str = "powerlaw-sorted-48k";

/// Shards the streaming member gets in the container.
const STREAM_SHARDS: usize = 8;

/// The kernel family measured per matrix. Names are stable identifiers.
fn kernels(csr: &Arc<CsrMatrix>, ctx: &Arc<ExecCtx>) -> Vec<(&'static str, Box<dyn SparseLinOp>)> {
    let simd = CsrKernelConfig {
        inner: InnerLoop::Simd,
        ..CsrKernelConfig::baseline()
    };
    let threshold = DecomposedCsrMatrix::auto_threshold(csr, 4.0);
    let mut kernels: Vec<(&'static str, Box<dyn SparseLinOp>)> = vec![
        (
            "csr-baseline",
            Box::new(ParallelCsr::baseline(csr.clone(), ctx.clone())),
        ),
        (
            "csr-simd",
            Box::new(ParallelCsr::new(csr.clone(), simd, ctx.clone())),
        ),
        (
            "sell",
            Box::new(SellKernel::vectorized(
                Arc::new(SellMatrix::from_csr(csr)),
                ctx.clone(),
            )),
        ),
        (
            "csr-auto",
            Box::new(ParallelCsr::with_schedule(
                csr.clone(),
                Schedule::Auto,
                ctx.clone(),
            )),
        ),
        (
            "csr-dynamic",
            Box::new(ParallelCsr::with_schedule(
                csr.clone(),
                Schedule::Dynamic { chunk: 64 },
                ctx.clone(),
            )),
        ),
        (
            "csr-guided",
            Box::new(ParallelCsr::with_schedule(
                csr.clone(),
                Schedule::Guided { min_chunk: 4 },
                ctx.clone(),
            )),
        ),
        (
            "delta-simd",
            Box::new(DeltaKernel::compressed_vectorized(
                Arc::new(DeltaCsrMatrix::from_csr(csr)),
                ctx.clone(),
            )),
        ),
        (
            "decomposed",
            Box::new(DecomposedKernel::baseline(
                Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold)),
                ctx.clone(),
            )),
        ),
        (
            "merge",
            Box::new(MergeCsr::baseline(csr.clone(), ctx.clone())),
        ),
    ];
    // The symmetric-storage operator only exists for exactly symmetric
    // matrices (sym-band-20k and the Poisson stencil in this suite); the
    // baseline keys on (matrix, kernel), so the pairs stay stable.
    if let Some(sss) = SssCsr::try_from_csr(csr) {
        kernels.push((
            "sym",
            Box::new(SymCsr::baseline(Arc::new(sss), ctx.clone())),
        ));
    }
    kernels
}

fn write_json(path: &str, nthreads: usize, entries: &[Entry]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"nthreads\": {nthreads},\n"));
    out.push_str("  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"kernel\": \"{}\", \"gflops\": {:.4}}}{comma}\n",
            e.matrix, e.kernel, e.gflops
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Parses a JSON file this tool wrote (one result per line — no general
/// JSON parser is vendored, and the baseline is always produced by
/// `--write-baseline`). Returns the recorded thread count and the entries;
/// a malformed line is an error, never a silent skip (a half-parsed
/// baseline must fail the gate, not disable it).
fn read_json(path: &str) -> Result<(usize, Vec<Entry>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let field = |line: &str, key: &str| -> Option<String> {
        let tag = format!("\"{key}\": ");
        let start = line.find(&tag)? + tag.len();
        let rest = &line[start..];
        Some(if let Some(stripped) = rest.strip_prefix('"') {
            stripped[..stripped.find('"')?].to_string()
        } else {
            rest[..rest.find(['}', ','])?].trim().to_string()
        })
    };
    let mut nthreads = None;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(t) = field(line, "nthreads") {
            nthreads = Some(
                t.parse()
                    .map_err(|_| format!("{path}:{}: bad nthreads `{t}`", lineno + 1))?,
            );
        }
        let (matrix, kernel, gf) = match (
            field(line, "matrix"),
            field(line, "kernel"),
            field(line, "gflops"),
        ) {
            (Some(m), Some(k), Some(g)) => (m, k, g),
            (None, None, None) => continue, // structural line, no result
            _ => return Err(format!("{path}:{}: malformed result line", lineno + 1)),
        };
        entries.push(Entry {
            matrix,
            kernel,
            gflops: gf
                .parse()
                .map_err(|_| format!("{path}:{}: bad gflops `{gf}`", lineno + 1))?,
        });
    }
    let nthreads = nthreads.ok_or_else(|| format!("{path}: missing nthreads field"))?;
    if entries.is_empty() {
        return Err(format!("{path}: no result entries"));
    }
    Ok((nthreads, entries))
}

fn main() {
    let mut out_path = "BENCH_TRAJECTORY.json".to_string();
    let mut baseline_path = "BENCH_BASELINE.json".to_string();
    let mut tolerance = std::env::var("SPARSEOPT_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a fraction")
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let ctx = ExecCtx::host();
    let nthreads = ctx.nthreads();
    println!("ci_bench: pinned micro-suite on {nthreads} thread(s)\n");

    // The tuning-service rows persist their winners here; the stable
    // BENCH_-prefixed name rides the CI workflow's existing `BENCH_*.json`
    // artifact glob, so the tuned plans ship next to the trajectory.
    let plan_cache_path = "BENCH_PLAN_CACHE.json";
    let (plan_cache, cache_warn) = PlanCache::at_path(plan_cache_path);
    if let Some(w) = cache_warn {
        eprintln!("warning: {w}");
    }
    let tuner = PlanTuner::with_cache(ctx.clone(), plan_cache);
    let adaptive_opt = AdaptiveOptimizer::new(ctx.clone());
    let tune_profiler = SimBoundsProfiler::new(Platform::broadwell());
    // (matrix, adaptive Gflop/s, tuned Gflop/s, adaptive plan, tuned plan)
    let mut tune_gate: Vec<(String, f64, f64, String, String)> = Vec::new();

    let mut entries = Vec::new();
    let mut table = Table::new(vec!["matrix", "kernel", "gflops"]);
    let mut hub_merge = 0.0f64;
    let mut hub_best_whole_row = 0.0f64;
    let mut hub_share = 0.0f64;
    let mut trsv_serial = 0.0f64;
    let mut trsv_level = 0.0f64;
    let mut vec_gate: Vec<(String, f64, f64, &'static str)> = Vec::new();
    let mats = suite();
    for (mname, csr) in mats.iter() {
        let mname = *mname;
        if mname == "powerlaw-hub-8k" {
            let max = (0..csr.nrows()).map(|i| csr.row_nnz(i)).max().unwrap_or(0);
            hub_share = max as f64 / csr.nnz().max(1) as f64;
        }
        let (mut scalar_base, mut vec_best, mut vec_which) = (0.0f64, 0.0f64, "none");
        for (kname, op) in kernels(csr, &ctx) {
            let gf = measure(op.as_ref());
            match kname {
                "csr-baseline" => scalar_base = gf,
                "csr-simd" | "sell" if gf > vec_best => {
                    vec_best = gf;
                    vec_which = kname;
                }
                _ => {}
            }
            table.row(vec![
                mname.to_string(),
                kname.to_string(),
                format!("{gf:.3}"),
            ]);
            if mname == "powerlaw-hub-8k" {
                match kname {
                    "merge" => hub_merge = gf,
                    // *Every* whole-row CSR schedule in the suite competes —
                    // the acceptance criterion is "beats the best", and the
                    // self-scheduling policies are the strongest whole-row
                    // contenders on a hub matrix.
                    "csr-baseline" | "csr-simd" | "csr-auto" | "csr-dynamic" | "csr-guided" => {
                        hub_best_whole_row = hub_best_whole_row.max(gf)
                    }
                    _ => {}
                }
            }
            entries.push(Entry {
                matrix: mname.to_string(),
                kernel: kname.to_string(),
                gflops: gf,
            });
        }
        vec_gate.push((mname.to_string(), scalar_base, vec_best, vec_which));
        // Classifier one-shot vs tuning service. `adaptive` is the guarded
        // classifier plan exactly as `AdaptiveOptimizer` ships it; `tuned`
        // is what the `PlanTuner` serves after its budgeted empirical
        // search (or straight from the plan cache on a warm run).
        let adaptive = adaptive_opt.optimize_profiled(csr, &tune_profiler);
        let tuned = tuner.optimize_profiled(csr, &tune_profiler);
        for (kname, op, plan_label) in [
            ("adaptive", adaptive.kernel.as_ref(), adaptive.plan.label()),
            ("tuned", tuned.kernel.as_ref(), tuned.plan.label()),
        ] {
            let gf = measure(op);
            table.row(vec![
                mname.to_string(),
                kname.to_string(),
                format!("{gf:.3}"),
            ]);
            entries.push(Entry {
                matrix: mname.to_string(),
                kernel: kname.to_string(),
                gflops: gf,
            });
            match kname {
                "adaptive" => {
                    tune_gate.push((mname.to_string(), gf, 0.0, plan_label, String::new()))
                }
                _ => {
                    let slot = tune_gate.last_mut().expect("adaptive row pushed first");
                    slot.2 = gf;
                    slot.4 = plan_label;
                }
            }
        }
        // SpTRSV rows on the SPD members (lower-triangle solve).
        if SPTRSV_MATRICES.contains(&mname) {
            for (kname, kernel) in trsv_kernels(csr, &ctx) {
                let gf = measure_trsv(&kernel);
                if mname == SPTRSV_GATE_MATRIX {
                    match kname {
                        "sptrsv-serial" => trsv_serial = gf,
                        "sptrsv-level" => trsv_level = gf,
                        _ => {}
                    }
                }
                table.row(vec![
                    mname.to_string(),
                    kname.to_string(),
                    format!("{gf:.3}"),
                ]);
                entries.push(Entry {
                    matrix: mname.to_string(),
                    kernel: kname.to_string(),
                    gflops: gf,
                });
            }
        }
    }

    // Serving-layer rows: the same banded member served closed-loop
    // (width-1 dispatches) and open-loop (coalesced SpMM batches), plus
    // the batched configuration's inverse-p99 tail-latency row.
    let serve_csr = mats
        .iter()
        .find(|(n, _)| *n == SERVE_MATRIX)
        .map(|(_, c)| c.clone())
        .expect("serving matrix is a pinned suite member");
    let mut serve_seq = measure_serving(&ctx, &serve_csr, plan_cache_path, false);
    let mut serve_coal = measure_serving(&ctx, &serve_csr, plan_cache_path, true);
    for (kname, gf) in [
        ("serve-sequential", serve_seq.gflops),
        ("serve-coalesced", serve_coal.gflops),
        ("serve-p99-inv", serve_coal.p99_inv),
    ] {
        table.row(vec![
            SERVE_MATRIX.to_string(),
            kname.to_string(),
            format!("{gf:.3}"),
        ]);
        entries.push(Entry {
            matrix: SERVE_MATRIX.to_string(),
            kernel: kname.to_string(),
            gflops: gf,
        });
    }
    // Out-of-core rows: the streaming suite member goes through the full
    // shard pipeline — container write, mmap-backed open, per-shard plan
    // selection — and is measured as a `ShardedOp` with every shard kernel
    // resident (window = nshards ≥ 2, the steady state a solver loop sees).
    // The whole-matrix csr-baseline row on the same member is the no-loss
    // reference.
    let mut shard_failures: Vec<String> = Vec::new();
    let stream_csr = streaming_suite()
        .into_iter()
        .find(|m| m.name == STREAM_MATRIX)
        .expect("streaming suite member")
        .csr;
    let shard_path =
        std::env::temp_dir().join(format!("sparseopt-ci-bench-{}.shards", std::process::id()));
    write_shard_file(&shard_path, &stream_csr, stream_csr.nrows() / STREAM_SHARDS)
        .expect("write shard container");
    let store = Arc::new(ShardStore::open(&shard_path).expect("open shard container"));
    std::fs::remove_file(&shard_path).ok();
    let sharded_window = store.nshards();
    let sharded = tuner
        .optimize_sharded(
            store.clone(),
            &tune_profiler,
            Platform::broadwell(),
            sharded_window,
        )
        .expect("tune sharded");
    println!(
        "sharded {STREAM_MATRIX}: {} shard(s), window {sharded_window}, per-shard plans [{}]",
        store.nshards(),
        sharded.distinct_plan_labels().join(" | ")
    );
    // Residency accounting hook first, while no other sharded operator has
    // built kernels (the accounting is crate-global): stream the matrix
    // through a bounded window (2 of the {STREAM_SHARDS}) and assert the
    // peak resident built-shard bytes never exceeded window · max_shard_bytes.
    {
        let bounded = tuner
            .optimize_sharded(store.clone(), &tune_profiler, Platform::broadwell(), 2)
            .expect("tune bounded sharded");
        let x: Vec<f64> = vec![1.0; stream_csr.ncols()];
        let mut y = vec![0.0f64; stream_csr.nrows()];
        reset_peak_resident_shard_bytes();
        bounded.op.spmv(&x, &mut y);
        bounded.op.spmv(&x, &mut y);
        let peak = peak_resident_shard_bytes();
        let bound = 2 * bounded.op.max_built_shard_bytes();
        println!(
            "sharded residency at window 2: peak {peak} bytes vs bound {bound} bytes \
             (2 x largest built shard)"
        );
        if peak > bound {
            shard_failures.push(format!(
                "window-2 apply held {peak} resident shard bytes, above the \
                 window bound {bound}"
            ));
        }
    }
    // Correctness: the streamed operator must match the in-memory reference
    // to 1e-12 relative. A mismatch fails the tier (not a panic — the
    // remaining gates still report).
    {
        let reference = SerialCsr::new(stream_csr.clone());
        let x: Vec<f64> = (0..stream_csr.ncols())
            .map(|i| 0.5 + (i as f64 * 0.13).sin())
            .collect();
        let (mut got, mut want) = (
            vec![0.0f64; stream_csr.nrows()],
            vec![0.0f64; stream_csr.nrows()],
        );
        sharded.op.spmv(&x, &mut got);
        reference.spmv(&x, &mut want);
        if let Some(i) =
            (0..got.len()).find(|&i| (got[i] - want[i]).abs() > 1e-12 * want[i].abs().max(1.0))
        {
            shard_failures.push(format!(
                "sharded-spmv diverges from the in-memory reference at row {i} \
                 ({} vs {})",
                got[i], want[i]
            ));
        }
    }
    let mut shard_gf = measure(sharded.op.as_ref());
    let mut shard_base_gf = measure(&ParallelCsr::baseline(stream_csr.clone(), ctx.clone()));
    for (kname, gf) in [("sharded-spmv", shard_gf), ("csr-baseline", shard_base_gf)] {
        table.row(vec![
            STREAM_MATRIX.to_string(),
            kname.to_string(),
            format!("{gf:.3}"),
        ]);
        entries.push(Entry {
            matrix: STREAM_MATRIX.to_string(),
            kernel: kname.to_string(),
            gflops: gf,
        });
    }
    println!("{}", table.render());

    // Vectorization no-loss gate (unconditional, every matrix, any thread
    // count): the best vectorized kernel — SELL-C-σ or the length-bucketed
    // csr-simd — must be at least as fast as the scalar csr-baseline. This
    // is the hard floor behind the CMP class's "vectorize" recommendation:
    // a classifier whose prescribed optimization loses to scalar is worse
    // than no classifier, so the state is pinned here rather than left to
    // the 15% drift band.
    // One fresh measurement of a single (matrix, kernel) pair, for the
    // retry paths of both gates. Rebuilding the kernel is part of the
    // point: a stale schedule resolution or a cold structure is exactly the
    // transient state a retry should not inherit.
    let remeasure = |m: &str, k: &str| -> Option<f64> {
        if m == STREAM_MATRIX {
            return match k {
                "sharded-spmv" => Some(measure(sharded.op.as_ref())),
                "csr-baseline" => Some(measure(&ParallelCsr::baseline(
                    stream_csr.clone(),
                    ctx.clone(),
                ))),
                _ => None,
            };
        }
        let csr = mats.iter().find(|(n, _)| *n == m).map(|(_, c)| c)?;
        match k {
            // The optimizer rows rebuild through their own entry points;
            // the tuned rebuild hits the plan cache, so a retry re-times
            // the winning kernel rather than re-running the search.
            "adaptive" => Some(measure(
                adaptive_opt
                    .optimize_profiled(csr, &tune_profiler)
                    .kernel
                    .as_ref(),
            )),
            "tuned" => Some(measure(
                tuner.optimize_profiled(csr, &tune_profiler).kernel.as_ref(),
            )),
            "serve-sequential" => Some(measure_serving(&ctx, csr, plan_cache_path, false).gflops),
            "serve-coalesced" => Some(measure_serving(&ctx, csr, plan_cache_path, true).gflops),
            "serve-p99-inv" => Some(measure_serving(&ctx, csr, plan_cache_path, true).p99_inv),
            _ => {
                let (_, op) = kernels(csr, &ctx).into_iter().find(|(n, _)| *n == k)?;
                Some(measure(op.as_ref()))
            }
        }
    };

    let mut failed = false;
    println!("vectorization no-loss gate (best of sell / csr-simd vs csr-baseline):");
    for (mname, base, best, which) in &vec_gate {
        let (mut base, mut best, mut which) = (*base, *best, *which);
        // On an apparent loss, re-measure the scalar reference and both
        // vectorized contenders together, so the comparison happens inside
        // one noise window instead of pitting a lucky baseline sample
        // against an unlucky vectorized one.
        let mut tries = 0;
        while best < base && tries < RETRIES {
            tries += 1;
            let Some(new_base) = remeasure(mname, "csr-baseline") else {
                break;
            };
            base = new_base;
            best = 0.0;
            which = "none";
            for k in ["sell", "csr-simd"] {
                if let Some(v) = remeasure(mname, k) {
                    if v > best {
                        best = v;
                        which = k;
                    }
                }
            }
        }
        let ratio = best / base.max(1e-12);
        let verdict = if best < base {
            "FAIL"
        } else if tries > 0 {
            "ok (retried)"
        } else {
            "ok"
        };
        println!("  {mname:>16}: {which:<8} {best:>8.3} vs {base:>8.3}  ({ratio:.2}x)  {verdict}");
        if best < base {
            eprintln!(
                "FAIL: best vectorized kernel loses to scalar csr-baseline on {mname} \
                 ({best:.3} < {base:.3} Gflop/s)"
            );
            failed = true;
        }
    }

    // Tuning no-loss gate: the plan the tuning service promotes must never
    // measure slower than the classifier's one-shot plan. When the tuner
    // kept the classifier's own plan the two rows time the *same* kernel
    // configuration and the comparison is pure noise, so the gate holds by
    // construction; when a promotion happened, the independently
    // re-measured win is enforced (with the standard retry protocol).
    println!("tuning no-loss gate (tuned service vs classifier one-shot):");
    for (mname, a_gf, t_gf, a_label, t_label) in &tune_gate {
        if a_label == t_label {
            println!(
                "  {mname:>16}: tuned kept the classifier plan [{t_label}] \
                 ({t_gf:.3} vs {a_gf:.3})  ok (same plan)"
            );
            continue;
        }
        let (mut a, mut t) = (*a_gf, *t_gf);
        let mut tries = 0;
        while t < a && tries < RETRIES {
            tries += 1;
            // Re-measure both sides inside one noise window.
            let (Some(na), Some(nt)) = (remeasure(mname, "adaptive"), remeasure(mname, "tuned"))
            else {
                break;
            };
            a = na;
            t = nt;
        }
        let verdict = if t < a {
            "FAIL"
        } else if tries > 0 {
            "ok (retried)"
        } else {
            "ok"
        };
        println!(
            "  {mname:>16}: tuned [{t_label}] {t:>8.3} vs adaptive [{a_label}] {a:>8.3}  {verdict}"
        );
        if t < a {
            eprintln!(
                "FAIL: tuned plan loses to the classifier one-shot on {mname} \
                 ({t:.3} < {a:.3} Gflop/s)"
            );
            failed = true;
        }
    }
    let tstats = tuner.stats();
    println!(
        "plan tuner: {} hit(s), {} miss(es), {} promotion(s), {} timed trial(s); cache -> {plan_cache_path}",
        tstats.hits, tstats.misses, tstats.promotions, tstats.timed_trials
    );

    // Sharded no-loss gate: with every shard kernel resident, streaming
    // through the container must not lose to the whole-matrix scalar CSR
    // baseline — the per-shard formats have to buy back the per-shard
    // dispatch overhead. Correctness and residency failures recorded above
    // fail here too.
    {
        for msg in &shard_failures {
            eprintln!("FAIL: {msg}");
            failed = true;
        }
        let mut tries = 0;
        while shard_gf < shard_base_gf && tries < RETRIES {
            tries += 1;
            // Re-measure both sides inside one noise window.
            shard_gf = measure(sharded.op.as_ref());
            shard_base_gf = measure(&ParallelCsr::baseline(stream_csr.clone(), ctx.clone()));
        }
        let ratio = shard_gf / shard_base_gf.max(1e-12);
        let verdict = if shard_gf < shard_base_gf {
            "FAIL"
        } else if tries > 0 {
            "ok (retried)"
        } else {
            "ok"
        };
        println!(
            "sharded no-loss gate on {STREAM_MATRIX}: sharded-spmv {shard_gf:.3} vs \
             csr-baseline {shard_base_gf:.3} Gflop/s ({ratio:.2}x at window {sharded_window})  {verdict}"
        );
        if shard_gf < shard_base_gf {
            eprintln!(
                "FAIL: sharded out-of-core SpMV loses to the whole-matrix CSR baseline on \
                 {STREAM_MATRIX} ({shard_gf:.3} < {shard_base_gf:.3} Gflop/s)"
            );
            failed = true;
        }
    }

    // Serving coalescing acceptance gate: folding a backlog of
    // single-vector requests into SpMM batches must pay — batched
    // throughput ≥ 1.5x the closed-loop one-at-a-time rate on the banded
    // member, at an effective batch width of at least 4. Both halves are
    // enforced: a coalescer that silently stopped batching (width → 1)
    // fails the width condition rather than disarming the ratio check.
    {
        let mut tries = 0;
        while (serve_coal.mean_batch < 4.0 || serve_coal.gflops < 1.5 * serve_seq.gflops)
            && tries < RETRIES
        {
            tries += 1;
            // Re-measure both modes inside one noise window.
            serve_seq = measure_serving(&ctx, &serve_csr, plan_cache_path, false);
            serve_coal = measure_serving(&ctx, &serve_csr, plan_cache_path, true);
        }
        let ratio = serve_coal.gflops / serve_seq.gflops.max(1e-12);
        let verdict = if serve_coal.mean_batch < 4.0 || ratio < 1.5 {
            "FAIL"
        } else if tries > 0 {
            "ok (retried)"
        } else {
            "ok"
        };
        println!(
            "serving coalescing gate on {SERVE_MATRIX} [plan {}]: coalesced {:.3} vs sequential \
             {:.3} Gflop/s ({ratio:.2}x at mean batch {:.1}, need >= 1.50x at width >= 4)  {verdict}",
            serve_coal.plan, serve_coal.gflops, serve_seq.gflops, serve_coal.mean_batch
        );
        if serve_coal.mean_batch < 4.0 {
            eprintln!(
                "FAIL: serving coalescer achieved mean batch {:.2} (< 4) on a {SERVE_REQUESTS}-deep backlog",
                serve_coal.mean_batch
            );
            failed = true;
        } else if ratio < 1.5 {
            eprintln!(
                "FAIL: coalesced serving throughput is only {ratio:.2}x the one-at-a-time rate \
                 on {SERVE_MATRIX} (needs >= 1.5x)"
            );
            failed = true;
        }
    }

    // Merge-path acceptance comparison. The structural win only exists when
    // the hub row overflows a whole-row nonzero quota — hub_share > 1 /
    // nthreads — so the wall-clock gate is armed only when the hub fills at
    // least 1.5 quotas (e.g. a ~33% hub needs ≥ 5 threads); below that the
    // comparison is informational and the deterministic modeled gate in
    // tests/merge_path.rs carries the criterion.
    println!(
        "merge-path on powerlaw-hub-8k: merge {hub_merge:.3} Gflop/s vs best whole-row {hub_best_whole_row:.3} Gflop/s"
    );
    if hub_share * nthreads as f64 >= 1.5 {
        if hub_merge <= hub_best_whole_row {
            eprintln!("FAIL: merge-path must beat every whole-row CSR schedule on the hub matrix");
            failed = true;
        }
    } else {
        println!(
            "  (hub holds {:.0}% of nonzeros — with {nthreads} thread(s) a whole-row quota can \
             still contain it, so the comparison is not gated here; tests/merge_path.rs gates the \
             modeled equivalent)",
            hub_share * 100.0
        );
    }

    // SpTRSV no-loss gate: on the wide-DAG SPD member, level-scheduled must
    // reach at least the serial-substitution rate once more than one thread
    // participates. At one thread the level kernel *is* serial (construction
    // downgrades it), so the comparison is reported but not gated.
    println!(
        "sptrsv on {SPTRSV_GATE_MATRIX}: level {trsv_level:.3} Gflop/s vs serial {trsv_serial:.3} Gflop/s"
    );
    if nthreads > 1 {
        let mut tries = 0;
        while trsv_level < trsv_serial && tries < RETRIES {
            tries += 1;
            // Re-measure both sides inside one noise window, like the
            // vectorization gate does.
            if let Some((_, csr)) = mats.iter().find(|(n, _)| *n == SPTRSV_GATE_MATRIX) {
                for (kname, kernel) in trsv_kernels(csr, &ctx) {
                    let gf = measure_trsv(&kernel);
                    match kname {
                        "sptrsv-serial" => trsv_serial = gf,
                        "sptrsv-level" => trsv_level = gf,
                        _ => {}
                    }
                }
            }
        }
        if trsv_level < trsv_serial {
            eprintln!(
                "FAIL: level-scheduled SpTRSV loses to serial substitution on \
                 {SPTRSV_GATE_MATRIX} ({trsv_level:.3} < {trsv_serial:.3} Gflop/s) at {nthreads} threads"
            );
            failed = true;
        }
    } else {
        println!("  (single-threaded host: level-scheduling cannot engage, comparison not gated)");
    }

    // Preconditioned-CG iteration pin (deterministic — no timing noise):
    // IC(0) on the Poisson stencil must converge in at most half the
    // Jacobi-preconditioned iterations at the same tolerance, the
    // acceptance criterion for the preconditioning layer. Mirrors the
    // hard pin in tests/trsv_equivalence.rs so a bench-tier run catches a
    // factorization regression even when the test tier is skipped.
    {
        use sparseopt_solver::{cg, Ic0Precond, JacobiPrecond, SolverOptions};
        let (_, poisson) = mats
            .iter()
            .find(|(n, _)| *n == "poisson2d-96")
            .expect("poisson2d-96 is a pinned suite member");
        let op = SerialCsr::new(poisson.clone());
        let b: Vec<f64> = (0..poisson.nrows())
            .map(|i| 1.0 + (i as f64 * 0.07).sin())
            .collect();
        let opts = SolverOptions {
            tol: 1e-8,
            max_iters: 2_000,
        };
        let jacobi = JacobiPrecond::new(poisson).expect("Poisson diagonal");
        let ic = Ic0Precond::new(poisson).expect("Poisson is SPD");
        let mut x = vec![0.0; poisson.nrows()];
        let out_j = cg(&op, &b, &mut x, &jacobi, &opts);
        x.fill(0.0);
        let out_ic = cg(&op, &b, &mut x, &ic, &opts);
        println!(
            "preconditioned CG on poisson2d-96: jacobi {} iters, ic0 {} iters",
            out_j.iterations, out_ic.iterations
        );
        if !out_j.converged || !out_ic.converged {
            eprintln!("FAIL: preconditioned CG did not converge on poisson2d-96");
            failed = true;
        } else if 2 * out_ic.iterations > out_j.iterations {
            eprintln!(
                "FAIL: IC(0)-CG needs {} iterations, more than half of Jacobi-CG's {}",
                out_ic.iterations, out_j.iterations
            );
            failed = true;
        }
    }

    write_json(&out_path, nthreads, &entries).expect("failed to write results JSON");
    println!("wrote {out_path}");
    if write_baseline {
        // Re-seeding is an explicit request, but it must never launder a
        // failed acceptance comparison into a green exit.
        write_json(&baseline_path, nthreads, &entries).expect("failed to write baseline JSON");
        println!("wrote {baseline_path}");
        if failed {
            eprintln!(
                "\nci_bench: FAILED (baseline written, but the acceptance comparison failed)"
            );
            std::process::exit(1);
        }
        println!("\nci_bench: ok");
        return;
    }

    // Regression gate against the committed baseline. A missing file skips
    // the gate (seed one with --write-baseline); an *unreadable* file is a
    // hard failure — a corrupt baseline must never silently turn the gate
    // off. Absolute Gflop/s only compare on the same hardware shape; when
    // the baseline was recorded with a different thread count (e.g. seeded
    // on a laptop, gated on a CI runner) the gate falls back to comparing
    // each kernel's per-matrix speedup over that host's own csr-baseline —
    // a host-portable shape — at doubled tolerance, so the tier still
    // catches a kernel collapsing instead of going silently inert.
    if !std::path::Path::new(&baseline_path).exists() {
        println!(
            "no baseline at {baseline_path}; regression gate skipped (run --write-baseline to seed it)"
        );
    } else {
        match read_json(&baseline_path) {
            Err(e) => {
                eprintln!("FAIL: unreadable baseline: {e}");
                failed = true;
            }
            Ok((base_threads, baseline)) if base_threads != nthreads => {
                let rel_tol = (2.0 * tolerance).min(0.9);
                println!(
                    "\nbaseline recorded on {base_threads} thread(s), this host has {nthreads}: \
                     absolute Gflop/s are not comparable; gating per-matrix speedups over \
                     csr-baseline instead (tolerance {:.0}%):",
                    rel_tol * 100.0
                );
                let lookup = |set: &[Entry], m: &str, k: &str| {
                    set.iter()
                        .find(|e| e.matrix == m && e.kernel == k)
                        .map(|e| e.gflops)
                };
                for b in &baseline {
                    if b.kernel == "csr-baseline" {
                        continue;
                    }
                    let refs = (
                        lookup(&baseline, &b.matrix, "csr-baseline"),
                        lookup(&entries, &b.matrix, "csr-baseline"),
                        lookup(&entries, &b.matrix, &b.kernel),
                    );
                    let (Some(base_ref), Some(new_ref), Some(new_abs)) = refs else {
                        eprintln!(
                            "FAIL: {}/{} missing from the suite or its csr-baseline reference",
                            b.matrix, b.kernel
                        );
                        failed = true;
                        continue;
                    };
                    let ratio_base = b.gflops / base_ref.max(1e-12);
                    let mut ratio_new = new_abs / new_ref.max(1e-12);
                    let floor = ratio_base * (1.0 - rel_tol);
                    let mut tries = 0;
                    while ratio_new < floor && tries < RETRIES {
                        tries += 1;
                        match remeasure(&b.matrix, &b.kernel) {
                            Some(again) => ratio_new = ratio_new.max(again / new_ref.max(1e-12)),
                            None => break,
                        }
                    }
                    let verdict = if ratio_new < floor {
                        "REGRESSED"
                    } else if tries > 0 {
                        "ok (retried)"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:>16}/{:<13} speedup {:>6.3} vs baseline {:>6.3}  {verdict}",
                        b.matrix, b.kernel, ratio_new, ratio_base
                    );
                    if ratio_new < floor {
                        failed = true;
                    }
                }
            }
            Ok((_, baseline)) => {
                println!(
                    "\nregression gate vs {baseline_path} (tolerance {:.0}%):",
                    tolerance * 100.0
                );
                for b in &baseline {
                    match entries
                        .iter()
                        .find(|e| e.matrix == b.matrix && e.kernel == b.kernel)
                    {
                        None => {
                            eprintln!("FAIL: {}/{} vanished from the suite", b.matrix, b.kernel);
                            failed = true;
                        }
                        Some(e) => {
                            let floor = b.gflops * (1.0 - tolerance);
                            let mut gf = e.gflops;
                            let mut tries = 0;
                            while gf < floor && tries < RETRIES {
                                tries += 1;
                                match remeasure(&b.matrix, &b.kernel) {
                                    Some(again) => gf = gf.max(again),
                                    None => break,
                                }
                            }
                            let verdict = if gf < floor {
                                "REGRESSED"
                            } else if tries > 0 {
                                "ok (retried)"
                            } else {
                                "ok"
                            };
                            println!(
                                "  {:>16}/{:<13} {:>8.3} vs baseline {:>8.3}  {verdict}",
                                b.matrix, b.kernel, gf, b.gflops
                            );
                            if gf < floor {
                                failed = true;
                            }
                        }
                    }
                }
            }
        }
    }

    if failed {
        eprintln!("\nci_bench: FAILED");
        std::process::exit(1);
    }
    println!("\nci_bench: ok");
}
