//! Regenerates **Table V** of the paper: "Minimum number of solver
//! iterations required to amortize the autotuning runtime overhead of
//! different optimizers on KNL".
//!
//! For every suite matrix the per-SpMV times of MKL and of each optimizer's
//! selected kernel are modeled on KNL; each optimizer's preprocessing time
//! (classification, format conversion, JIT, empirical trials) is charged per
//! the cost model in `sparseopt_optimizer::amortization`; the minimum
//! iteration count follows `N = t_pre / (t_MKL − t_opt)`.
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin table5`

use sparseopt_bench::report::Table;
use sparseopt_bench::train_feature_classifier;
use sparseopt_matrix::{FeatureSet, MatrixFeatures};
use sparseopt_ml::TreeParams;
use sparseopt_optimizer::{
    amortization_iters, plan_conversion_cost_spmv, single_and_pair_plans, single_plans, summarize,
    OptimizationPlan, OptimizerKind, SimOptimizerStudy,
};
use sparseopt_sim::{simulate, Platform};

fn main() {
    let platform = Platform::knl();
    eprintln!(
        "[table5] training feature-guided classifier on {} ...",
        platform.name
    );
    let clf = train_feature_classifier(&platform, FeatureSet::LinearInNnz, TreeParams::default());
    let study = SimOptimizerStudy::new(platform.clone());
    let llc = platform.total_cache_bytes();
    let suite = sparseopt_matrix::paper_suite();

    // Per-kind per-matrix amortization counts.
    let mut iters: std::collections::HashMap<OptimizerKind, Vec<Option<f64>>> = OptimizerKind::ALL
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();

    for m in &suite {
        let eff_llc = ((llc as f64 / m.scale) as usize).max(1);
        let features = MatrixFeatures::extract(&m.csr, eff_llc);
        let profile = study
            .profiler()
            .profile_scaled(&m.csr, m.scale, m.locality_scale());
        let e = study.evaluate_scaled(&m.csr, &features, m.scale, m.locality_scale(), Some(&clf));
        let nnz2 = 2.0 * m.csr.nnz() as f64;

        let secs_of = |gflops: f64| nnz2 / (gflops.max(1e-9) * 1e9);
        let t_mkl = secs_of(e.mkl);
        let t_base = secs_of(e.baseline);

        // Best empirical plans for the trivial optimizers.
        let best_of = |plans: &[OptimizationPlan]| -> (f64, f64) {
            // Returns (t_opt, summed conversion cost of every trialed plan).
            let mut best = t_base;
            let mut conv = 0.0;
            for p in plans {
                conv += plan_conversion_cost_spmv(p);
                let g = simulate(&profile, &platform, &p.to_sim_config()).gflops;
                best = best.min(secs_of(g));
            }
            (best, conv)
        };
        let singles = single_plans(&features);
        let pairs = single_and_pair_plans(&features);
        let (t_single, conv_single) = best_of(&singles);
        let (t_pairs, conv_pairs) = best_of(&pairs);

        let t_feat = e.feat.map(secs_of).unwrap_or(t_base);
        let t_prof = secs_of(e.prof);
        let t_ie = secs_of(e.mkl_ie);

        let feat_plan = OptimizationPlan::from_classes(
            e.classes_feature.unwrap_or(e.classes_profile),
            &features,
        );

        for kind in OptimizerKind::ALL {
            let (t_opt, selected) = match kind {
                OptimizerKind::TrivialSingle => (t_single, e.oracle_plan.clone()),
                OptimizerKind::TrivialCombined => (t_pairs, e.oracle_plan.clone()),
                OptimizerKind::ProfileGuided => (t_prof, e.prof_plan.clone()),
                OptimizerKind::FeatureGuided => (t_feat, feat_plan.clone()),
                OptimizerKind::InspectorExecutor => (t_ie, OptimizationPlan::baseline()),
            };
            let t_pre = kind.preprocessing_spmv_equiv(&selected, conv_single, conv_pairs) * t_base;
            iters
                .get_mut(&kind)
                .expect("all kinds present")
                .push(amortization_iters(t_pre, t_mkl, t_opt));
        }
    }

    let mut table = Table::new(vec![
        "optimizer",
        "N_iters,best",
        "N_iters,avg",
        "N_iters,worst",
        "never",
    ]);
    for kind in OptimizerKind::ALL {
        let row = summarize(kind.label(), &iters[&kind]);
        let f = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{:.0}", v.ceil())
            }
        };
        table.row(vec![
            row.label.to_string(),
            f(row.best),
            f(row.avg),
            f(row.worst),
            row.never.to_string(),
        ]);
    }

    println!(
        "== Table V: minimum solver iterations to amortize optimizer overhead ({} model) ==\n",
        platform.name
    );
    print!("{}", table.render());
    println!(
        "\n'never' counts matrices where the optimizer is not faster than MKL \
         (overhead can never amortize)."
    );
    println!(
        "(paper, KNL: trivial-single 455/910/8016; trivial-combined 1992/3782/37111; \
         profile 145/267/3145; feature 27/60/567; MKL IE 28/336/1229)"
    );
}
