//! Regenerates **Fig. 1** of the paper: "Speedup (slowdown) of different
//! software optimizations applied to the CSR SpMV kernel on Intel Xeon Phi
//! (codename Knights Corner)".
//!
//! For each suite matrix we model the baseline CSR kernel on KNC and three
//! blindly-applied single optimizations — software prefetching,
//! vectorization, and auto scheduling — and report each one's speedup over
//! the baseline. The paper's takeaway must reproduce: every optimization
//! helps some matrices and *slows others down* (values below 1.0).
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin fig1 [--csv]`

use sparseopt_bench::report::{speedup, Table};
use sparseopt_core::prelude::*;
use sparseopt_sim::{simulate, Platform, SimKernelConfig, SimMatrixProfile};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let knc = Platform::knc();
    let suite = sparseopt_matrix::paper_suite();

    let mut table = Table::new(vec![
        "matrix",
        "baseline GF/s",
        "prefetch",
        "vectorization",
        "auto-sched",
    ]);
    let (mut slow, mut fast) = (0usize, 0usize);

    for m in &suite {
        let profile = SimMatrixProfile::analyze_scaled(&m.csr, &knc, m.scale, m.locality_scale());
        let base = simulate(&profile, &knc, &SimKernelConfig::baseline()).gflops;

        let pf = simulate(
            &profile,
            &knc,
            &SimKernelConfig {
                prefetch: true,
                ..SimKernelConfig::baseline()
            },
        )
        .gflops;
        let vec = simulate(
            &profile,
            &knc,
            &SimKernelConfig {
                inner: InnerLoop::Simd,
                ..SimKernelConfig::baseline()
            },
        )
        .gflops;
        let auto = simulate(
            &profile,
            &knc,
            &SimKernelConfig {
                schedule: Schedule::Auto,
                ..SimKernelConfig::baseline()
            },
        )
        .gflops;

        for s in [pf / base, vec / base, auto / base] {
            if s < 0.995 {
                slow += 1;
            } else if s > 1.05 {
                fast += 1;
            }
        }
        table.row(vec![
            m.name.to_string(),
            format!("{base:.2}"),
            speedup(pf / base),
            speedup(vec / base),
            speedup(auto / base),
        ]);
    }

    println!("== Fig. 1: speedup of blind single optimizations over baseline CSR (KNC model) ==\n");
    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }
    println!(
        "\n{fast} (matrix, optimization) pairs speed up, {slow} slow down — \
         blindly applying optimizations can hinder performance (paper Fig. 1)."
    );
}
