//! Ablation studies for the design choices DESIGN.md calls out, on the KNC
//! model:
//!
//! 1. **Delta width** — u8 vs u16 vs the auto rule (footprint + modeled
//!    speed) on regular/irregular matrices;
//! 2. **Decomposition threshold** — sweep of the long-row cutoff factor on a
//!    skewed matrix;
//! 3. **Dynamic chunk size** — scheduling-overhead/balance trade-off;
//! 4. **Classifier thresholds** — adaptive speedup as `T_ML`/`T_IMB` move
//!    off the paper's tuned values;
//! 5. **Format shoot-out** — CSR vs ELL vs BCSR footprints on structurally
//!    different matrices (why the paper builds on CSR).
//!
//! Usage: `cargo run --release -p sparseopt-bench --bin ablation`

use sparseopt_bench::report::Table;
use sparseopt_classifier::{ProfileGuidedClassifier, ProfileThresholds};
use sparseopt_core::prelude::*;
use sparseopt_matrix::{generators as g, MatrixFeatures};
use sparseopt_optimizer::{OptimizationPlan, SimOptimizerStudy};
use sparseopt_sim::{simulate, Platform, SimFormat, SimKernelConfig, SimMatrixProfile};

fn main() {
    let knc = Platform::knc();

    // ---- 1. Delta width ---------------------------------------------------
    println!("== Ablation 1: delta compression width (KNC model) ==\n");
    let mut t = Table::new(vec![
        "matrix",
        "width",
        "index bytes/nnz",
        "exceptions",
        "GF/s",
    ]);
    for (name, csr) in [
        (
            "banded-150k-b12",
            CsrMatrix::from_coo(&g::banded(150_000, 12)),
        ),
        (
            "random-40k-d8",
            CsrMatrix::from_coo(&g::random_uniform(40_000, 8, 1)),
        ),
    ] {
        let profile = SimMatrixProfile::analyze(&csr, &knc);
        for (label, delta) in [
            (
                "u8",
                DeltaCsrMatrix::from_csr_with_width(&csr, DeltaWidth::U8),
            ),
            (
                "u16",
                DeltaCsrMatrix::from_csr_with_width(&csr, DeltaWidth::U16),
            ),
            ("auto", DeltaCsrMatrix::from_csr(&csr)),
        ] {
            let mut p = profile.clone();
            p.delta_index_bytes_per_nnz = delta.index_compression_ratio() * 4.0;
            let cfg = SimKernelConfig {
                format: SimFormat::DeltaCsr,
                inner: InnerLoop::Simd,
                ..SimKernelConfig::baseline()
            };
            let r = simulate(&p, &knc, &cfg);
            t.row(vec![
                name.to_string(),
                format!("{label} ({:?})", delta.width()),
                format!("{:.2}", delta.index_compression_ratio() * 4.0),
                delta.exception_count().to_string(),
                format!("{:.2}", r.gflops),
            ]);
        }
    }
    print!("{}", t.render());

    // ---- 2. Decomposition threshold ----------------------------------------
    println!("\n== Ablation 2: long-row threshold factor (skewed matrix, KNC model) ==\n");
    let skew = CsrMatrix::from_coo(&g::few_dense_rows(20_000, 2, 4, 3));
    let profile = SimMatrixProfile::analyze(&skew, &knc);
    let base = simulate(&profile, &knc, &SimKernelConfig::baseline()).gflops;
    let mut t = Table::new(vec![
        "threshold factor",
        "threshold nnz",
        "long rows",
        "GF/s",
        "speedup",
    ]);
    for factor in [1.5f64, 2.0, 4.0, 8.0, 16.0, 64.0] {
        let threshold = DecomposedCsrMatrix::auto_threshold(&skew, factor);
        let dec = DecomposedCsrMatrix::from_csr(&skew, threshold);
        let cfg = SimKernelConfig {
            format: SimFormat::Decomposed { threshold },
            ..SimKernelConfig::baseline()
        };
        let r = simulate(&profile, &knc, &cfg);
        t.row(vec![
            format!("{factor:.1}"),
            threshold.to_string(),
            dec.long_rows().len().to_string(),
            format!("{:.2}", r.gflops),
            format!("{:.2}x", r.gflops / base),
        ]);
    }
    print!("{}", t.render());

    // ---- 3. Dynamic chunk size ----------------------------------------------
    println!("\n== Ablation 3: dynamic-schedule chunk size (skewed matrix, KNC model) ==\n");
    let mut t = Table::new(vec!["chunk", "GF/s", "vs baseline"]);
    for chunk in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let cfg = SimKernelConfig {
            schedule: Schedule::Dynamic { chunk },
            ..SimKernelConfig::baseline()
        };
        let r = simulate(&profile, &knc, &cfg);
        t.row(vec![
            chunk.to_string(),
            format!("{:.2}", r.gflops),
            format!("{:.2}x", r.gflops / base),
        ]);
    }
    print!("{}", t.render());

    // ---- 4. Classifier thresholds --------------------------------------------
    println!("\n== Ablation 4: profile-guided thresholds vs adaptive speedup (KNC model) ==\n");
    let matrices: Vec<CsrMatrix> = vec![
        CsrMatrix::from_coo(&g::banded(60_000, 6)),
        CsrMatrix::from_coo(&g::random_uniform(20_000, 8, 2)),
        CsrMatrix::from_coo(&g::few_dense_rows(20_000, 2, 4, 4)),
        CsrMatrix::from_coo(&g::poisson3d(24, 24, 24)),
        CsrMatrix::from_coo(&g::power_law(20_000, 6, 0.9, 5)),
    ];
    let study = SimOptimizerStudy::new(knc.clone());
    let mut t = Table::new(vec!["T_ML", "T_IMB", "mean speedup over baseline"]);
    for (t_ml, t_imb) in [(1.0, 1.0), (1.1, 1.1), (1.25, 1.24), (1.5, 1.5), (2.5, 2.5)] {
        let clf = ProfileGuidedClassifier::with_thresholds(ProfileThresholds {
            t_ml,
            t_imb,
            ..Default::default()
        });
        let mut sum = 0.0;
        for csr in &matrices {
            let prof = study.profiler().profile(csr);
            let bounds = study.profiler().measure_profile(&prof);
            let features = MatrixFeatures::extract(csr, knc.total_cache_bytes());
            let plan = OptimizationPlan::from_classes(clf.classify(&bounds), &features);
            let g = if plan.is_noop() {
                bounds.p_csr
            } else {
                study.plan_gflops(&prof, &plan)
            };
            sum += g / bounds.p_csr;
        }
        t.row(vec![
            format!("{t_ml:.2}"),
            format!("{t_imb:.2}"),
            format!("{:.3}x", sum / matrices.len() as f64),
        ]);
    }
    print!("{}", t.render());
    println!("(the paper's grid search landed on T_ML = 1.25, T_IMB = 1.24)");

    // ---- 5. Format shoot-out ---------------------------------------------------
    println!("\n== Ablation 5: storage footprint per format (bytes/nnz) ==\n");
    let mut t = Table::new(vec![
        "matrix",
        "CSR",
        "delta-CSR",
        "ELL",
        "BCSR 4x4",
        "BCSR fill",
    ]);
    for (name, csr) in [
        ("banded", CsrMatrix::from_coo(&g::banded(20_000, 4))),
        (
            "blocked-fem",
            CsrMatrix::from_coo(&g::blocked_fem(500, 4, 4, 9)),
        ),
        (
            "power-law",
            CsrMatrix::from_coo(&g::power_law(10_000, 6, 1.0, 10)),
        ),
        (
            "few-dense-rows",
            CsrMatrix::from_coo(&g::few_dense_rows(10_000, 2, 3, 11)),
        ),
    ] {
        let nnz = csr.nnz() as f64;
        let delta = DeltaCsrMatrix::from_csr(&csr);
        let ell = EllMatrix::from_csr(&csr);
        let bcsr = BcsrMatrix::from_csr(&csr, 4, 4);
        t.row(vec![
            name.to_string(),
            format!("{:.1}", csr.footprint_bytes() as f64 / nnz),
            format!("{:.1}", delta.footprint_bytes() as f64 / nnz),
            format!("{:.1}", ell.footprint_bytes() as f64 / nnz),
            format!("{:.1}", bcsr.footprint_bytes() as f64 / nnz),
            format!("{:.2}", bcsr.fill_ratio()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(ELL explodes on skew; BCSR pays fill off the FEM block structure —\n\
         the paper's CSR-based pool avoids both failure modes.)"
    );
}
