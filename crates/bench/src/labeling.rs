//! Shared labeling pipeline: run the profile-guided classifier (on a modeled
//! platform) over a matrix suite, producing the labeled samples that train
//! and evaluate the feature-guided classifier (paper Section III-D3:
//! "we use our profile-guided classifier for this purpose").

use rayon::prelude::*;
use sparseopt_classifier::{
    ClassSet, FeatureGuidedClassifier, LabeledMatrix, PerClassBounds, ProfileGuidedClassifier,
    SimBoundsProfiler,
};
use sparseopt_matrix::{FeatureSet, MatrixFeatures, SuiteMatrix};
use sparseopt_ml::TreeParams;
use sparseopt_sim::Platform;

/// A suite matrix together with everything the harnesses need: features,
/// bounds, and profile-guided classes.
pub struct LabeledSuiteMatrix {
    /// The matrix and its provenance.
    pub matrix: SuiteMatrix,
    /// Table I features (LLC sized for the platform).
    pub features: MatrixFeatures,
    /// Per-class bounds on the platform.
    pub bounds: PerClassBounds,
    /// Profile-guided classes.
    pub classes: ClassSet,
}

impl LabeledSuiteMatrix {
    /// Converts to the classifier-crate training sample type.
    pub fn to_labeled(&self) -> LabeledMatrix {
        LabeledMatrix {
            name: self.matrix.name.to_string(),
            features: self.features.clone(),
            classes: self.classes,
        }
    }
}

/// Labels every matrix of `suite` on `platform` with the profile-guided
/// classifier (parallelized across matrices).
pub fn label_suite(suite: Vec<SuiteMatrix>, platform: &Platform) -> Vec<LabeledSuiteMatrix> {
    let profiler = SimBoundsProfiler::new(platform.clone());
    let classifier = ProfileGuidedClassifier::new();
    let llc = platform.total_cache_bytes();
    suite
        .into_par_iter()
        .map(|m| {
            // The `size` feature and the bounds both see the UF original's
            // scale: caches shrink by `m.scale` relative to the stand-in.
            let eff_llc = ((llc as f64 / m.scale) as usize).max(1);
            let features = MatrixFeatures::extract(&m.csr, eff_llc);
            let bounds = profiler.measure_scaled(&m.csr, m.scale, m.locality_scale());
            let classes = classifier.classify(&bounds);
            LabeledSuiteMatrix {
                matrix: m,
                features,
                bounds,
                classes,
            }
        })
        .collect()
}

/// Trains the feature-guided classifier on the 210-matrix training sweep,
/// labeled by the profile-guided classifier on `platform`.
pub fn train_feature_classifier(
    platform: &Platform,
    set: FeatureSet,
    params: TreeParams,
) -> FeatureGuidedClassifier {
    let labeled = label_suite(sparseopt_matrix::training_suite(), platform);
    let samples: Vec<LabeledMatrix> = labeled.iter().map(|l| l.to_labeled()).collect();
    FeatureGuidedClassifier::train(&samples, set, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_small_suite_with_diverse_classes() {
        // A handful of named matrices spanning categories.
        let names = ["poisson3Db", "rajat30", "SiO2", "small-dense"];
        let suite: Vec<SuiteMatrix> = names
            .iter()
            .map(|n| sparseopt_matrix::by_name(n).expect("known"))
            .collect();
        let labeled = label_suite(suite, &Platform::knc());
        assert_eq!(labeled.len(), 4);
        // The circuit matrix (rajat30 stand-in) must be flagged imbalanced.
        let rajat = labeled.iter().find(|l| l.matrix.name == "rajat30").unwrap();
        assert!(
            rajat
                .classes
                .contains(sparseopt_classifier::Bottleneck::Imb)
                || rajat
                    .classes
                    .contains(sparseopt_classifier::Bottleneck::Cmp),
            "rajat30 classes: {}",
            rajat.classes
        );
    }
}
