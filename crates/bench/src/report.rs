//! Plain-text table rendering for the figure/table harnesses.

/// A simple left-padded text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a Gflop/s value with two decimals.
pub fn gf(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a speedup with two decimals and an `x` suffix.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["name", "gflops"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["longer-name", "12.34"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("12.34"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(gf(1.234), "1.23");
        assert_eq!(speedup(2.0), "2.00x");
    }
}
