//! Criterion group for the merge-path nonzero-split operator: `MergeCsr`
//! against every whole-row CSR schedule (and the long-row decomposition) on
//! the residual-IMB acceptance shape — a power-law matrix whose hub row
//! holds ≥ 30% of all nonzeros — plus a uniform matrix where the nonzero
//! split buys nothing and must merely not lose.
//!
//! On multi-core hosts the merge group's wall clock demonstrates the
//! whole-row collapse directly; `ci_bench` turns the same comparison into a
//! hard CI gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_merge_spmv(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "powerlaw-hub-8k",
            Arc::new(CsrMatrix::from_coo(&g::power_law_hub(8192, 2, 11))),
        ),
        (
            "uniform-8k-d8",
            Arc::new(CsrMatrix::from_coo(&g::random_uniform(8192, 8, 1))),
        ),
    ];

    for (name, csr) in &cases {
        let mut group = c.benchmark_group(format!("merge_spmv/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(20);

        let x = vec![1.0f64; csr.ncols()];
        let mut y = vec![0.0f64; csr.nrows()];

        for schedule in [
            Schedule::StaticRows,
            Schedule::StaticNnz,
            Schedule::Dynamic { chunk: 64 },
            Schedule::Guided { min_chunk: 4 },
            Schedule::Auto,
        ] {
            let label = schedule.label();
            let k = ParallelCsr::with_schedule(csr.clone(), schedule, ctx.clone());
            group.bench_function(BenchmarkId::new("whole-row", label), |b| {
                b.iter(|| k.spmv(&x, &mut y))
            });
        }

        let threshold = DecomposedCsrMatrix::auto_threshold(csr, 4.0);
        let dec = DecomposedKernel::baseline(
            Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold)),
            ctx.clone(),
        );
        group.bench_function("decomposed", |b| b.iter(|| dec.spmv(&x, &mut y)));

        let merge = MergeCsr::baseline(csr.clone(), ctx.clone());
        group.bench_function("merge", |b| b.iter(|| merge.spmv(&x, &mut y)));

        // The multi-vector path shares the carry machinery: exercise it.
        let xm = MultiVec::from_fn(csr.ncols(), 8, |i, j| {
            0.5 + ((i * 7 + j) as f64 * 0.19).sin()
        });
        let mut ym = MultiVec::zeros(csr.nrows(), 8);
        group.bench_function("merge-spmm-k8", |b| b.iter(|| merge.spmm(&xm, &mut ym)));

        group.finish();
    }
}

criterion_group!(benches, bench_merge_spmv);
criterion_main!(benches);
