//! Criterion group for the SELL-C-σ operator: the unrolled and AVX2 chunk
//! kernels against scalar and per-row-SIMD CSR, on the shapes the SIMD
//! regression was diagnosed on — a short-row banded matrix (where per-row
//! gather SIMD loses worst), a 5-point Poisson stencil, and a power-law
//! matrix with hub rows (the padding stress case for sliced ELLPACK).
//!
//! The `ci_bench` no-loss gate repeats these comparisons as pinned
//! regression checks; `tests/sell_equivalence.rs` pins correctness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_sell_spmv(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "banded-20k-b4",
            Arc::new(CsrMatrix::from_coo(&g::banded(20_000, 4))),
        ),
        (
            "poisson2d-96",
            Arc::new(CsrMatrix::from_coo(&g::poisson2d(96, 96))),
        ),
        (
            "powerlaw-hub-8k",
            Arc::new(CsrMatrix::from_coo(&g::power_law_hub(8192, 2, 11))),
        ),
    ];

    for (name, csr) in &cases {
        let mut group = c.benchmark_group(format!("sell_spmv/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(20);

        let x = vec![1.0f64; csr.ncols()];
        let mut y = vec![0.0f64; csr.nrows()];

        let base = ParallelCsr::baseline(csr.clone(), ctx.clone());
        group.bench_function("csr-baseline", |b| b.iter(|| base.spmv(&x, &mut y)));

        let simd_cfg = sparseopt_core::CsrKernelConfig {
            inner: InnerLoop::Simd,
            ..sparseopt_core::CsrKernelConfig::baseline()
        };
        let csr_simd = ParallelCsr::new(csr.clone(), simd_cfg, ctx.clone());
        group.bench_function("csr-simd", |b| b.iter(|| csr_simd.spmv(&x, &mut y)));

        let sell = Arc::new(SellMatrix::from_csr(csr));
        let unrolled = SellKernel::new(sell.clone(), false, ctx.clone());
        group.bench_function("sell-unrolled", |b| b.iter(|| unrolled.spmv(&x, &mut y)));

        let vectorized = SellKernel::vectorized(sell.clone(), ctx.clone());
        group.bench_function("sell-vectorized", |b| {
            b.iter(|| vectorized.spmv(&x, &mut y))
        });

        // The multi-vector path reuses the chunk layout with a column tile.
        let xm = MultiVec::from_fn(csr.ncols(), 8, |i, j| {
            0.5 + ((i * 7 + j) as f64 * 0.19).sin()
        });
        let mut ym = MultiVec::zeros(csr.nrows(), 8);
        group.bench_function("sell-spmm-k8", |b| b.iter(|| vectorized.spmm(&xm, &mut ym)));

        group.finish();
    }
}

criterion_group!(benches, bench_sell_spmv);
criterion_main!(benches);
