//! Criterion micro-benchmarks of the real SpMV kernel family on the host
//! machine: baseline vs. each Table II optimization, on one regular and one
//! irregular matrix. These complement the modeled figures with actual
//! wall-clock evidence that the kernel implementations behave as designed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_core::CsrKernelConfig;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_kernels(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "poisson3d-16",
            Arc::new(CsrMatrix::from_coo(&g::poisson3d(16, 16, 16))),
        ),
        (
            "random-8k-d8",
            Arc::new(CsrMatrix::from_coo(&g::random_uniform(8192, 8, 1))),
        ),
        (
            "fewdense-8k",
            Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(8192, 2, 3, 2))),
        ),
    ];

    for (name, csr) in &cases {
        let mut group = c.benchmark_group(format!("spmv/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(20);

        let x = vec![1.0f64; csr.ncols()];
        let mut y = vec![0.0f64; csr.nrows()];

        let serial = SerialCsr::new(csr.clone());
        group.bench_function("serial", |b| b.iter(|| serial.spmv(&x, &mut y)));

        let configs: Vec<(&str, CsrKernelConfig)> = vec![
            ("baseline", CsrKernelConfig::baseline()),
            (
                "prefetch",
                CsrKernelConfig {
                    prefetch: true,
                    ..CsrKernelConfig::baseline()
                },
            ),
            (
                "unrolled",
                CsrKernelConfig {
                    inner: InnerLoop::Unrolled4,
                    ..CsrKernelConfig::baseline()
                },
            ),
            (
                "simd",
                CsrKernelConfig {
                    inner: InnerLoop::Simd,
                    ..CsrKernelConfig::baseline()
                },
            ),
            (
                "auto-sched",
                CsrKernelConfig {
                    schedule: Schedule::Auto,
                    ..CsrKernelConfig::baseline()
                },
            ),
        ];
        for (label, cfg) in configs {
            let k = ParallelCsr::new(csr.clone(), cfg, ctx.clone());
            group.bench_function(BenchmarkId::new("parallel", label), |b| {
                b.iter(|| k.spmv(&x, &mut y))
            });
        }

        let delta = Arc::new(DeltaCsrMatrix::from_csr(csr));
        let dk = DeltaKernel::compressed_vectorized(delta, ctx.clone());
        group.bench_function("delta-simd", |b| b.iter(|| dk.spmv(&x, &mut y)));

        let threshold = DecomposedCsrMatrix::auto_threshold(csr, 4.0);
        let dec = Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold));
        let deck = DecomposedKernel::baseline(dec, ctx.clone());
        group.bench_function("decomposed", |b| b.iter(|| deck.spmv(&x, &mut y)));

        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
