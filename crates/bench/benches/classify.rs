//! Criterion benchmarks of the classification pipeline itself: decision-tree
//! training, tree query (the O(log n) claim of Section III-D), the
//! profile-guided rule evaluation, and a full simulated bounds measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use sparseopt_classifier::{
    Bottleneck, BoundsProfiler, ClassSet, FeatureGuidedClassifier, LabeledMatrix, PerClassBounds,
    ProfileGuidedClassifier, SimBoundsProfiler,
};
use sparseopt_core::prelude::*;
use sparseopt_matrix::{generators as g, FeatureSet, MatrixFeatures};
use sparseopt_ml::TreeParams;
use sparseopt_sim::Platform;
use std::sync::Arc;

const LLC: usize = 32 * 1024 * 1024;

fn labeled_corpus() -> Vec<LabeledMatrix> {
    let mut out = Vec::new();
    for k in 0..12 {
        let n = 1000 + 300 * k;
        for (name, m, classes) in [
            (
                "band",
                CsrMatrix::from_coo(&g::banded(n, 1 + k % 4)),
                ClassSet::from_classes(&[Bottleneck::Mb]),
            ),
            (
                "rand",
                CsrMatrix::from_coo(&g::random_uniform(n, 6, k as u64)),
                ClassSet::from_classes(&[Bottleneck::Ml]),
            ),
            (
                "skew",
                CsrMatrix::from_coo(&g::few_dense_rows(n, 2, 2, k as u64)),
                ClassSet::from_classes(&[Bottleneck::Imb, Bottleneck::Cmp]),
            ),
        ] {
            out.push(LabeledMatrix {
                name: format!("{name}{k}"),
                features: MatrixFeatures::extract(&m, LLC),
                classes,
            });
        }
    }
    out
}

fn bench_classify(c: &mut Criterion) {
    let samples = labeled_corpus();
    let mut group = c.benchmark_group("classify");
    group.sample_size(20);

    group.bench_function("tree-train-36", |b| {
        b.iter(|| {
            FeatureGuidedClassifier::train(&samples, FeatureSet::LinearInNnz, TreeParams::default())
        })
    });

    let clf =
        FeatureGuidedClassifier::train(&samples, FeatureSet::LinearInNnz, TreeParams::default());
    let probe = &samples[0].features;
    group.bench_function("tree-query", |b| b.iter(|| clf.classify(probe)));

    let bounds = PerClassBounds {
        p_csr: 4.0,
        p_mb: 11.0,
        p_ml: 8.0,
        p_imb: 5.0,
        p_cmp: 15.0,
        p_peak: 20.0,
    };
    let pgc = ProfileGuidedClassifier::new();
    group.bench_function("profile-rules", |b| b.iter(|| pgc.classify(&bounds)));

    let csr = Arc::new(CsrMatrix::from_coo(&g::poisson3d(12, 12, 12)));
    let profiler = SimBoundsProfiler::new(Platform::knc());
    group.bench_function("sim-bounds-measure", |b| b.iter(|| profiler.measure(&csr)));
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
