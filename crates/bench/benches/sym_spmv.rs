//! Criterion group for the symmetric-storage operator: `SymCsr` (SSS,
//! lower triangle + diagonal streamed once, every stored element used
//! twice) against `ParallelCsr` over the full matrix, on the two symmetric
//! acceptance shapes — a banded SPD matrix (the MB-class exemplar, where
//! the halved stream is the whole story) and a symmetric power-law matrix
//! (scattered windows: the worst case for the windowed scratch merge).
//!
//! The `ci_bench` gate repeats the banded comparison as a pinned
//! regression check; `tests/symmetric_equivalence.rs` pins correctness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_sym_spmv(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "sym-band-20k",
            Arc::new(CsrMatrix::from_coo(&g::symmetric_banded(20_000, 8))),
        ),
        (
            "sym-powerlaw-8k",
            Arc::new(CsrMatrix::from_coo(&g::symmetric_power_law(8192, 4, 7))),
        ),
    ];

    for (name, csr) in &cases {
        let mut group = c.benchmark_group(format!("sym_spmv/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(20);

        let x = vec![1.0f64; csr.ncols()];
        let mut y = vec![0.0f64; csr.nrows()];

        let full = ParallelCsr::baseline(csr.clone(), ctx.clone());
        group.bench_function("csr-baseline", |b| b.iter(|| full.spmv(&x, &mut y)));

        let simd_cfg = sparseopt_core::CsrKernelConfig {
            inner: InnerLoop::Simd,
            ..sparseopt_core::CsrKernelConfig::baseline()
        };
        let full_simd = ParallelCsr::new(csr.clone(), simd_cfg, ctx.clone());
        group.bench_function("csr-simd", |b| b.iter(|| full_simd.spmv(&x, &mut y)));

        let sss = Arc::new(SssCsr::try_from_csr(csr).expect("generators are symmetric"));
        let sym = SymCsr::baseline(sss.clone(), ctx.clone());
        group.bench_function("sym-sss", |b| b.iter(|| sym.spmv(&x, &mut y)));

        let sym_simd = SymCsr::new(sss.clone(), InnerLoop::Simd, false, ctx.clone());
        group.bench_function("sym-sss-simd", |b| b.iter(|| sym_simd.spmv(&x, &mut y)));

        // The multi-vector path shares the windowed merge: exercise it.
        let xm = MultiVec::from_fn(csr.ncols(), 8, |i, j| {
            0.5 + ((i * 7 + j) as f64 * 0.19).sin()
        });
        let mut ym = MultiVec::zeros(csr.nrows(), 8);
        group.bench_function("sym-spmm-k8", |b| b.iter(|| sym.spmm(&xm, &mut ym)));

        group.finish();
    }
}

criterion_group!(benches, bench_sym_spmv);
criterion_main!(benches);
