//! Criterion benchmarks of Table I feature extraction — the feature-guided
//! classifier's entire online cost (paper §IV-D: the extraction pass is what
//! makes it "extremely lightweight"). Compares against one SpMV execution
//! on the same matrix for scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::{generators as g, MatrixFeatures};
use std::sync::Arc;

const LLC: usize = 32 * 1024 * 1024;

fn bench_features(c: &mut Criterion) {
    let cases = vec![
        (
            "poisson3d-20",
            CsrMatrix::from_coo(&g::poisson3d(20, 20, 20)),
        ),
        (
            "powerlaw-16k",
            CsrMatrix::from_coo(&g::power_law(16384, 8, 1.0, 3)),
        ),
    ];

    for (name, csr) in cases {
        let csr = Arc::new(csr);
        let mut group = c.benchmark_group(format!("features/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(20);

        group.bench_function("extract-all", |b| {
            b.iter(|| MatrixFeatures::extract(&csr, LLC))
        });

        // One SpMV for cost comparison (feature pass should be of the same
        // order, not multiples).
        let kernel = SerialCsr::new(csr.clone());
        let x = vec![1.0; csr.ncols()];
        let mut y = vec![0.0; csr.nrows()];
        group.bench_function("one-spmv", |b| b.iter(|| kernel.spmv(&x, &mut y)));
        group.finish();
    }
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
