//! Criterion benchmarks of format construction/conversion costs — the
//! preprocessing the paper's lightweight-overhead argument hinges on
//! (delta compression and decomposition must cost only a few SpMV-times).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;

fn bench_formats(c: &mut Criterion) {
    let coo = g::poisson3d(20, 20, 20);
    let csr = CsrMatrix::from_coo(&coo);
    let skewed = CsrMatrix::from_coo(&g::few_dense_rows(8192, 2, 3, 7));

    let mut group = c.benchmark_group("formats");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.sample_size(20);

    group.bench_function("coo-to-csr", |b| b.iter(|| CsrMatrix::from_coo(&coo)));
    group.bench_function("delta-encode", |b| {
        b.iter(|| DeltaCsrMatrix::from_csr(&csr))
    });
    group.bench_function("delta-encode-u16", |b| {
        b.iter(|| DeltaCsrMatrix::from_csr_with_width(&csr, DeltaWidth::U16))
    });
    group.bench_function("decompose", |b| {
        let t = DecomposedCsrMatrix::auto_threshold(&skewed, 4.0);
        b.iter(|| DecomposedCsrMatrix::from_csr(&skewed, t))
    });
    group.bench_function("csr-to-coo", |b| b.iter(|| csr.to_coo()));
    group.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
