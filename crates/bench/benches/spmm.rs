//! SpMM micro-benchmarks: the multi-RHS kernels against the honest
//! alternative — `k` back-to-back SpMV calls on the same matrix. The gap
//! between the two is the reuse-factor amortization the analytic SpMM model
//! predicts: the matrix stream is paid once per SpMM call instead of `k`
//! times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_spmm(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "poisson3d-12",
            Arc::new(CsrMatrix::from_coo(&g::poisson3d(12, 12, 12))),
        ),
        (
            "random-4k-d8",
            Arc::new(CsrMatrix::from_coo(&g::random_uniform(4096, 8, 1))),
        ),
        (
            "fewdense-4k",
            Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(4096, 2, 3, 2))),
        ),
    ];

    for (name, csr) in &cases {
        for k in [1usize, 4, 8] {
            let mut group = c.benchmark_group(format!("spmm/{name}/k{k}"));
            group.throughput(Throughput::Elements((csr.nnz() * k) as u64));
            group.sample_size(10);

            let x = MultiVec::from_fn(csr.ncols(), k, |i, j| {
                0.5 + ((i * 7 + j * 3) as f64 * 0.13).sin()
            });
            let mut y = MultiVec::zeros(csr.nrows(), k);

            // Reference: k sequential SpMV sweeps over the same matrix.
            let spmv = ParallelCsr::baseline(csr.clone(), ctx.clone());
            let xcols: Vec<Vec<f64>> = (0..k).map(|j| x.column(j)).collect();
            let mut ycol = vec![0.0f64; csr.nrows()];
            group.bench_function("spmv-seq", |b| {
                b.iter(|| {
                    for col in &xcols {
                        spmv.spmv(col, &mut ycol);
                    }
                })
            });

            let mut kernels: Vec<Box<dyn SpmmKernel>> = vec![
                Box::new(ParallelCsr::baseline(csr.clone(), ctx.clone())),
                Box::new(DeltaKernel::baseline(
                    Arc::new(DeltaCsrMatrix::from_csr(csr)),
                    ctx.clone(),
                )),
                Box::new(BcsrKernel::new(
                    Arc::new(BcsrMatrix::from_csr(csr, 2, 2)),
                    ctx.clone(),
                )),
                Box::new(DecomposedKernel::baseline(
                    Arc::new(DecomposedCsrMatrix::from_csr(
                        csr,
                        DecomposedCsrMatrix::auto_threshold(csr, 4.0),
                    )),
                    ctx.clone(),
                )),
            ];
            // ELL's slab explodes on skewed matrices (that is its failure
            // mode); only bench it where the padding stays sane.
            let max_row = (0..csr.nrows()).map(|i| csr.row_nnz(i)).max().unwrap_or(0);
            if max_row * csr.nrows() <= 8 * csr.nnz() {
                kernels.push(Box::new(EllKernel::new(
                    Arc::new(EllMatrix::from_csr(csr)),
                    ctx.clone(),
                )));
            }
            for kernel in kernels {
                group.bench_function(BenchmarkId::new("spmm", kernel.name()), |b| {
                    b.iter(|| kernel.spmm(&x, &mut y))
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
