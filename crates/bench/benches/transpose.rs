//! Transposed-application micro-benchmarks: `y = Aᵀ·x` across every format
//! operator, against the forward application of the same operator. The gap
//! quantifies the scatter machinery's cost (thread-private scratch + merge)
//! relative to the gather-side forward kernel — the trade the analytic
//! `simulate_apply` transpose model predicts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparseopt_core::prelude::*;
use sparseopt_matrix::generators as g;
use std::sync::Arc;

fn bench_transpose(c: &mut Criterion) {
    let ctx = ExecCtx::host();
    let cases: Vec<(&str, Arc<CsrMatrix>)> = vec![
        (
            "poisson3d-12",
            Arc::new(CsrMatrix::from_coo(&g::poisson3d(12, 12, 12))),
        ),
        (
            "random-4k-d8",
            Arc::new(CsrMatrix::from_coo(&g::random_uniform(4096, 8, 1))),
        ),
        (
            "fewdense-4k",
            Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(4096, 2, 3, 2))),
        ),
    ];

    for (name, csr) in &cases {
        let mut group = c.benchmark_group(format!("transpose/{name}"));
        group.throughput(Throughput::Elements(csr.nnz() as u64));
        group.sample_size(10);

        let x: Vec<f64> = (0..csr.ncols())
            .map(|i| 0.5 + (i as f64 * 0.13).sin())
            .collect();
        let xt: Vec<f64> = (0..csr.nrows())
            .map(|i| 0.5 + (i as f64 * 0.17).cos())
            .collect();
        let mut y = vec![0.0f64; csr.nrows()];
        let mut yt = vec![0.0f64; csr.ncols()];

        let threshold = DecomposedCsrMatrix::auto_threshold(csr, 4.0);
        let ops: Vec<Box<dyn SparseLinOp>> = vec![
            Box::new(ParallelCsr::baseline(csr.clone(), ctx.clone())),
            Box::new(DeltaKernel::baseline(
                Arc::new(DeltaCsrMatrix::from_csr(csr)),
                ctx.clone(),
            )),
            Box::new(BcsrKernel::new(
                Arc::new(BcsrMatrix::from_csr(csr, 2, 2)),
                ctx.clone(),
            )),
            Box::new(EllKernel::new(
                Arc::new(EllMatrix::from_csr(csr)),
                ctx.clone(),
            )),
            Box::new(DecomposedKernel::baseline(
                Arc::new(DecomposedCsrMatrix::from_csr(csr, threshold)),
                ctx.clone(),
            )),
        ];

        for op in &ops {
            group.bench_function(format!("{}/forward", op.name()), |b| {
                b.iter(|| op.apply(Apply::NoTrans, &x, &mut y))
            });
            group.bench_function(format!("{}/transpose", op.name()), |b| {
                b.iter(|| op.apply(Apply::Trans, &xt, &mut yt))
            });
        }
        group.finish();
    }

    // Multi-vector transpose: the k-wide scatter amortizes the matrix
    // stream exactly like forward SpMM does.
    let csr = &cases[0].1;
    for k in [4usize, 8] {
        let mut group = c.benchmark_group(format!("transpose-multi/poisson3d-12/k{k}"));
        group.throughput(Throughput::Elements((csr.nnz() * k) as u64));
        group.sample_size(10);
        let op = ParallelCsr::baseline(csr.clone(), ctx.clone());
        let x = MultiVec::from_fn(csr.nrows(), k, |i, j| ((i * 7 + j) as f64 * 0.11).sin());
        let mut y = MultiVec::zeros(csr.ncols(), k);
        group.bench_function("csr-parallel", |b| {
            b.iter(|| op.apply_multi(Apply::Trans, &x, &mut y))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_transpose);
criterion_main!(benches);
