//! Per-class performance bounds — Section III-B of the paper.
//!
//! For every bottleneck class an upper bound on achievable performance is
//! derived; comparing each bound with the baseline tells which bottlenecks
//! are worth addressing. Two providers implement the measurement:
//!
//! * [`SimBoundsProfiler`] — evaluates the bounds on a modeled Table III
//!   platform (the hardware substitution; used by all figure harnesses);
//! * [`HostBoundsProfiler`] — runs the real micro-benchmark kernels on the
//!   host: the regularized-`colind` kernel for `P_ML`, the unit-stride
//!   kernel for `P_CMP`, per-thread medians for `P_IMB`, and measured STREAM
//!   bandwidth for `P_MB` / `P_peak`.

use sparseopt_core::kernels::regularize_colind;
use sparseopt_core::prelude::*;
use sparseopt_sim::{
    analytic_mb_bound, analytic_peak_bound, analytic_spmm_mb_bound, analytic_spmm_peak_bound,
    simulate, simulate_cmp_bound, simulate_imb_bound, simulate_ml_bound, simulate_spmm,
    simulate_spmm_cmp_bound, simulate_spmm_imb_bound, simulate_spmm_ml_bound, Platform,
    SimKernelConfig, SimMatrixProfile,
};
use std::sync::Arc;
use std::time::Instant;

/// The measured baseline performance and the five upper bounds, in Gflop/s.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerClassBounds {
    /// Baseline CSR performance `P_CSR`.
    pub p_csr: f64,
    /// Bandwidth roof `P_MB`.
    pub p_mb: f64,
    /// Latency-free bound `P_ML`.
    pub p_ml: f64,
    /// Balance bound `P_IMB = 2·NNZ / t_median`.
    pub p_imb: f64,
    /// Compute bound `P_CMP` (indirect references eliminated).
    pub p_cmp: f64,
    /// Format-independent peak `P_peak`.
    pub p_peak: f64,
}

impl PerClassBounds {
    /// All six values keyed for table printing, in Fig. 3 legend order.
    pub fn as_rows(&self) -> [(&'static str, f64); 6] {
        [
            ("CSR", self.p_csr),
            ("Peak", self.p_peak),
            ("ML", self.p_ml),
            ("IMB", self.p_imb),
            ("CMP", self.p_cmp),
            ("MB", self.p_mb),
        ]
    }
}

/// Provider of per-class bounds for a matrix.
pub trait BoundsProfiler {
    /// Measures (or models) the baseline and all per-class bounds.
    fn measure(&self, csr: &Arc<CsrMatrix>) -> PerClassBounds;

    /// Short provenance label ("sim:KNC", "host", ...).
    fn label(&self) -> String;
}

/// Bounds from the analytic execution model on a Table III platform.
pub struct SimBoundsProfiler {
    platform: Platform,
}

impl SimBoundsProfiler {
    /// Creates a profiler for `platform`.
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// The modeled platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Also expose the underlying matrix profile (reused by the optimizer's
    /// simulated execution).
    pub fn profile(&self, csr: &CsrMatrix) -> SimMatrixProfile {
        SimMatrixProfile::analyze(csr, &self.platform)
    }

    /// Profile for a stand-in of a matrix `scale`× larger (see
    /// [`SimMatrixProfile::analyze_scaled`]).
    pub fn profile_scaled(
        &self,
        csr: &CsrMatrix,
        scale: f64,
        locality_scale: f64,
    ) -> SimMatrixProfile {
        SimMatrixProfile::analyze_scaled(csr, &self.platform, scale, locality_scale)
    }

    /// Bounds for a scaled stand-in.
    pub fn measure_scaled(
        &self,
        csr: &CsrMatrix,
        scale: f64,
        locality_scale: f64,
    ) -> PerClassBounds {
        self.measure_profile(&self.profile_scaled(csr, scale, locality_scale))
    }

    /// Bounds from an existing profile (avoids re-analysis).
    pub fn measure_profile(&self, profile: &SimMatrixProfile) -> PerClassBounds {
        let p = &self.platform;
        PerClassBounds {
            p_csr: simulate(profile, p, &SimKernelConfig::baseline()).gflops,
            p_mb: analytic_mb_bound(profile, p),
            p_ml: simulate_ml_bound(profile, p),
            p_imb: simulate_imb_bound(profile, p),
            p_cmp: simulate_cmp_bound(profile, p),
            p_peak: analytic_peak_bound(profile, p),
        }
    }

    /// Bounds for the SpMM workload with `k` right-hand sides: the same
    /// Fig. 4 classification applies, but every bound accounts for the
    /// reuse factor — matrix traffic divides by `k`, so the `P_MB` roof
    /// rises faster than the baseline and MB-bound matrices drift out of
    /// the MB class as `k` grows (the denser operating point the SpMM
    /// layer exposes).
    pub fn measure_spmm(&self, csr: &Arc<CsrMatrix>, k: usize) -> PerClassBounds {
        self.measure_spmm_profile(&self.profile(csr), k)
    }

    /// SpMM bounds from an existing profile.
    pub fn measure_spmm_profile(&self, profile: &SimMatrixProfile, k: usize) -> PerClassBounds {
        let p = &self.platform;
        PerClassBounds {
            p_csr: simulate_spmm(profile, p, &SimKernelConfig::baseline(), k).gflops,
            p_mb: analytic_spmm_mb_bound(profile, p, k),
            p_ml: simulate_spmm_ml_bound(profile, p, k),
            p_imb: simulate_spmm_imb_bound(profile, p, k),
            p_cmp: simulate_spmm_cmp_bound(profile, p, k),
            p_peak: analytic_spmm_peak_bound(profile, p, k),
        }
    }
}

impl BoundsProfiler for SimBoundsProfiler {
    fn measure(&self, csr: &Arc<CsrMatrix>) -> PerClassBounds {
        let profile = SimMatrixProfile::analyze(csr, &self.platform);
        self.measure_profile(&profile)
    }

    fn label(&self) -> String {
        format!("sim:{}", self.platform.name)
    }
}

/// Bounds measured by actually running the micro-benchmark kernels on the
/// host machine.
pub struct HostBoundsProfiler {
    ctx: Arc<ExecCtx>,
    /// Measured STREAM triad bandwidth, GB/s.
    bw_gbs: f64,
    /// SpMV repetitions per timing sample (the paper uses 128 warm runs).
    reps: usize,
}

impl HostBoundsProfiler {
    /// Creates a host profiler; measures STREAM bandwidth once up front.
    pub fn new(ctx: Arc<ExecCtx>) -> Self {
        let bw_gbs = sparseopt_sim::stream_triad_gbs(4 * 1024 * 1024, 3);
        Self {
            ctx,
            bw_gbs,
            reps: 16,
        }
    }

    /// Overrides the measured bandwidth (tests, known machines).
    pub fn with_bandwidth(mut self, bw_gbs: f64) -> Self {
        self.bw_gbs = bw_gbs;
        self
    }

    /// Overrides the repetition count.
    pub fn with_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Times `reps` warm forward applications of `kernel`, returning
    /// Gflop/s of the mean run (the paper's "rate of the arithmetic means
    /// of the absolute counts").
    pub fn time_kernel(&self, kernel: &dyn SparseLinOp) -> f64 {
        let (nrows, ncols) = kernel.shape();
        let x = vec![1.0f64; ncols];
        let mut y = vec![0.0f64; nrows];
        kernel.spmv(&x, &mut y); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.reps {
            kernel.spmv(&x, &mut y);
        }
        let secs = t0.elapsed().as_secs_f64() / self.reps as f64;
        std::hint::black_box(&y);
        gflops(kernel.flops(1), secs)
    }

    /// Per-thread median time of one additional baseline run, seconds.
    fn median_thread_secs(&self, kernel: &ParallelCsr, x: &[f64], y: &mut [f64]) -> f64 {
        kernel.spmv(x, y);
        let secs: Vec<f64> = kernel
            .last_thread_times()
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        sparseopt_core::util::median(&secs).unwrap_or(0.0)
    }
}

impl BoundsProfiler for HostBoundsProfiler {
    fn measure(&self, csr: &Arc<CsrMatrix>) -> PerClassBounds {
        let nnz = csr.nnz() as f64;
        let flops = 2.0 * nnz;

        // P_CSR: the baseline kernel.
        let baseline = ParallelCsr::baseline(csr.clone(), self.ctx.clone());
        let p_csr = self.time_kernel(&baseline);

        // P_IMB from the baseline's per-thread times.
        let x = vec![1.0f64; csr.ncols()];
        let mut y = vec![0.0f64; csr.nrows()];
        let median = self.median_thread_secs(&baseline, &x, &mut y).max(1e-12);
        let p_imb = gflops(flops, median);

        // P_ML: regularized colind micro-benchmark.
        let reg = Arc::new(regularize_colind(csr));
        let p_ml = self.time_kernel(&ParallelCsr::baseline(reg, self.ctx.clone()));

        // P_CMP: unit-stride micro-benchmark.
        let p_cmp = self.time_kernel(&UnitStrideCsr::new(csr.clone(), self.ctx.clone()));

        // P_MB and P_peak from measured bandwidth and minimum traffic.
        let bw = self.bw_gbs * 1e9;
        let xy_bytes = ((csr.ncols() + csr.nrows()) * 8) as f64;
        let p_mb = gflops(flops, (csr.footprint_bytes() as f64 + xy_bytes) / bw);
        let p_peak = gflops(flops, (csr.values_bytes() as f64 + xy_bytes) / bw);

        PerClassBounds {
            p_csr,
            p_mb,
            p_ml,
            p_imb,
            p_cmp,
            p_peak,
        }
    }

    fn label(&self) -> String {
        format!(
            "host({} threads, {:.1} GB/s)",
            self.ctx.nthreads(),
            self.bw_gbs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_matrix::generators as g;

    #[test]
    fn sim_bounds_ordering_invariants() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::poisson3d(12, 12, 12)));
        for p in Platform::paper_platforms() {
            let b = SimBoundsProfiler::new(p.clone()).measure(&csr);
            assert!(b.p_csr > 0.0);
            assert!(
                b.p_peak >= b.p_mb,
                "{}: peak {} < mb {}",
                p.name,
                b.p_peak,
                b.p_mb
            );
            assert!(
                b.p_imb >= 0.99 * b.p_csr,
                "{}: median cannot trail max by much",
                p.name
            );
            assert!(
                b.p_ml >= 0.9 * b.p_csr,
                "{}: removing misses cannot hurt",
                p.name
            );
        }
    }

    #[test]
    fn sim_bounds_expose_imbalance_on_skewed_matrix() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::few_dense_rows(20_000, 2, 3, 5)));
        let b = SimBoundsProfiler::new(Platform::knc()).measure(&csr);
        assert!(
            b.p_imb > 1.24 * b.p_csr,
            "skewed matrix must show IMB headroom: {} vs {}",
            b.p_imb,
            b.p_csr
        );
    }

    #[test]
    fn sim_bounds_expose_latency_on_random_matrix() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::random_uniform(20_000, 8, 42)));
        let b = SimBoundsProfiler::new(Platform::knc()).measure(&csr);
        assert!(
            b.p_ml > 1.25 * b.p_csr,
            "irregular matrix must show ML headroom: {} vs {}",
            b.p_ml,
            b.p_csr
        );
    }

    #[test]
    fn spmm_bounds_collapse_to_spmv_at_k1() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::poisson3d(10, 10, 10)));
        for p in Platform::paper_platforms() {
            let prof = SimBoundsProfiler::new(p.clone());
            assert_eq!(prof.measure(&csr), prof.measure_spmm(&csr, 1), "{}", p.name);
        }
    }

    #[test]
    fn reuse_factor_shifts_mb_matrix_out_of_mb() {
        use crate::profile_guided::ProfileGuidedClassifier;
        use crate::Bottleneck;

        // A large regular band is the canonical MB matrix at k = 1.
        let csr = Arc::new(CsrMatrix::from_coo(&g::banded(400_000, 12)));
        let prof = SimBoundsProfiler::new(Platform::knc());
        let clf = ProfileGuidedClassifier::new();
        // One O(NNZ) analysis shared by every k.
        let profile = prof.profile(&csr);

        let at_1 = clf.classify(&prof.measure_spmm_profile(&profile, 1));
        assert!(
            at_1.contains(Bottleneck::Mb),
            "band must start MB-bound: {at_1}"
        );

        // With enough right-hand sides the matrix stream amortizes away and
        // bandwidth stops binding.
        let mut left_mb = false;
        for k in [4usize, 8, 16, 32, 64] {
            let classes = clf.classify(&prof.measure_spmm_profile(&profile, k));
            if !classes.contains(Bottleneck::Mb) {
                left_mb = true;
                break;
            }
        }
        assert!(left_mb, "growing k must eventually leave the MB class");
    }

    #[test]
    fn host_bounds_run_and_are_positive() {
        let csr = Arc::new(CsrMatrix::from_coo(&g::poisson2d(40, 40)));
        let prof = HostBoundsProfiler::new(ExecCtx::new(2))
            .with_reps(2)
            .with_bandwidth(10.0);
        let b = prof.measure(&csr);
        for (name, v) in b.as_rows() {
            assert!(v > 0.0, "{name} must be positive, got {v}");
        }
        assert!(b.p_peak >= b.p_mb);
        assert!(prof.label().contains("host"));
    }
}
