//! Tri-solve plan selection: the classifier-side entry point for the
//! dependency-bound SpTRSV kernel shape.
//!
//! SpMV bottleneck classes (MB/ML/IMB/CMP) assume all rows are schedulable
//! at once, so they say nothing about a triangular solve. The decision the
//! optimizer needs there is *one-dimensional*: is the dependency DAG wide
//! enough that level-scheduled execution beats serial substitution on this
//! platform and thread count? [`propose_trsv_plan`] answers it by profiling
//! the triangle's level structure and running both plans through the
//! analytic dependency-bound model in `sparseopt_sim::trsv`, mirroring how
//! the SpMV side pairs [`crate::bounds`] with format selection.

use sparseopt_core::csr::CsrMatrix;
use sparseopt_core::kernels::{TrsvAlgo, TrsvDirection};
use sparseopt_sim::trsv::{select_trsv_algo, simulate_trsv, TrsvProfile};
use sparseopt_sim::Platform;

/// The selected tri-solve execution plan plus the evidence it rests on.
#[derive(Clone, Debug)]
pub struct TrsvPlan {
    /// Chosen algorithm (never [`TrsvAlgo::Auto`]).
    pub algo: TrsvAlgo,
    /// The DAG profile the decision was made from.
    pub profile: TrsvProfile,
    /// Modeled seconds for serial substitution.
    pub serial_secs: f64,
    /// Modeled seconds for level-scheduled execution at `nthreads`.
    pub level_secs: f64,
}

impl TrsvPlan {
    /// Modeled speedup of the chosen plan over serial substitution
    /// (`≥ 1.0` by construction).
    pub fn modeled_speedup(&self) -> f64 {
        match self.algo {
            TrsvAlgo::LevelScheduled => self.serial_secs / self.level_secs,
            _ => 1.0,
        }
    }
}

/// Profiles a triangular matrix and selects serial vs level-scheduled
/// execution for the given platform and thread count.
pub fn propose_trsv_plan(
    triangle: &CsrMatrix,
    direction: TrsvDirection,
    platform: &Platform,
    nthreads: usize,
) -> TrsvPlan {
    let profile = TrsvProfile::analyze(triangle, direction);
    let algo = select_trsv_algo(&profile, platform, nthreads);
    let serial_secs = simulate_trsv(&profile, platform, TrsvAlgo::Serial, 1).secs;
    let level_secs = if nthreads > 1 && profile.nlevels() > 0 {
        simulate_trsv(&profile, platform, TrsvAlgo::LevelScheduled, nthreads).secs
    } else {
        serial_secs
    };
    TrsvPlan {
        algo,
        profile,
        serial_secs,
        level_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::coo::CooMatrix;

    #[test]
    fn plan_picks_the_modeled_winner() {
        // Chain DAG: a bidiagonal lower triangle.
        let n = 4096;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
        }
        let chain = CsrMatrix::from_coo(&coo);
        let plan = propose_trsv_plan(&chain, TrsvDirection::Lower, &Platform::broadwell(), 8);
        assert_eq!(plan.algo, TrsvAlgo::Serial);
        assert_eq!(plan.profile.nlevels(), n);
        assert!((plan.modeled_speedup() - 1.0).abs() < 1e-12);

        // Block DAG: wide levels.
        let block = 512;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i >= block {
                let base = (i / block - 1) * block;
                for d in 0..4 {
                    coo.push(i, base + (i * 17 + d * 5) % block, -0.1);
                }
            }
        }
        let wide = CsrMatrix::from_coo(&coo);
        let plan = propose_trsv_plan(&wide, TrsvDirection::Lower, &Platform::broadwell(), 8);
        assert_eq!(plan.algo, TrsvAlgo::LevelScheduled);
        assert!(plan.modeled_speedup() > 1.0);
        assert!(plan.level_secs < plan.serial_secs);
    }
}
