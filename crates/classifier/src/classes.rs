//! The four SpMV bottleneck classes of the paper (Section III-A) and compact
//! class sets.

use std::fmt;

/// A performance bottleneck class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bottleneck {
    /// Memory **B**andwidth bound: bandwidth utilization near the peak;
    /// usually a regular sparsity structure.
    Mb,
    /// **M**emory **L**atency bound: poor locality in `x` accesses that
    /// hardware prefetchers cannot detect.
    Ml,
    /// Thread **IMB**alance: highly uneven row lengths or regions with
    /// different sparsity patterns.
    Imb,
    /// **C**o**MP**utational bottleneck: cache-resident working sets near the
    /// roofline ridge, or nonzeros concentrated in a few dense rows.
    Cmp,
}

impl Bottleneck {
    /// All classes in display order.
    pub const ALL: [Bottleneck; 4] = [
        Bottleneck::Mb,
        Bottleneck::Ml,
        Bottleneck::Imb,
        Bottleneck::Cmp,
    ];

    /// The paper's label for the class.
    pub fn label(self) -> &'static str {
        match self {
            Bottleneck::Mb => "MB",
            Bottleneck::Ml => "ML",
            Bottleneck::Imb => "IMB",
            Bottleneck::Cmp => "CMP",
        }
    }

    /// Index in [0, 4) for dense tables.
    pub fn index(self) -> usize {
        match self {
            Bottleneck::Mb => 0,
            Bottleneck::Ml => 1,
            Bottleneck::Imb => 2,
            Bottleneck::Cmp => 3,
        }
    }
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of bottleneck classes (the multilabel classification target).
/// The empty set is the paper's "not worth optimizing" dummy class.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ClassSet(u8);

impl ClassSet {
    /// The empty set.
    pub const EMPTY: ClassSet = ClassSet(0);

    /// Builds a set from classes.
    pub fn from_classes(classes: &[Bottleneck]) -> Self {
        let mut s = ClassSet::EMPTY;
        for &c in classes {
            s.insert(c);
        }
        s
    }

    /// Inserts a class.
    pub fn insert(&mut self, c: Bottleneck) {
        self.0 |= 1 << c.index();
    }

    /// Removes a class.
    pub fn remove(&mut self, c: Bottleneck) {
        self.0 &= !(1 << c.index());
    }

    /// Membership test.
    pub fn contains(self, c: Bottleneck) -> bool {
        self.0 & (1 << c.index()) != 0
    }

    /// True when no class is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of classes present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates members in display order.
    pub fn iter(self) -> impl Iterator<Item = Bottleneck> {
        Bottleneck::ALL
            .into_iter()
            .filter(move |&c| self.contains(c))
    }

    /// Set intersection.
    pub fn intersection(self, other: ClassSet) -> ClassSet {
        ClassSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: ClassSet) -> ClassSet {
        ClassSet(self.0 | other.0)
    }

    /// Encodes as a 4-slot boolean vector `[MB, ML, IMB, CMP]` for the ML
    /// dataset (the dummy "none" label is appended by the feature classifier).
    pub fn to_labels(self) -> Vec<bool> {
        Bottleneck::ALL.iter().map(|&c| self.contains(c)).collect()
    }

    /// Decodes from the 4-slot boolean vector.
    pub fn from_labels(labels: &[bool]) -> Self {
        let mut s = ClassSet::EMPTY;
        for (k, &b) in labels.iter().take(4).enumerate() {
            if b {
                s.insert(Bottleneck::ALL[k]);
            }
        }
        s
    }
}

impl fmt::Display for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("{}");
        }
        let parts: Vec<&str> = self.iter().map(|c| c.label()).collect();
        write!(f, "{{{}}}", parts.join(","))
    }
}

impl fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassSet({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ClassSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Bottleneck::Ml);
        s.insert(Bottleneck::Imb);
        assert!(s.contains(Bottleneck::Ml));
        assert!(!s.contains(Bottleneck::Mb));
        assert_eq!(s.len(), 2);
        s.remove(Bottleneck::Ml);
        assert!(!s.contains(Bottleneck::Ml));
    }

    #[test]
    fn display_formats_like_paper() {
        let s = ClassSet::from_classes(&[Bottleneck::Imb, Bottleneck::Ml]);
        assert_eq!(s.to_string(), "{ML,IMB}");
        assert_eq!(ClassSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn label_round_trip() {
        for combo in 0..16u8 {
            let mut s = ClassSet::EMPTY;
            for (k, c) in Bottleneck::ALL.iter().enumerate() {
                if combo & (1 << k) != 0 {
                    s.insert(*c);
                }
            }
            assert_eq!(ClassSet::from_labels(&s.to_labels()), s);
        }
    }

    #[test]
    fn set_algebra() {
        let a = ClassSet::from_classes(&[Bottleneck::Mb, Bottleneck::Ml]);
        let b = ClassSet::from_classes(&[Bottleneck::Ml, Bottleneck::Cmp]);
        assert_eq!(a.intersection(b).to_string(), "{ML}");
        assert_eq!(a.union(b).len(), 3);
    }
}
