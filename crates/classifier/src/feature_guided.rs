//! The feature-guided classifier — Section III-D of the paper.
//!
//! A multilabel CART decision tree over cheap structural features (Table I),
//! trained offline on matrices labeled by the profile-guided classifier,
//! queried online after an `O(N)` or `O(NNZ)` feature-extraction pass.
//! A fifth, dummy label ("NONE") marks matrices not worth optimizing, per
//! Section III-D ("we also add a dummy class").

use crate::classes::{Bottleneck, ClassSet};
use sparseopt_matrix::{FeatureSet, MatrixFeatures};
use sparseopt_ml::{loo_cv, Accuracy, Dataset, DecisionTree, TreeParams};

/// One labeled training sample.
#[derive(Clone, Debug)]
pub struct LabeledMatrix {
    /// Display name (provenance only).
    pub name: String,
    /// Extracted Table I features.
    pub features: MatrixFeatures,
    /// Classes assigned by the profile-guided classifier.
    pub classes: ClassSet,
}

/// The trained feature-guided classifier.
pub struct FeatureGuidedClassifier {
    tree: DecisionTree,
    set: FeatureSet,
}

/// Label schema: the four bottleneck classes plus the dummy NONE class.
fn label_names() -> Vec<String> {
    let mut names: Vec<String> = Bottleneck::ALL
        .iter()
        .map(|c| c.label().to_string())
        .collect();
    names.push("NONE".to_string());
    names
}

/// Encodes a class set into the 5-label target (dummy class set when empty).
fn encode_labels(classes: ClassSet) -> Vec<bool> {
    let mut l = classes.to_labels();
    l.push(classes.is_empty());
    l
}

/// Decodes a 5-label prediction; real classes win over the dummy.
fn decode_labels(labels: &[bool]) -> ClassSet {
    ClassSet::from_labels(&labels[..4])
}

/// Builds the ML dataset for a feature set.
pub fn build_dataset(samples: &[LabeledMatrix], set: FeatureSet) -> Dataset {
    let fnames: Vec<String> = set.names().iter().map(|s| s.to_string()).collect();
    let mut d = Dataset::new(fnames, label_names());
    for s in samples {
        d.push(s.features.vector(set), encode_labels(s.classes));
    }
    d
}

impl FeatureGuidedClassifier {
    /// Trains on profile-guided-labeled samples with the given feature set
    /// and tree hyperparameters.
    ///
    /// # Panics
    /// Panics on an empty training set.
    pub fn train(samples: &[LabeledMatrix], set: FeatureSet, params: TreeParams) -> Self {
        let data = build_dataset(samples, set);
        Self {
            tree: DecisionTree::fit(&data, params),
            set,
        }
    }

    /// Classifies a matrix from its extracted features. This is the entire
    /// online cost of the classifier beyond feature extraction: one
    /// `O(log N_samples)` tree walk.
    pub fn classify(&self, features: &MatrixFeatures) -> ClassSet {
        decode_labels(&self.tree.predict(&features.vector(self.set)))
    }

    /// The feature set this classifier consumes.
    pub fn feature_set(&self) -> FeatureSet {
        self.set
    }

    /// The underlying tree (introspection, rule dumps).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Human-readable decision rules.
    pub fn dump_rules(&self) -> String {
        let fnames: Vec<String> = self.set.names().iter().map(|s| s.to_string()).collect();
        self.tree.dump(&fnames, &label_names())
    }

    /// Leave-One-Out cross-validation accuracy on a labeled sample set — the
    /// protocol behind Table IV.
    pub fn loo_accuracy(
        samples: &[LabeledMatrix],
        set: FeatureSet,
        params: TreeParams,
    ) -> Accuracy {
        loo_cv(&build_dataset(samples, set), params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::csr::CsrMatrix;
    use sparseopt_matrix::generators as g;

    const LLC: usize = 32 * 1024 * 1024;

    /// Synthetic labeled corpus whose labels follow simple structural rules,
    /// so a correct tree must recover them.
    fn corpus() -> Vec<LabeledMatrix> {
        let mut out = Vec::new();
        for k in 0..8 {
            // Banded: MB.
            let m = CsrMatrix::from_coo(&g::banded(2000 + k * 500, 1 + k % 4));
            out.push(LabeledMatrix {
                name: format!("band{k}"),
                features: MatrixFeatures::extract(&m, LLC),
                classes: ClassSet::from_classes(&[Bottleneck::Mb]),
            });
            // Random: ML.
            let m = CsrMatrix::from_coo(&g::random_uniform(2000 + k * 500, 6, k as u64));
            out.push(LabeledMatrix {
                name: format!("rand{k}"),
                features: MatrixFeatures::extract(&m, LLC),
                classes: ClassSet::from_classes(&[Bottleneck::Ml]),
            });
            // Few dense rows: IMB + CMP.
            let m = CsrMatrix::from_coo(&g::few_dense_rows(2000 + k * 500, 2, 2 + k % 3, k as u64));
            out.push(LabeledMatrix {
                name: format!("skew{k}"),
                features: MatrixFeatures::extract(&m, LLC),
                classes: ClassSet::from_classes(&[Bottleneck::Imb, Bottleneck::Cmp]),
            });
            // Diagonal: nothing worth optimizing (dummy class).
            let m = CsrMatrix::from_coo(&g::diagonal(2000 + k * 500));
            out.push(LabeledMatrix {
                name: format!("diag{k}"),
                features: MatrixFeatures::extract(&m, LLC),
                classes: ClassSet::EMPTY,
            });
        }
        out
    }

    #[test]
    fn learns_structural_rules() {
        let samples = corpus();
        for set in [FeatureSet::LinearInRows, FeatureSet::LinearInNnz] {
            let clf = FeatureGuidedClassifier::train(&samples, set, TreeParams::default());
            let mut correct = 0;
            for s in &samples {
                if clf.classify(&s.features) == s.classes {
                    correct += 1;
                }
            }
            assert!(
                correct as f64 >= 0.9 * samples.len() as f64,
                "{set:?}: only {correct}/{} training samples reproduced",
                samples.len()
            );
        }
    }

    #[test]
    fn loo_accuracy_reasonable_on_separable_corpus() {
        let samples = corpus();
        let acc = FeatureGuidedClassifier::loo_accuracy(
            &samples,
            FeatureSet::LinearInNnz,
            TreeParams::default(),
        );
        assert!(acc.exact >= 0.6, "exact {}", acc.exact);
        assert!(acc.partial >= acc.exact);
    }

    #[test]
    fn dummy_class_encodes_empty_set() {
        assert_eq!(
            encode_labels(ClassSet::EMPTY),
            vec![false, false, false, false, true]
        );
        let full = ClassSet::from_classes(&Bottleneck::ALL);
        assert_eq!(encode_labels(full), vec![true, true, true, true, false]);
        assert_eq!(
            decode_labels(&[false, true, false, false, false]).to_string(),
            "{ML}"
        );
    }

    #[test]
    fn rules_dump_uses_table1_names() {
        let samples = corpus();
        let clf = FeatureGuidedClassifier::train(
            &samples,
            FeatureSet::LinearInRows,
            TreeParams::default(),
        );
        let rules = clf.dump_rules();
        assert!(rules.contains("if "), "rules: {rules}");
    }
}
