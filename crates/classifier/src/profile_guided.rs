//! The profile-guided classifier — Fig. 4 of the paper.
//!
//! ```text
//! procedure CLASSIFY(P_CSR, P_MB, P_ML, P_IMB, P_CMP, P_peak)
//!   class ← Ø
//!   if P_IMB / P_CSR > T_IMB        then class ← class ∪ {IMB}
//!   if P_ML  / P_CSR > T_ML         then class ← class ∪ {ML}
//!   if P_CSR ≈ P_MB and P_MB < P_CMP < P_peak then class ← class ∪ {MB}
//!   if P_MB > P_CMP or P_CMP > P_peak          then class ← class ∪ {CMP}
//!   return class
//! ```
//!
//! `T_ML = 1.25` and `T_IMB = 1.24` are the paper's grid-searched values.
//! The `≈` tolerance is an additional hyperparameter (`t_mb`) the paper
//! leaves implicit; it is tunable through the same grid-search hook.

use crate::bounds::PerClassBounds;
use crate::classes::{Bottleneck, ClassSet};

/// Hyperparameters of the Fig. 4 rules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileThresholds {
    /// `T_ML`: required headroom of `P_ML` over `P_CSR`.
    pub t_ml: f64,
    /// `T_IMB`: required headroom of `P_IMB` over `P_CSR`.
    pub t_imb: f64,
    /// Tolerance for `P_CSR ≈ P_MB`: satisfied when `P_CSR ≥ t_mb · P_MB`.
    pub t_mb: f64,
}

impl Default for ProfileThresholds {
    /// The paper's tuned values (Fig. 4 caption).
    fn default() -> Self {
        Self {
            t_ml: 1.25,
            t_imb: 1.24,
            t_mb: 0.7,
        }
    }
}

/// The profile-guided classifier.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfileGuidedClassifier {
    thresholds: ProfileThresholds,
}

impl ProfileGuidedClassifier {
    /// Classifier with the paper's tuned thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifier with explicit thresholds (grid-search tuning).
    pub fn with_thresholds(thresholds: ProfileThresholds) -> Self {
        Self { thresholds }
    }

    /// Current thresholds.
    pub fn thresholds(&self) -> ProfileThresholds {
        self.thresholds
    }

    /// Fig. 4's CLASSIFY procedure.
    pub fn classify(&self, b: &PerClassBounds) -> ClassSet {
        let t = self.thresholds;
        let mut class = ClassSet::EMPTY;
        let p_csr = b.p_csr.max(1e-12);

        if b.p_imb / p_csr > t.t_imb {
            class.insert(Bottleneck::Imb);
        }
        if b.p_ml / p_csr > t.t_ml {
            class.insert(Bottleneck::Ml);
        }
        // MB: the baseline already sits *at* the bandwidth roof (two-sided ≈:
        // a baseline sitting clearly above the roof means bandwidth is not
        // the binding constraint, e.g. cache-resident working sets) and the
        // roof is real (compute headroom exists up to the peak).
        if b.p_csr >= t.t_mb * b.p_mb
            && b.p_csr <= 1.05 * b.p_mb
            && b.p_mb < b.p_cmp
            && b.p_cmp < b.p_peak
        {
            class.insert(Bottleneck::Mb);
        }
        // CMP: the compute bound sits below the bandwidth roof (the kernel is
        // not memory bound at all), or above the theoretical peak
        // (cache-resident working set, Section III-C's last case).
        if b.p_mb > b.p_cmp || b.p_cmp > b.p_peak {
            class.insert(Bottleneck::Cmp);
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(
        p_csr: f64,
        p_mb: f64,
        p_ml: f64,
        p_imb: f64,
        p_cmp: f64,
        p_peak: f64,
    ) -> PerClassBounds {
        PerClassBounds {
            p_csr,
            p_mb,
            p_ml,
            p_imb,
            p_cmp,
            p_peak,
        }
    }

    #[test]
    fn balanced_regular_matrix_is_mb() {
        // At the roof, no ML/IMB headroom, compute headroom to the peak.
        let b = bounds(10.0, 11.0, 10.5, 10.2, 15.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert_eq!(c.to_string(), "{MB}");
    }

    #[test]
    fn irregular_matrix_is_ml() {
        let b = bounds(4.0, 11.0, 8.0, 4.3, 15.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert!(c.contains(Bottleneck::Ml));
        assert!(!c.contains(Bottleneck::Imb));
        assert!(!c.contains(Bottleneck::Mb), "far from the roof");
    }

    #[test]
    fn skewed_matrix_is_imb() {
        let b = bounds(4.0, 11.0, 4.5, 9.0, 15.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert_eq!(c.to_string(), "{IMB}");
    }

    #[test]
    fn dense_row_matrix_is_cmp_when_compute_roof_below_mb() {
        // P_CMP < P_MB: eliminating indirection still cannot reach the
        // bandwidth roof ⇒ compute limited (paper's Eq. 1 argument).
        let b = bounds(3.0, 11.0, 3.2, 3.1, 7.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert!(c.contains(Bottleneck::Cmp));
    }

    #[test]
    fn cache_resident_matrix_is_cmp_when_above_peak() {
        // P_CMP > P_peak: the cache-resident case.
        let b = bounds(12.0, 11.0, 12.5, 12.2, 25.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert!(c.contains(Bottleneck::Cmp));
    }

    #[test]
    fn combined_ml_imb() {
        let b = bounds(2.0, 11.0, 3.0, 3.5, 15.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert_eq!(c.to_string(), "{ML,IMB}");
    }

    #[test]
    fn unclassified_matrix_possible() {
        // "it is possible for a matrix not to be classified" — moderate
        // everything: below roof, no headroom anywhere, compute roof between
        // MB and peak.
        let b = bounds(7.0, 11.0, 7.5, 7.3, 14.0, 20.0);
        let c = ProfileGuidedClassifier::new().classify(&b);
        assert!(c.is_empty(), "got {c}");
    }

    #[test]
    fn thresholds_move_decisions() {
        let b = bounds(4.0, 11.0, 5.2, 4.3, 15.0, 20.0);
        // 5.2/4.0 = 1.3: ML at default threshold 1.25, not at 1.4.
        assert!(ProfileGuidedClassifier::new()
            .classify(&b)
            .contains(Bottleneck::Ml));
        let strict = ProfileGuidedClassifier::with_thresholds(ProfileThresholds {
            t_ml: 1.4,
            ..Default::default()
        });
        assert!(!strict.classify(&b).contains(Bottleneck::Ml));
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = ProfileThresholds::default();
        assert_eq!(t.t_ml, 1.25);
        assert_eq!(t.t_imb, 1.24);
    }
}
