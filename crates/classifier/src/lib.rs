//! # sparseopt-classifier
//!
//! The paper's core contribution: SpMV bottleneck detection formulated as a
//! multiclass, multilabel classification problem (Section III).
//!
//! - [`classes`] — the MB / ML / IMB / CMP bottleneck classes.
//! - [`bounds`] — per-class performance upper bounds (Section III-B), from
//!   either host micro-benchmarks or the modeled Table III platforms.
//! - [`profile_guided`] — the rule-based classifier of Fig. 4.
//! - [`feature_guided`] — the offline-trained decision-tree classifier of
//!   Section III-D.

pub mod bounds;
pub mod classes;
pub mod feature_guided;
pub mod profile_guided;
pub mod trsv;

pub use bounds::{BoundsProfiler, HostBoundsProfiler, PerClassBounds, SimBoundsProfiler};
pub use classes::{Bottleneck, ClassSet};
pub use feature_guided::{build_dataset, FeatureGuidedClassifier, LabeledMatrix};
pub use profile_guided::{ProfileGuidedClassifier, ProfileThresholds};
pub use trsv::{propose_trsv_plan, TrsvPlan};
