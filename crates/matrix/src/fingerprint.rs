//! Quantized structural fingerprints — the plan-cache key.
//!
//! The tuning service (see `sparseopt-optimizer`'s `tuner` module) caches
//! measured plan winners across processes, keyed by matrix *structure*
//! rather than identity: two matrices whose quantized feature signatures
//! coincide bottleneck the same way and want the same plan, so a winner
//! tuned on one is reused for the other. This is the production answer to
//! "millions of matrices, each seen repeatedly" — the fleet of matrices
//! collapses onto a small set of structural buckets.
//!
//! The fingerprint quantizes the cheap end of the Table I feature record:
//!
//! * `nrows` / `nnz` — log₂ size buckets (working-set scale);
//! * row-length moments — mean and coefficient of variation, on a
//!   quarter-log₂ grid (regular vs skewed vs heavy-tailed rows);
//! * `symmetry_share` — sixteenths (gates the SSS triangle split);
//! * `padding_overhead` — quarter-log₂ grid (cost side of the SELL-C-σ
//!   conversion).
//!
//! Quantization makes the key *stable*: features are computed from the
//! canonical CSR form (column-sorted rows), so any permutation of the
//! nonzero input order maps to the identical fingerprint, and the coarse
//! grids absorb last-bit float jitter. It also makes the key *collision
//! seeking* by design — nearby structures sharing a bucket is the feature
//! that lets a second matrix skip straight to the tuned plan.
//!
//! ```
//! use sparseopt_core::prelude::*;
//! use sparseopt_matrix::MatrixFingerprint;
//!
//! // The same structure assembled in a different nonzero order — a
//! // permuted COO stream — quantizes to the identical key.
//! let mut fwd = CooMatrix::new(4, 4);
//! let mut rev = CooMatrix::new(4, 4);
//! for i in 0..4 {
//!     fwd.push(i, i, 2.0);
//!     rev.push(3 - i, 3 - i, 2.0);
//! }
//! let llc = 1 << 20;
//! let a = MatrixFingerprint::extract(&CsrMatrix::from_coo(&fwd), llc);
//! let b = MatrixFingerprint::extract(&CsrMatrix::from_coo(&rev), llc);
//! assert_eq!(a.key(), b.key());
//! assert!(a.key().starts_with("v1:"));
//! ```

use crate::features::MatrixFeatures;
use sparseopt_core::csr::CsrMatrix;
use std::fmt;

/// Fingerprint schema version, embedded in every key: bumping the
/// quantization grid invalidates old cache entries by construction (the
/// keys simply stop matching) instead of silently mis-binning them.
pub const FINGERPRINT_VERSION: u32 = 1;

/// A quantized structural signature of one matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatrixFingerprint {
    /// log₂ bucket of the row count (bit length of `nrows`).
    pub nrows_bucket: u32,
    /// log₂ bucket of the nonzero count.
    pub nnz_bucket: u32,
    /// Mean row length on a quarter-log₂ grid: `round(4·log₂(1 + nnz_avg))`.
    pub row_avg_q: u32,
    /// Row-length coefficient of variation (`nnz_sd / nnz_avg`) on the same
    /// quarter-log₂ grid — separates regular, skewed, and heavy-tailed rows.
    pub row_cv_q: u32,
    /// `symmetry_share` in sixteenths (`16` ⇔ exactly symmetric).
    pub symmetry_q: u32,
    /// SELL-C-σ `padding_overhead` on the quarter-log₂ grid.
    pub padding_q: u32,
}

/// Bit length of `x` (`0 → 0`), the log₂ size bucket.
fn log2_bucket(x: usize) -> u32 {
    usize::BITS - x.leading_zeros()
}

/// `round(4·log₂(1 + v))` — a quarter-log₂ grid: fine enough to separate
/// structural regimes, coarse enough to absorb float jitter.
fn qlog(v: f64) -> u32 {
    (4.0 * (1.0 + v.max(0.0)).log2()).round() as u32
}

impl MatrixFingerprint {
    /// Quantizes an already-extracted feature record.
    pub fn from_features(f: &MatrixFeatures) -> Self {
        let cv = if f.nnz_avg > 0.0 {
            f.nnz_sd / f.nnz_avg
        } else {
            0.0
        };
        Self {
            nrows_bucket: log2_bucket(f.nrows),
            nnz_bucket: log2_bucket(f.nnz),
            row_avg_q: qlog(f.nnz_avg),
            row_cv_q: qlog(cv),
            symmetry_q: (f.symmetry_share.clamp(0.0, 1.0) * 16.0).round() as u32,
            padding_q: qlog(f.padding_overhead),
        }
    }

    /// Extracts features and quantizes in one step. `llc_bytes` only feeds
    /// the feature extraction (the fingerprint itself uses no
    /// platform-dependent feature, so the same matrix fingerprints
    /// identically on every host).
    pub fn extract(csr: &CsrMatrix, llc_bytes: usize) -> Self {
        Self::from_features(&MatrixFeatures::extract(csr, llc_bytes))
    }

    /// The stable string key the plan cache files use, e.g.
    /// `v1:r15:z18:a13:d0:s16:p0`.
    pub fn key(&self) -> String {
        format!(
            "v{FINGERPRINT_VERSION}:r{}:z{}:a{}:d{}:s{}:p{}",
            self.nrows_bucket,
            self.nnz_bucket,
            self.row_avg_q,
            self.row_cv_q,
            self.symmetry_q,
            self.padding_q
        )
    }
}

impl fmt::Display for MatrixFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators as g;

    const LLC: usize = 32 * 1024 * 1024;

    #[test]
    fn key_embeds_the_schema_version() {
        let m = CsrMatrix::from_coo(&g::banded(1000, 2));
        let fp = MatrixFingerprint::extract(&m, LLC);
        assert!(fp.key().starts_with(&format!("v{FINGERPRINT_VERSION}:")));
    }

    #[test]
    fn same_structure_same_key_different_structure_different_key() {
        let a = MatrixFingerprint::extract(&CsrMatrix::from_coo(&g::banded(8000, 3)), LLC);
        let b = MatrixFingerprint::extract(&CsrMatrix::from_coo(&g::banded(8000, 3)), LLC);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());

        let hub =
            MatrixFingerprint::extract(&CsrMatrix::from_coo(&g::power_law_hub(8000, 2, 7)), LLC);
        assert_ne!(a.key(), hub.key(), "band vs hub must separate");
    }

    #[test]
    fn symmetry_separates_otherwise_identical_bands() {
        let asym = MatrixFingerprint::extract(&CsrMatrix::from_coo(&g::banded(4000, 3)), LLC);
        let sym =
            MatrixFingerprint::extract(&CsrMatrix::from_coo(&g::symmetric_banded(4000, 3)), LLC);
        assert_eq!(sym.symmetry_q, 16);
        assert_ne!(asym.key(), sym.key());
    }

    #[test]
    fn llc_size_does_not_enter_the_fingerprint() {
        let m = CsrMatrix::from_coo(&g::random_uniform(4000, 8, 3));
        let small = MatrixFingerprint::extract(&m, 1024);
        let big = MatrixFingerprint::extract(&m, 1 << 30);
        assert_eq!(small, big, "fingerprints must be host-portable");
    }

    #[test]
    fn empty_matrix_fingerprints_without_panicking() {
        let m = CsrMatrix::from_coo(&sparseopt_core::coo::CooMatrix::new(4, 4));
        let fp = MatrixFingerprint::extract(&m, LLC);
        assert_eq!(fp.nnz_bucket, 0);
        assert_eq!(fp.row_avg_q, 0);
    }
}
