//! # sparseopt-matrix
//!
//! Synthetic sparse matrix generators, the paper's evaluation/training
//! suites, Matrix Market I/O, and Table I structural feature extraction.
//!
//! The generators replace the University of Florida Sparse Matrix Collection
//! (which cannot ship with the repository) with structurally equivalent
//! synthetic matrices; see `DESIGN.md` for the substitution argument and
//! [`suite`] for the per-matrix mapping.

#![warn(missing_docs)]

pub mod features;
pub mod fingerprint;
pub mod generators;
pub mod io;
pub mod reorder;
pub mod shard;
pub mod suite;

pub use features::{FeatureSet, MatrixFeatures, ELEMS_PER_CACHE_LINE};
pub use fingerprint::{MatrixFingerprint, FINGERPRINT_VERSION};
pub use reorder::{bandwidth, reverse_cuthill_mckee, Permutation};
pub use shard::{write_shard_file, ShardError, ShardMeta, ShardStore, SHARD_FORMAT_VERSION};
pub use suite::{
    by_name, paper_suite, spd_suite, streaming_suite, suite_names, training_suite, Category,
    SuiteMatrix,
};
