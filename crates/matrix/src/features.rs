//! Structural feature extraction — Table I of the paper.
//!
//! Features feed the feature-guided classifier. Extraction cost matters (it
//! is the classifier's online overhead), so features are grouped by
//! complexity tier exactly as in Table IV: an `O(N)` set that only touches
//! `rowptr`, and an `O(NNZ)` set that also scans `colind`.
//!
//! Definitions (for row `i` with `nnz_i` nonzeros):
//! - `bw_i` — column span between first and last nonzero (`last − first + 1`
//!   for nonempty rows, 0 for empty ones);
//! - `scatter_i = nnz_i / bw_i` (the paper also calls this *dispersion*);
//! - `clustering_i = ngroups_i / nnz_i` where `ngroups_i` counts maximal runs
//!   of consecutive column indices;
//! - `misses_i` — nonzeros whose column distance from their predecessor in
//!   the row exceeds the elements per cache line (naive cache-miss proxy).
//!
//! Beyond Table I, the record carries the **symmetry features** the
//! symmetric-storage optimization keys on: `symmetry_share` (fraction of
//! off-diagonal nonzeros with an exact transposed partner) and the derived
//! binary `is_symmetric`. Without them a symmetric MB matrix is
//! indistinguishable from a general one and the classifier can never
//! propose the SSS traffic halver.

use sparseopt_core::csr::CsrMatrix;

/// Cache-line-resident doubles used for the `misses` feature (64-byte lines).
pub const ELEMS_PER_CACHE_LINE: usize = 8;

/// The full Table I feature record.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixFeatures {
    /// 1 if the SpMV working set fits in the last-level cache, else 0 (Θ(1)).
    pub size_fits_llc: f64,
    /// `NNZ / N²` (Θ(1)).
    pub density: f64,
    /// Matrix dimension (rows).
    pub nrows: usize,
    /// Nonzero count.
    pub nnz: usize,
    /// Minimum row nonzero count `min(nnz_i)` (Θ(N)).
    pub nnz_min: f64,
    /// Maximum row nonzero count `max(nnz_i)` (Θ(N)).
    pub nnz_max: f64,
    /// Mean row nonzero count (Θ(N)).
    pub nnz_avg: f64,
    /// Standard deviation of `nnz_i` (Θ(N)).
    pub nnz_sd: f64,
    /// Minimum row bandwidth `min(bw_i)` (first/last column per row —
    /// O(N) array reads given CSR).
    pub bw_min: f64,
    /// Maximum row bandwidth `max(bw_i)`.
    pub bw_max: f64,
    /// Mean row bandwidth.
    pub bw_avg: f64,
    /// Standard deviation of `bw_i`.
    pub bw_sd: f64,
    /// Mean of `scatter_i` (a.k.a. dispersion).
    pub scatter_avg: f64,
    /// Standard deviation of `scatter_i`.
    pub scatter_sd: f64,
    /// mean of `clustering_i` (Θ(NNZ)).
    pub clustering_avg: f64,
    /// mean of `misses_i` (Θ(NNZ)).
    pub misses_avg: f64,
    /// Fraction of off-diagonal nonzeros whose exact symmetric partner
    /// exists (`Θ(NNZ · log max_nnz_i)`; 0 for non-square matrices, 1 for
    /// symmetric ones) — see [`sparseopt_core::sss::symmetry_share`].
    pub symmetry_share: f64,
    /// 1 if the matrix is square and exactly symmetric, else 0. Gates the
    /// SSS storage optimization (MB class).
    pub is_symmetric: f64,
    /// SELL-C-σ padding overhead at the library's default `(C, σ)`:
    /// `padded_slots / nnz − 1`, i.e. the fraction of extra value/index
    /// slots the sliced-ELLPACK layout stores as explicit zeros. Near 0 for
    /// regular row lengths, grows with row-length variance — the cost side
    /// of the vectorization (CMP) optimization's format trade.
    pub padding_overhead: f64,
}

impl MatrixFeatures {
    /// Extracts all features. `llc_bytes` parameterizes the `size` feature
    /// (pass the target platform's last-level cache capacity).
    pub fn extract(csr: &CsrMatrix, llc_bytes: usize) -> Self {
        let n = csr.nrows();
        let nnz = csr.nnz();

        let mut nnz_stats = Stats::new();
        let mut bw_stats = Stats::new();
        let mut scatter_stats = Stats::new();
        let mut clustering_sum = 0.0f64;
        let mut misses_sum = 0.0f64;

        for i in 0..n {
            let len = csr.row_nnz(i);
            nnz_stats.push(len as f64);
            let cols = csr.row_cols(i);
            let bw = if len == 0 {
                0.0
            } else {
                (cols[len - 1] - cols[0]) as f64 + 1.0
            };
            bw_stats.push(bw);
            scatter_stats.push(if bw > 0.0 { len as f64 / bw } else { 0.0 });

            if len > 0 {
                let mut groups = 1usize;
                let mut misses = 0usize;
                for w in cols.windows(2) {
                    let gap = (w[1] - w[0]) as usize;
                    if gap > 1 {
                        groups += 1;
                    }
                    if gap > ELEMS_PER_CACHE_LINE {
                        misses += 1;
                    }
                }
                clustering_sum += groups as f64 / len as f64;
                misses_sum += misses as f64;
            }
        }

        // Working set: matrix footprint + x + y vectors.
        let working_set = csr.footprint_bytes() + (csr.ncols() + csr.nrows()) * 8;
        let symmetry_share = sparseopt_core::sss::symmetry_share(csr);
        let padded = sparseopt_core::sell::sell_padded_slots(csr, sparseopt_core::sell::SELL_SIGMA);
        let padding_overhead = if nnz == 0 {
            0.0
        } else {
            padded as f64 / nnz as f64 - 1.0
        };
        Self {
            size_fits_llc: if working_set <= llc_bytes { 1.0 } else { 0.0 },
            density: if n == 0 {
                0.0
            } else {
                nnz as f64 / (n as f64 * csr.ncols() as f64)
            },
            nrows: n,
            nnz,
            nnz_min: nnz_stats.min(),
            nnz_max: nnz_stats.max(),
            nnz_avg: nnz_stats.mean(),
            nnz_sd: nnz_stats.sd(),
            bw_min: bw_stats.min(),
            bw_max: bw_stats.max(),
            bw_avg: bw_stats.mean(),
            bw_sd: bw_stats.sd(),
            scatter_avg: scatter_stats.mean(),
            scatter_sd: scatter_stats.sd(),
            clustering_avg: if n == 0 {
                0.0
            } else {
                clustering_sum / n as f64
            },
            misses_avg: if n == 0 { 0.0 } else { misses_sum / n as f64 },
            symmetry_share,
            is_symmetric: if n == csr.ncols() && symmetry_share == 1.0 {
                1.0
            } else {
                0.0
            },
            padding_overhead,
        }
    }

    /// The named feature vector for a Table IV feature set.
    pub fn vector(&self, set: FeatureSet) -> Vec<f64> {
        set.names()
            .iter()
            .map(|name| {
                self.get(name)
                    .expect("FeatureSet::names only lists canonical Table I names")
            })
            .collect()
    }

    /// Looks a feature up by its Table I name; `None` for names outside the
    /// table (callers with user-supplied names decide how to react —
    /// formerly this panicked).
    pub fn get(&self, name: &str) -> Option<f64> {
        Some(match name {
            "size" => self.size_fits_llc,
            "density" => self.density,
            "nnz_min" => self.nnz_min,
            "nnz_max" => self.nnz_max,
            "nnz_avg" => self.nnz_avg,
            "nnz_sd" => self.nnz_sd,
            "bw_min" => self.bw_min,
            "bw_max" => self.bw_max,
            "bw_avg" => self.bw_avg,
            "bw_sd" => self.bw_sd,
            "scatter_avg" | "dispersion_avg" => self.scatter_avg,
            "scatter_sd" | "dispersion_sd" => self.scatter_sd,
            "clustering_avg" => self.clustering_avg,
            "misses_avg" => self.misses_avg,
            "symmetry_share" => self.symmetry_share,
            "is_symmetric" => self.is_symmetric,
            "padding_overhead" => self.padding_overhead,
            _ => return None,
        })
    }
}

/// The two feature sets reported in Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureSet {
    /// `O(N)` tier: `nnz{min,max,sd}, bw_avg, dispersion{avg,sd}` —
    /// "80% exact / 95% partial" in the paper.
    LinearInRows,
    /// `O(NNZ)` tier: `size, bw{avg,sd}, nnz{min,max,avg,sd}, misses_avg,
    /// dispersion_sd` — "84% exact / 100% partial" in the paper.
    LinearInNnz,
}

impl FeatureSet {
    /// Ordered feature names of the set.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            FeatureSet::LinearInRows => &[
                "nnz_min",
                "nnz_max",
                "nnz_sd",
                "bw_avg",
                "dispersion_avg",
                "dispersion_sd",
            ],
            FeatureSet::LinearInNnz => &[
                "size",
                "bw_avg",
                "bw_sd",
                "nnz_min",
                "nnz_max",
                "nnz_avg",
                "nnz_sd",
                "misses_avg",
                "dispersion_sd",
                // Beyond Table IV: the symmetry feature (same Θ(NNZ)-ish
                // tier) lets the trained tree separate symmetric MB
                // matrices, whose remediation is SSS storage rather than
                // delta compression.
                "symmetry_share",
                // Likewise beyond Table IV: the SELL-C-σ padding overhead
                // (computed from the actual layout in the same Θ(NNZ) tier)
                // tells the tree when the vectorization remediation's
                // format trade is cheap (regular rows) vs costly (high
                // row-length variance).
                "padding_overhead",
            ],
        }
    }

    /// Table IV complexity label.
    pub fn complexity(self) -> &'static str {
        match self {
            FeatureSet::LinearInRows => "O(N)",
            FeatureSet::LinearInNnz => "O(NNZ)",
        }
    }
}

/// Streaming min/max/mean/sd accumulator.
struct Stats {
    n: usize,
    min: f64,
    max: f64,
    sum: f64,
    sumsq: f64,
}

impl Stats {
    fn new() -> Self {
        Self {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sumsq: 0.0,
        }
    }

    fn push(&mut self, v: f64) {
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.sumsq += v * v;
    }

    fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    fn sd(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sumsq / self.n as f64 - mean * mean).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use sparseopt_core::coo::CooMatrix;

    const LLC: usize = 32 * 1024 * 1024;

    #[test]
    fn dense_matrix_features() {
        let m = CsrMatrix::from_coo(&generators::dense(16));
        let f = MatrixFeatures::extract(&m, LLC);
        assert_eq!(f.density, 1.0);
        assert_eq!(f.nnz_min, 16.0);
        assert_eq!(f.nnz_max, 16.0);
        assert_eq!(f.nnz_sd, 0.0);
        assert_eq!(f.bw_avg, 16.0);
        assert_eq!(f.scatter_avg, 1.0);
        assert_eq!(f.clustering_avg, 1.0 / 16.0);
        assert_eq!(f.misses_avg, 0.0);
        assert_eq!(f.size_fits_llc, 1.0);
    }

    #[test]
    fn diagonal_matrix_features() {
        let m = CsrMatrix::from_coo(&generators::diagonal(100));
        let f = MatrixFeatures::extract(&m, LLC);
        assert_eq!(f.nnz_avg, 1.0);
        assert_eq!(f.bw_avg, 1.0);
        assert_eq!(f.scatter_avg, 1.0);
        assert_eq!(f.clustering_avg, 1.0);
    }

    #[test]
    fn misses_counts_large_gaps() {
        // Row 0: columns 0 and 100 — one gap > 8.
        let mut coo = CooMatrix::new(2, 128);
        coo.push(0, 0, 1.0);
        coo.push(0, 100, 1.0);
        coo.push(1, 0, 1.0);
        let m = CsrMatrix::from_coo(&coo);
        let f = MatrixFeatures::extract(&m, LLC);
        assert_eq!(f.misses_avg, 0.5);
        assert_eq!(f.clustering_avg, (2.0 / 2.0 + 1.0) / 2.0);
    }

    #[test]
    fn skewed_matrix_has_high_nnz_sd() {
        let m = CsrMatrix::from_coo(&generators::few_dense_rows(400, 2, 2, 3));
        let f = MatrixFeatures::extract(&m, LLC);
        assert!(f.nnz_max > 20.0 * f.nnz_avg);
        assert!(f.nnz_sd > f.nnz_avg);
    }

    #[test]
    fn size_feature_flips_with_llc() {
        let m = CsrMatrix::from_coo(&generators::banded(2000, 2));
        let f_small = MatrixFeatures::extract(&m, 1024);
        let f_big = MatrixFeatures::extract(&m, 1 << 30);
        assert_eq!(f_small.size_fits_llc, 0.0);
        assert_eq!(f_big.size_fits_llc, 1.0);
    }

    #[test]
    fn feature_sets_resolve_all_names() {
        let m = CsrMatrix::from_coo(&generators::banded(64, 3));
        let f = MatrixFeatures::extract(&m, LLC);
        for set in [FeatureSet::LinearInRows, FeatureSet::LinearInNnz] {
            let v = f.vector(set);
            assert_eq!(v.len(), set.names().len());
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn unknown_feature_name_is_none_not_a_panic() {
        let m = CsrMatrix::from_coo(&generators::banded(8, 1));
        let f = MatrixFeatures::extract(&m, LLC);
        assert_eq!(f.get("no_such_feature"), None);
        assert_eq!(f.get(""), None);
        assert_eq!(f.get("density"), Some(f.density));
        assert_eq!(f.get("dispersion_avg"), Some(f.scatter_avg));
    }

    #[test]
    fn symmetry_features_separate_symmetric_from_general() {
        // Poisson stencils are exactly symmetric; the banded generator's
        // hashed values are not (same pattern, mismatched values).
        let sym = CsrMatrix::from_coo(&generators::poisson2d(20, 20));
        let f = MatrixFeatures::extract(&sym, LLC);
        assert_eq!(f.symmetry_share, 1.0);
        assert_eq!(f.is_symmetric, 1.0);
        assert_eq!(f.get("is_symmetric"), Some(1.0));

        let gen = CsrMatrix::from_coo(&generators::banded(200, 2));
        let f = MatrixFeatures::extract(&gen, LLC);
        assert!(f.is_symmetric == 0.0 && f.symmetry_share < 1.0);

        let explicit = CsrMatrix::from_coo(&generators::symmetric_banded(200, 2));
        let f = MatrixFeatures::extract(&explicit, LLC);
        assert_eq!(f.is_symmetric, 1.0);
        // The O(NNZ) feature set carries the symmetry signal.
        assert!(FeatureSet::LinearInNnz.names().contains(&"symmetry_share"));
    }

    #[test]
    fn padding_overhead_tracks_row_length_variance() {
        // Uniform row lengths pad nothing; a hub row in an otherwise sparse
        // matrix pads its chunk and the overhead shows.
        let regular = CsrMatrix::from_coo(&generators::banded(2000, 3));
        let f = MatrixFeatures::extract(&regular, LLC);
        assert!(
            f.padding_overhead < 0.05,
            "banded matrix should barely pad: {}",
            f.padding_overhead
        );

        let skewed = CsrMatrix::from_coo(&generators::few_dense_rows(400, 2, 2, 3));
        let f = MatrixFeatures::extract(&skewed, LLC);
        assert!(
            f.padding_overhead > 0.05,
            "skewed rows must pad: {}",
            f.padding_overhead
        );
        assert_eq!(f.get("padding_overhead"), Some(f.padding_overhead));
        assert!(FeatureSet::LinearInNnz
            .names()
            .contains(&"padding_overhead"));
    }

    #[test]
    fn empty_matrix_is_all_zeros() {
        let m = CsrMatrix::from_coo(&CooMatrix::new(4, 4));
        let f = MatrixFeatures::extract(&m, LLC);
        assert_eq!(f.nnz_avg, 0.0);
        assert_eq!(f.bw_avg, 0.0);
        assert_eq!(f.misses_avg, 0.0);
    }
}
