//! Matrix reordering: reverse Cuthill-McKee (RCM) bandwidth reduction.
//!
//! The paper's related work includes locality-improving transformations
//! (Pichel et al.) as an alternative way to attack the ML bottleneck:
//! instead of prefetching around irregular `x` accesses, permute the matrix
//! so the accesses become local. RCM is the canonical such permutation; the
//! `ablation` harness can compare it against the prefetch-based pool.

use sparseopt_core::coo::CooMatrix;
use sparseopt_core::csr::CsrMatrix;

/// A permutation of `0..n` (old index → new index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// Identity permutation.
    pub fn identity(n: usize) -> Self {
        Self {
            forward: (0..n as u32).collect(),
        }
    }

    /// Builds from an explicit old→new map.
    ///
    /// # Panics
    /// Panics if `forward` is not a permutation of `0..n`.
    pub fn from_forward(forward: Vec<u32>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            assert!((v as usize) < n && !seen[v as usize], "not a permutation");
            seen[v as usize] = true;
        }
        Self { forward }
    }

    /// Length of the permuted index space.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New index of old index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i] as usize
    }

    /// The inverse permutation (new → old).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Permutation { forward: inv }
    }

    /// Symmetric application `P A Pᵀ`: permutes both rows and columns of a
    /// square matrix.
    pub fn permute_symmetric(&self, csr: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            csr.nrows(),
            csr.ncols(),
            "symmetric permutation needs a square matrix"
        );
        assert_eq!(csr.nrows(), self.len(), "permutation length mismatch");
        let mut coo = CooMatrix::with_capacity(csr.nrows(), csr.ncols(), csr.nnz());
        for (r, c, v) in csr.iter() {
            coo.push(self.apply(r), self.apply(c), v);
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Permutes a vector consistently with the rows (`out[new] = v[old]`).
    pub fn permute_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "vector length mismatch");
        let mut out = vec![0.0; v.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            out[new as usize] = v[old];
        }
        out
    }
}

/// Reverse Cuthill-McKee ordering of the symmetrized structure of `csr`.
/// Disconnected components are ordered one after another, each started from
/// a minimum-degree vertex (the classic pseudo-peripheral heuristic's cheap
/// variant).
pub fn reverse_cuthill_mckee(csr: &CsrMatrix) -> Permutation {
    assert_eq!(csr.nrows(), csr.ncols(), "RCM needs a square matrix");
    let n = csr.nrows();

    // Symmetrized adjacency (unordered neighbor lists, self-loops dropped).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _v) in csr.iter() {
        if r != c {
            adj[r].push(c as u32);
            adj[c].push(r as u32);
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree = |i: usize| adj[i].len();

    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Vertices sorted by degree: component seeds.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&i| degree(i));

    let mut queue = std::collections::VecDeque::new();
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed as u32);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            // Neighbors in increasing degree order (Cuthill-McKee rule).
            let mut nbrs: Vec<u32> = adj[u as usize]
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            nbrs.sort_by_key(|&v| degree(v as usize));
            for v in nbrs {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n);

    // Reverse (the "R" of RCM) and convert visit order to old→new map.
    let mut forward = vec![0u32; n];
    for (pos, &old) in order.iter().rev().enumerate() {
        forward[old as usize] = pos as u32;
    }
    Permutation { forward }
}

/// Structural bandwidth of a matrix: `max_i bw_i` over nonempty rows.
pub fn bandwidth(csr: &CsrMatrix) -> usize {
    (0..csr.nrows())
        .filter(|&i| csr.row_nnz(i) > 0)
        .map(|i| {
            let cols = csr.row_cols(i);
            (cols[cols.len() - 1] - cols[0]) as usize
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators as g;
    use sparseopt_core::kernels::{SerialCsr, SparseLinOp};
    use std::sync::Arc;

    #[test]
    fn identity_and_inverse() {
        let p = Permutation::identity(5);
        assert_eq!(p.apply(3), 3);
        let q = Permutation::from_forward(vec![2, 0, 1]);
        let inv = q.inverse();
        for i in 0..3 {
            assert_eq!(inv.apply(q.apply(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scattered_band() {
        // A banded matrix scrambled by a random symmetric permutation: RCM
        // must recover (nearly) the band.
        let base = CsrMatrix::from_coo(&g::banded(400, 2).symmetrize());
        let scramble = Permutation::from_forward({
            let mut f: Vec<u32> = (0..400).collect();
            // Deterministic shuffle.
            let mut s = 12345u64;
            for i in (1..400usize).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                f.swap(i, (s >> 33) as usize % (i + 1));
            }
            f
        });
        let scrambled = scramble.permute_symmetric(&base);
        assert!(
            bandwidth(&scrambled) > 100,
            "scramble must destroy the band"
        );

        let rcm = reverse_cuthill_mckee(&scrambled);
        let restored = rcm.permute_symmetric(&scrambled);
        assert!(
            bandwidth(&restored) <= 8,
            "RCM bandwidth {} should approach the original band",
            bandwidth(&restored)
        );
    }

    #[test]
    fn permuted_spmv_is_permuted_product() {
        // (P A Pᵀ)(P x) = P (A x).
        let a = Arc::new(CsrMatrix::from_coo(&g::poisson2d(12, 12)));
        let n = a.nrows();
        let p = reverse_cuthill_mckee(&a);
        let pa = Arc::new(p.permute_symmetric(&a));

        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let px = p.permute_vec(&x);

        let mut y = vec![0.0; n];
        SerialCsr::new(a).spmv(&x, &mut y);
        let mut py = vec![0.0; n];
        SerialCsr::new(pa).spmv(&px, &mut py);

        let want = p.permute_vec(&y);
        for (u, v) in py.iter().zip(&want) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = sparseopt_core::coo::CooMatrix::new(6, 6);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(4, 5, 1.0);
        coo.push(5, 4, 1.0);
        // Vertices 2 and 3 are isolated.
        let csr = CsrMatrix::from_coo(&coo);
        let p = reverse_cuthill_mckee(&csr);
        assert_eq!(p.len(), 6);
        // Still a valid permutation (constructor would have panicked).
        let _ = p.inverse();
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        let d = CsrMatrix::from_coo(&g::diagonal(10));
        assert_eq!(bandwidth(&d), 0);
    }
}
