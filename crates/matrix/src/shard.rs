//! On-disk sharded matrix container — the out-of-core storage layer.
//!
//! A shard file stores one sparse matrix as a sequence of **row-block
//! shards**, each an independent CSR fragment covering a contiguous range of
//! rows (shard-local `rowptr`, full-width column indices). The point of the
//! container is that each shard can be loaded, fingerprinted, classified and
//! tuned *independently* — the paper's observation that bottlenecks are
//! structural and local, lifted to matrices that never fit in memory at
//! once. `sparseopt-core`'s `ShardedOp` streams these shards through a
//! bounded window; the optimizer picks a per-shard plan.
//!
//! ## File layout (all little-endian)
//!
//! ```text
//! offset 0   magic     8 bytes  "SPSHRD1\0"
//!        8   version   u32      = 1
//!       12   flags     u32      = 0 (reserved)
//!       16   nrows     u64
//!       24   ncols     u64
//!       32   nnz       u64
//!       40   nshards   u64
//!       48   shard table, nshards × 40 bytes:
//!              row_start u64 | nrows u64 | nnz u64 | offset u64 | len u64
//!       ...  shard payloads, 8-byte aligned, one per table entry:
//!              rowptr  (nrows_i + 1) × u64   (shard-local, starts at 0)
//!              colind  nnz_i × u32           (padded to 8-byte boundary)
//!              values  nnz_i × f64
//! ```
//!
//! [`ShardStore::open`] validates the header, the shard table, and every
//! payload extent against the file size before returning, so a corrupt or
//! truncated file degrades to a typed [`ShardError`] — never a panic. On
//! Unix the payload region is `mmap`ed read-only and [`ShardStore::load`]
//! copies one shard's extent out of the mapping; elsewhere (or when the
//! mapping fails) it falls back to seek-and-read.
//!
//! ## Example
//!
//! ```
//! use sparseopt_core::prelude::CsrMatrix;
//! use sparseopt_matrix::generators;
//! use sparseopt_matrix::shard::{write_shard_file, ShardStore};
//!
//! let csr = CsrMatrix::from_coo(&generators::banded(100, 3));
//! let path = std::env::temp_dir().join(format!("doc-shards-{}.shards", std::process::id()));
//! let nshards = write_shard_file(&path, &csr, 32).unwrap();
//! assert_eq!(nshards, 4); // ceil(100 / 32)
//!
//! let store = ShardStore::open(&path).unwrap();
//! assert_eq!((store.nrows(), store.ncols(), store.nnz()), (100, 100, csr.nnz()));
//! // Shard 1 covers rows 32..64 and is itself a CSR matrix over all columns.
//! let shard = store.load(1).unwrap();
//! assert_eq!(store.meta(1).rows, 32..64);
//! assert_eq!((shard.nrows(), shard.ncols()), (32, 100));
//! std::fs::remove_file(&path).unwrap();
//! ```

use sparseopt_core::prelude::CsrMatrix;
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::Mutex;

/// File magic: identifies a sparseopt shard container.
pub const SHARD_MAGIC: [u8; 8] = *b"SPSHRD1\0";
/// Container format version written by [`write_shard_file`] and required by
/// [`ShardStore::open`].
pub const SHARD_FORMAT_VERSION: u32 = 1;

const HEADER_BYTES: u64 = 48;
const TABLE_ENTRY_BYTES: u64 = 40;

/// Typed failure of shard-container I/O. Corrupt or truncated files always
/// surface here — opening and loading never panic on bad bytes.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`SHARD_MAGIC`] — not a shard container.
    BadMagic,
    /// The container was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// Structurally invalid contents (truncation, inconsistent shard table,
    /// out-of-bounds payload, malformed CSR arrays).
    Corrupt(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o error: {e}"),
            ShardError::BadMagic => write!(f, "not a shard container (bad magic)"),
            ShardError::BadVersion { found } => write!(
                f,
                "unsupported shard container version {found} (expected {SHARD_FORMAT_VERSION})"
            ),
            ShardError::Corrupt(why) => write!(f, "corrupt shard container: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// One shard-table entry: which rows a shard covers and where its payload
/// lives in the file.
#[derive(Clone, Debug)]
pub struct ShardMeta {
    /// Global row range `[start, end)` the shard covers.
    pub rows: Range<usize>,
    /// Nonzeros stored in the shard.
    pub nnz: usize,
    offset: u64,
    len: u64,
}

impl ShardMeta {
    /// In-memory footprint of this shard once loaded as a [`CsrMatrix`]
    /// (`rowptr` usize + `colind` u32 + `values` f64) — the unit the
    /// prefetch-window residency bound `window · max_shard_bytes` is
    /// expressed in.
    pub fn csr_bytes(&self) -> usize {
        (self.rows.len() + 1) * std::mem::size_of::<usize>()
            + self.nnz * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
    }
}

fn payload_len(nrows: usize, nnz: usize) -> u64 {
    let rowptr = (nrows as u64 + 1) * 8;
    let colind = (nnz as u64 * 4).div_ceil(8) * 8; // padded to 8-byte boundary
    let values = nnz as u64 * 8;
    rowptr + colind + values
}

/// Splits `csr` into `ceil(nrows / rows_per_shard)` row-block shards and
/// writes them as a shard container at `path`, returning the shard count.
///
/// The matrix itself stays in memory here — this is the *producer* side,
/// typically run once by the `mm2shards` converter; consumers then stream
/// the file through [`ShardStore`] without ever holding the whole matrix.
///
/// # Panics
/// Panics if `rows_per_shard == 0`.
pub fn write_shard_file(
    path: &Path,
    csr: &CsrMatrix,
    rows_per_shard: usize,
) -> Result<usize, ShardError> {
    assert!(rows_per_shard > 0, "rows_per_shard must be at least 1");
    let nshards = csr.nrows().div_ceil(rows_per_shard);
    let rowptr = csr.rowptr();

    // Lay the table out up front: payloads start 8-aligned right after it
    // (48 + 40·nshards is already a multiple of 8).
    let mut metas = Vec::with_capacity(nshards);
    let mut offset = HEADER_BYTES + nshards as u64 * TABLE_ENTRY_BYTES;
    for s in 0..nshards {
        let start = s * rows_per_shard;
        let end = ((s + 1) * rows_per_shard).min(csr.nrows());
        let nnz = rowptr[end] - rowptr[start];
        let len = payload_len(end - start, nnz);
        metas.push(ShardMeta {
            rows: start..end,
            nnz,
            offset,
            len,
        });
        offset += len;
    }

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&SHARD_MAGIC)?;
    w.write_all(&SHARD_FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?; // flags
    for dim in [csr.nrows(), csr.ncols(), csr.nnz(), nshards] {
        w.write_all(&(dim as u64).to_le_bytes())?;
    }
    for m in &metas {
        for field in [
            m.rows.start as u64,
            m.rows.len() as u64,
            m.nnz as u64,
            m.offset,
            m.len,
        ] {
            w.write_all(&field.to_le_bytes())?;
        }
    }
    for m in &metas {
        let base = rowptr[m.rows.start];
        for r in m.rows.clone() {
            w.write_all(&((rowptr[r] - base) as u64).to_le_bytes())?;
        }
        w.write_all(&((rowptr[m.rows.end] - base) as u64).to_le_bytes())?;
        let cols = &csr.colind()[base..base + m.nnz];
        for &c in cols {
            w.write_all(&c.to_le_bytes())?;
        }
        if m.nnz * 4 % 8 != 0 {
            w.write_all(&[0u8; 4])?; // pad colind to the 8-byte boundary
        }
        for &v in &csr.values()[base..base + m.nnz] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(nshards)
}

#[cfg(unix)]
mod map {
    //! Minimal read-only `mmap` binding. `std` already links libc on Unix,
    //! so the two syscall wrappers can be declared directly — no crate.
    use std::os::fd::AsRawFd;

    use core::ffi::{c_int, c_void};
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x2;

    /// A whole-file read-only private mapping.
    pub struct Map {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) and owned
    // until Drop, so shared references from any thread are fine.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps the first `len` bytes of `file`; `None` if the kernel
        /// refuses (the caller falls back to seek-and-read).
        pub fn new(file: &std::fs::File, len: usize) -> Option<Self> {
            if len == 0 {
                return None;
            }
            // SAFETY: fd is valid for the duration of the call; a failed
            // mapping returns MAP_FAILED which we translate to None.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(Self {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is a live read-only mapping we own.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: exact (addr, len) pair returned by mmap.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

enum Backing {
    #[cfg(unix)]
    Map(map::Map),
    File(Mutex<File>),
}

/// Read side of the shard container: validates the file once at open, then
/// serves independent row-block [`CsrMatrix`] fragments on demand.
///
/// The store is `Send + Sync`; cloning an `Arc<ShardStore>` into per-shard
/// loader closures is the intended usage (see `ShardedOp` in
/// `sparseopt-core`).
pub struct ShardStore {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    metas: Vec<ShardMeta>,
    backing: Backing,
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

impl ShardStore {
    /// Opens and fully validates a shard container.
    ///
    /// Every structural invariant is checked here — magic, version, shard
    /// table coverage (contiguous rows, nnz totals), and payload extents
    /// against the real file size — so later [`load`](Self::load) calls
    /// cannot run past EOF and corrupt files fail with a typed
    /// [`ShardError`] instead of a panic.
    pub fn open(path: &Path) -> Result<Self, ShardError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_BYTES {
            return Err(ShardError::Corrupt(format!(
                "file is {file_len} bytes, smaller than the {HEADER_BYTES}-byte header"
            )));
        }
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)?;
        if header[..8] != SHARD_MAGIC {
            return Err(ShardError::BadMagic);
        }
        let version = le_u32(&header[8..]);
        if version != SHARD_FORMAT_VERSION {
            return Err(ShardError::BadVersion { found: version });
        }
        let nrows = le_u64(&header[16..]) as usize;
        let ncols = le_u64(&header[24..]) as usize;
        let nnz = le_u64(&header[32..]) as usize;
        let nshards = le_u64(&header[40..]) as usize;

        let table_bytes = (nshards as u64)
            .checked_mul(TABLE_ENTRY_BYTES)
            .ok_or_else(|| {
                ShardError::Corrupt(format!("shard count {nshards} overflows the table size"))
            })?;
        if HEADER_BYTES + table_bytes > file_len {
            return Err(ShardError::Corrupt(format!(
                "shard table ({nshards} entries) runs past end of file"
            )));
        }
        let mut raw = vec![0u8; table_bytes as usize];
        file.read_exact(&mut raw)?;

        let mut metas = Vec::with_capacity(nshards);
        let (mut next_row, mut nnz_total) = (0usize, 0usize);
        for (s, e) in raw.chunks_exact(TABLE_ENTRY_BYTES as usize).enumerate() {
            let row_start = le_u64(e) as usize;
            let shard_rows = le_u64(&e[8..]) as usize;
            let shard_nnz = le_u64(&e[16..]) as usize;
            let offset = le_u64(&e[24..]);
            let len = le_u64(&e[32..]);
            if row_start != next_row {
                return Err(ShardError::Corrupt(format!(
                    "shard {s} starts at row {row_start}, expected {next_row}"
                )));
            }
            if len != payload_len(shard_rows, shard_nnz) {
                return Err(ShardError::Corrupt(format!(
                    "shard {s} payload length {len} disagrees with its row/nnz counts"
                )));
            }
            let end = offset.checked_add(len).ok_or_else(|| {
                ShardError::Corrupt(format!("shard {s} payload extent overflows"))
            })?;
            if offset < HEADER_BYTES + table_bytes || end > file_len {
                return Err(ShardError::Corrupt(format!(
                    "shard {s} payload [{offset}, {end}) is outside the file"
                )));
            }
            next_row = row_start + shard_rows;
            nnz_total += shard_nnz;
            metas.push(ShardMeta {
                rows: row_start..next_row,
                nnz: shard_nnz,
                offset,
                len,
            });
        }
        if next_row != nrows {
            return Err(ShardError::Corrupt(format!(
                "shards cover {next_row} rows, header says {nrows}"
            )));
        }
        if nnz_total != nnz {
            return Err(ShardError::Corrupt(format!(
                "shards hold {nnz_total} nonzeros, header says {nnz}"
            )));
        }

        #[cfg(unix)]
        let backing = match map::Map::new(&file, file_len as usize) {
            Some(m) => Backing::Map(m),
            None => Backing::File(Mutex::new(file)),
        };
        #[cfg(not(unix))]
        let backing = Backing::File(Mutex::new(file));

        Ok(Self {
            nrows,
            ncols,
            nnz,
            metas,
            backing,
        })
    }

    /// Matrix row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Matrix column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total stored nonzeros across all shards.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of row-block shards.
    pub fn nshards(&self) -> usize {
        self.metas.len()
    }

    /// The full shard table.
    pub fn shards(&self) -> &[ShardMeta] {
        &self.metas
    }

    /// Table entry for shard `i`.
    ///
    /// # Panics
    /// Panics if `i >= nshards()`.
    pub fn meta(&self, i: usize) -> &ShardMeta {
        &self.metas[i]
    }

    /// Largest in-memory CSR footprint over all shards — the `shard_bytes`
    /// factor in the out-of-core residency bound `window · max_shard_bytes`.
    pub fn max_shard_csr_bytes(&self) -> usize {
        self.metas
            .iter()
            .map(ShardMeta::csr_bytes)
            .max()
            .unwrap_or(0)
    }

    fn payload(&self, offset: u64, len: u64) -> Result<Cow<'_, [u8]>, ShardError> {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map(m) => Ok(Cow::Borrowed(
                &m.bytes()[offset as usize..(offset + len) as usize],
            )),
            Backing::File(f) => {
                let mut buf = vec![0u8; len as usize];
                let mut f = f.lock().expect("shard file lock");
                f.seek(SeekFrom::Start(offset))?;
                f.read_exact(&mut buf)?;
                Ok(Cow::Owned(buf))
            }
        }
    }

    /// Loads shard `i` as an owned shard-local CSR fragment:
    /// `meta(i).rows.len()` rows over the full `ncols()` columns.
    ///
    /// The payload bytes are validated (monotone `rowptr` ending at the
    /// shard's nnz, in-bounds column indices), so flipped bits degrade to
    /// [`ShardError::Corrupt`] rather than a panic or out-of-bounds CSR.
    ///
    /// # Panics
    /// Panics if `i >= nshards()`.
    pub fn load(&self, i: usize) -> Result<CsrMatrix, ShardError> {
        let meta = self.metas[i].clone();
        let bytes = self.payload(meta.offset, meta.len)?;
        let rows = meta.rows.len();

        let mut rowptr = Vec::with_capacity(rows + 1);
        for chunk in bytes[..(rows + 1) * 8].chunks_exact(8) {
            rowptr.push(le_u64(chunk) as usize);
        }
        let ok_rowptr =
            rowptr[0] == 0 && rowptr.windows(2).all(|w| w[0] <= w[1]) && rowptr[rows] == meta.nnz;
        if !ok_rowptr {
            return Err(ShardError::Corrupt(format!(
                "shard {i} rowptr is not monotone 0..{}",
                meta.nnz
            )));
        }

        let col_base = (rows + 1) * 8;
        let mut colind = Vec::with_capacity(meta.nnz);
        for chunk in bytes[col_base..col_base + meta.nnz * 4].chunks_exact(4) {
            let c = le_u32(chunk);
            if c as usize >= self.ncols {
                return Err(ShardError::Corrupt(format!(
                    "shard {i} column index {c} is out of bounds (ncols {})",
                    self.ncols
                )));
            }
            colind.push(c);
        }

        let val_base = col_base + (meta.nnz * 4).div_ceil(8) * 8;
        let mut values = Vec::with_capacity(meta.nnz);
        for chunk in bytes[val_base..val_base + meta.nnz * 8].chunks_exact(8) {
            values.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }

        Ok(CsrMatrix::from_raw(
            rows, self.ncols, rowptr, colind, values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparseopt-shard-{}-{name}", std::process::id()))
    }

    fn roundtrip(csr: &CsrMatrix, rows_per_shard: usize, name: &str) {
        let path = tmp(name);
        let nshards = write_shard_file(&path, csr, rows_per_shard).expect("write");
        assert_eq!(nshards, csr.nrows().div_ceil(rows_per_shard));
        let store = ShardStore::open(&path).expect("open");
        assert_eq!(store.nrows(), csr.nrows());
        assert_eq!(store.ncols(), csr.ncols());
        assert_eq!(store.nnz(), csr.nnz());
        assert_eq!(store.nshards(), nshards);
        for i in 0..nshards {
            let meta = store.meta(i).clone();
            let shard = store.load(i).expect("load");
            assert_eq!(shard.nrows(), meta.rows.len());
            assert_eq!(shard.ncols(), csr.ncols());
            for (local, global) in meta.rows.clone().enumerate() {
                let (s, e) = (csr.rowptr()[global], csr.rowptr()[global + 1]);
                let (ls, le) = (shard.rowptr()[local], shard.rowptr()[local + 1]);
                assert_eq!(&shard.colind()[ls..le], &csr.colind()[s..e]);
                assert_eq!(&shard.values()[ls..le], &csr.values()[s..e]);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrips_banded() {
        roundtrip(
            &CsrMatrix::from_coo(&generators::banded(123, 4)),
            17,
            "banded",
        );
    }

    #[test]
    fn roundtrips_power_law_and_uneven_tail() {
        roundtrip(
            &CsrMatrix::from_coo(&generators::power_law(200, 6, 1.8, 42)),
            64,
            "plaw",
        );
    }

    #[test]
    fn roundtrips_with_empty_shards() {
        // Rows 50.. are entirely empty: the trailing shards carry zero nnz.
        let mut coo = sparseopt_core::prelude::CooMatrix::new(96, 96);
        for i in 0..50 {
            coo.push(i, i, 1.0 + i as f64);
        }
        roundtrip(&CsrMatrix::from_coo(&coo), 16, "empty-tail");
    }

    #[test]
    fn open_rejects_bad_magic_and_version() {
        let path = tmp("magic");
        let csr = CsrMatrix::from_coo(&generators::banded(20, 1));
        write_shard_file(&path, &csr, 10).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ShardStore::open(&path), Err(ShardError::BadMagic)));

        bytes[0] = SHARD_MAGIC[0];
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardStore::open(&path),
            Err(ShardError::BadVersion { found: 99 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncation_anywhere() {
        let path = tmp("trunc");
        let csr = CsrMatrix::from_coo(&generators::banded(40, 2));
        write_shard_file(&path, &csr, 8).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut inside the header, inside the table, and inside a payload.
        for cut in [10, 60, bytes.len() - 9] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(
                    ShardStore::open(&path),
                    Err(ShardError::Corrupt(_) | ShardError::Io(_))
                ),
                "cut at {cut} must be a typed error"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_out_of_bounds_columns() {
        let path = tmp("badcol");
        let csr = CsrMatrix::from_coo(&generators::banded(16, 1));
        write_shard_file(&path, &csr, 16).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First colind word of the single shard: header + 1 table entry +
        // rowptr(17 × u64).
        let col0 = 48 + 40 + 17 * 8;
        bytes[col0..col0 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let store = ShardStore::open(&path).expect("header still valid");
        assert!(matches!(store.load(0), Err(ShardError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
