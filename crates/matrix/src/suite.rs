//! The paper's evaluation suite, reproduced with synthetic stand-ins.
//!
//! The paper evaluates on 31 University of Florida matrices plus two dense
//! endpoints (Figs. 1, 3 and 7) and trains the feature-guided classifier on
//! 210 UF matrices. The collection cannot ship here, so every named matrix is
//! replaced by a generator invocation from the *same structural category*
//! (FEM stencil, blocked FEM, power-law web graph, circuit with dense rows,
//! quantum-chemistry dense rows, …) at laptop scale. The bottleneck classes
//! the paper assigns to each matrix depend on those structural features, so
//! class diversity — the property the classifiers are tested on — survives
//! the substitution. Sizes are scaled down ~20–50× but keep the relative
//! ordering (small-dense fits any LLC, large-dense exceeds them all).

use crate::generators as g;
use rayon::prelude::*;
use sparseopt_core::csr::CsrMatrix;
use std::sync::Arc;

/// A named matrix of the evaluation suite.
#[derive(Clone)]
pub struct SuiteMatrix {
    /// The UF matrix this stands in for (paper's x-axis label).
    pub name: &'static str,
    /// Structural category of the stand-in generator.
    pub category: Category,
    /// The matrix itself.
    pub csr: Arc<CsrMatrix>,
    /// Size ratio of the UF original to this stand-in (`original nnz /
    /// synthetic nnz`, >= 1). The simulator shrinks modeled caches by this
    /// factor so cache residency and locality match the original.
    pub scale: f64,
}

impl SuiteMatrix {
    /// How fast the x-vector reuse window grows with matrix size, by
    /// structural category: a 2-D/3-D stencil's window is one grid
    /// plane (`∝ N^0.5..0.67`), a banded/blocked matrix's window is the
    /// band, while graphs and random patterns touch `x` globally (`∝ N`).
    /// The x-miss cache simulation shrinks the cache by this factor rather
    /// than the full footprint scale.
    pub fn locality_scale(&self) -> f64 {
        let exp = match self.category {
            Category::Stencil => 0.55,
            Category::BlockedFem => 0.5,
            Category::Dense => 1.0,
            Category::PowerLaw
            | Category::FewDenseRows
            | Category::RandomUniform
            | Category::ShortRows => 1.0,
        };
        self.scale.powf(exp).max(1.0)
    }
}

/// Structural category of a suite stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Fully dense rows stored sparsely.
    Dense,
    /// Regular PDE/FEM stencil.
    Stencil,
    /// Dense block structure along a band (structural FEM).
    BlockedFem,
    /// Power-law / web / social graph.
    PowerLaw,
    /// Sparse background with a few dense rows (circuit/LP).
    FewDenseRows,
    /// Uniformly random columns (chemistry/gene networks at high density).
    RandomUniform,
    /// Very short rows (meshes, webbase tail).
    ShortRows,
}

/// Build recipe for one suite entry (kept separate from the data so the
/// suite definition is inspectable without generating anything).
struct Recipe {
    name: &'static str,
    category: Category,
    /// Nonzero count of the UF original this entry stands in for
    /// (0 for the synthetic dense endpoints, which have no original).
    uf_nnz: usize,
    build: fn() -> CsrMatrix,
}

fn csr(coo: sparseopt_core::coo::CooMatrix) -> CsrMatrix {
    CsrMatrix::from_coo(&coo)
}

/// The 32 recipes in the paper's x-axis order (Fig. 1/3/7).
fn recipes() -> Vec<Recipe> {
    vec![
        Recipe {
            name: "small-dense",
            uf_nnz: 0,
            category: Category::Dense,
            build: || csr(g::dense(96)),
        },
        Recipe {
            name: "poisson3Db",
            uf_nnz: 2374949,
            category: Category::Stencil,
            build: || csr(g::poisson3d(14, 14, 14)),
        },
        Recipe {
            name: "citationCiteseer",
            uf_nnz: 2313294,
            category: Category::PowerLaw,
            build: || csr(g::power_law(6000, 5, 0.7, 11)),
        },
        Recipe {
            name: "pkustk08",
            uf_nnz: 8130343,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(300, 6, 4, 12)),
        },
        Recipe {
            name: "ins2",
            uf_nnz: 2751484,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(4000, 3, 4, 13)),
        },
        Recipe {
            name: "FEM_3D_thermal2",
            uf_nnz: 3489300,
            category: Category::Stencil,
            build: || csr(g::poisson3d(16, 16, 16)),
        },
        Recipe {
            name: "delaunay_n19",
            uf_nnz: 3145646,
            category: Category::Stencil,
            build: || csr(g::poisson2d(90, 90)),
        },
        Recipe {
            name: "barrier2-12",
            uf_nnz: 3897557,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(800, 4, 3, 14)),
        },
        Recipe {
            name: "parabolic_fem",
            uf_nnz: 3674625,
            category: Category::Stencil,
            build: || csr(g::poisson3d(20, 20, 10)),
        },
        Recipe {
            name: "offshore",
            uf_nnz: 4242673,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(1000, 4, 4, 15)),
        },
        Recipe {
            name: "webbase-1M",
            uf_nnz: 3105536,
            category: Category::PowerLaw,
            build: || csr(g::power_law(10000, 3, 1.2, 16)),
        },
        Recipe {
            name: "ASIC_680k",
            uf_nnz: 3871773,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(8000, 2, 4, 17)),
        },
        Recipe {
            name: "consph",
            uf_nnz: 6010480,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(1200, 6, 6, 18)),
        },
        Recipe {
            name: "amazon-2008",
            uf_nnz: 5158388,
            category: Category::PowerLaw,
            build: || csr(g::power_law(8000, 6, 0.5, 19)),
        },
        Recipe {
            name: "web-Google",
            uf_nnz: 5105039,
            category: Category::PowerLaw,
            build: || csr(g::power_law(8000, 6, 0.8, 20)),
        },
        Recipe {
            name: "rajat30",
            uf_nnz: 6175377,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(10000, 2, 6, 21)),
        },
        Recipe {
            name: "degme",
            uf_nnz: 8127528,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(4000, 3, 8, 22)),
        },
        Recipe {
            name: "pattern1",
            uf_nnz: 9323432,
            category: Category::RandomUniform,
            build: || csr(g::random_uniform(2000, 48, 23)),
        },
        Recipe {
            name: "G3_circuit",
            uf_nnz: 7660826,
            category: Category::Stencil,
            build: || csr(g::poisson2d(120, 120)),
        },
        Recipe {
            name: "thermal2",
            uf_nnz: 8580313,
            category: Category::Stencil,
            build: || csr(g::poisson2d(110, 110)),
        },
        Recipe {
            name: "flickr",
            uf_nnz: 9837214,
            category: Category::PowerLaw,
            build: || csr(g::power_law(9000, 8, 1.1, 24)),
        },
        Recipe {
            name: "SiO2",
            uf_nnz: 11283503,
            category: Category::RandomUniform,
            build: || csr(g::random_uniform(3000, 30, 25)),
        },
        Recipe {
            name: "TSOPF_RS_b2383",
            uf_nnz: 16171169,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(400, 8, 5, 26)),
        },
        Recipe {
            name: "Ga41As41H72",
            uf_nnz: 18488476,
            category: Category::RandomUniform,
            build: || csr(g::random_uniform(4000, 40, 27)),
        },
        Recipe {
            name: "eu-2005",
            uf_nnz: 19235140,
            category: Category::PowerLaw,
            build: || csr(g::power_law(9000, 10, 1.0, 28)),
        },
        Recipe {
            name: "wikipedia-20051105",
            uf_nnz: 19753078,
            category: Category::PowerLaw,
            build: || csr(g::rmat(13, 6, 0.57, 0.19, 0.19, 29)),
        },
        Recipe {
            name: "human_gene1",
            uf_nnz: 24669643,
            category: Category::RandomUniform,
            build: || csr(g::random_uniform(1200, 300, 30)),
        },
        Recipe {
            name: "nd24k",
            uf_nnz: 28715634,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(300, 12, 8, 31)),
        },
        Recipe {
            name: "FullChip",
            uf_nnz: 26621990,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(12000, 2, 5, 32)),
        },
        Recipe {
            name: "boneS10",
            uf_nnz: 55468422,
            category: Category::BlockedFem,
            build: || csr(g::blocked_fem(1500, 6, 6, 33)),
        },
        Recipe {
            name: "circuit5M",
            uf_nnz: 59524291,
            category: Category::FewDenseRows,
            build: || csr(g::few_dense_rows(14000, 2, 8, 34)),
        },
        Recipe {
            name: "large-dense",
            uf_nnz: 40000000,
            category: Category::Dense,
            build: || csr(g::dense(1500)),
        },
    ]
}

/// Generates the full 32-matrix paper suite (parallelized; deterministic).
pub fn paper_suite() -> Vec<SuiteMatrix> {
    let rs = recipes();
    rs.into_par_iter()
        .map(|r| {
            let csr = Arc::new((r.build)());
            let scale = scale_for(r.uf_nnz, csr.nnz());
            SuiteMatrix {
                name: r.name,
                category: r.category,
                csr,
                scale,
            }
        })
        .collect()
}

/// The symmetric-positive-definite members used by the preconditioned-solver
/// scenario (IC(0)/SymGS preconditioning, SpTRSV benchmarking): every matrix
/// here is exactly symmetric with a dominant diagonal, so incomplete
/// Cholesky and Gauss-Seidel sweeps are well defined on all of them.
///
/// Separate from [`paper_suite`] (whose membership is pinned to the paper's
/// 32 matrices): `poisson2d-96` has the narrow-level triangle of a stencil,
/// `spd-band-20k` a pure chain DAG, and `spd-powerlaw-12k` the wide shallow
/// DAG where level-scheduled SpTRSV wins.
pub fn spd_suite() -> Vec<SuiteMatrix> {
    type SpdSpec = (&'static str, Category, fn() -> CsrMatrix);
    let specs: [SpdSpec; 3] = [
        ("poisson2d-96", Category::Stencil, || {
            csr(g::poisson2d(96, 96))
        }),
        ("spd-band-20k", Category::Stencil, || {
            csr(g::symmetric_banded(20_000, 4))
        }),
        ("spd-powerlaw-12k", Category::PowerLaw, || {
            csr(g::symmetric_power_law(12_000, 8, 97))
        }),
    ];
    specs
        .into_par_iter()
        .map(|(name, category, build)| SuiteMatrix {
            name,
            category,
            csr: Arc::new(build()),
            scale: 1.0,
        })
        .collect()
}

/// Members exercising the **out-of-core sharded layer**: matrices whose
/// row-block shards have genuinely different structure, so the per-shard
/// planner legitimately picks different formats per shard (the paper's
/// decomposed-class insight at container granularity).
///
/// Separate from [`paper_suite`] (pinned membership): `powerlaw-sorted-48k`
/// is a degree-sorted web crawl — its head shard is hub-dominated (IMB-ish,
/// long skewed rows) while its tail shards are short-row/irregular (MB/CMP),
/// which is exactly the shape the sharded bench row and the per-shard
/// classifier-pipeline pin run on.
pub fn streaming_suite() -> Vec<SuiteMatrix> {
    vec![SuiteMatrix {
        name: "powerlaw-sorted-48k",
        category: Category::PowerLaw,
        csr: Arc::new(csr(g::power_law_sorted(48_000, 10, 0.9, 1234))),
        scale: 1.0,
    }]
}

/// Scale of a stand-in relative to its UF original (>= 1).
fn scale_for(uf_nnz: usize, synthetic_nnz: usize) -> f64 {
    if uf_nnz == 0 || synthetic_nnz == 0 {
        1.0
    } else {
        (uf_nnz as f64 / synthetic_nnz as f64).max(1.0)
    }
}

/// Generates a single named suite matrix (case-sensitive).
pub fn by_name(name: &str) -> Option<SuiteMatrix> {
    recipes().into_iter().find(|r| r.name == name).map(|r| {
        let csr = Arc::new((r.build)());
        let scale = scale_for(r.uf_nnz, csr.nnz());
        SuiteMatrix {
            name: r.name,
            category: r.category,
            csr,
            scale,
        }
    })
}

/// Names in paper order, without generating any matrix.
pub fn suite_names() -> Vec<&'static str> {
    recipes().into_iter().map(|r| r.name).collect()
}

/// The 210-matrix training sweep used to fit the feature-guided classifier
/// (Section III-D2: "a matrix suite consisting of 210 matrices from a wide
/// variety of application domains"). Parameterized sweeps over every
/// generator category; deterministic across runs.
pub fn training_suite() -> Vec<SuiteMatrix> {
    type TrainSpec = (String, Category, Box<dyn Fn() -> CsrMatrix + Send + Sync>);
    let mut specs: Vec<TrainSpec> = Vec::new();

    // 30 stencils of varying dimensionality and size.
    for (k, s) in (0..30).map(|k| (k, 6 + k * 2)) {
        if k % 2 == 0 {
            specs.push((
                format!("train-poisson3d-{s}"),
                Category::Stencil,
                Box::new(move || csr(g::poisson3d(s, s, s.max(4) / 2))),
            ));
        } else {
            specs.push((
                format!("train-poisson2d-{s}"),
                Category::Stencil,
                Box::new(move || csr(g::poisson2d(s * 6, s * 6))),
            ));
        }
    }
    // 30 banded/diagonal.
    for k in 0..30 {
        let n = 500 + k * 300;
        let band = 1 + k % 8;
        specs.push((
            format!("train-banded-{n}-{band}"),
            Category::Stencil,
            Box::new(move || csr(g::banded(n, band))),
        ));
    }
    // 30 blocked FEM.
    for k in 0..30 {
        let nb = 100 + k * 30;
        let bs = 3 + k % 6;
        let bpr = 2 + k % 5;
        specs.push((
            format!("train-blocked-{nb}-{bs}"),
            Category::BlockedFem,
            Box::new(move || csr(g::blocked_fem(nb, bs, bpr, 1000 + k as u64))),
        ));
    }
    // 40 power-law graphs.
    for k in 0..40 {
        let n = 2000 + k * 250;
        let d = 3 + k % 8;
        let alpha = 0.5 + (k % 10) as f64 * 0.1;
        specs.push((
            format!("train-powerlaw-{n}-{d}"),
            Category::PowerLaw,
            Box::new(move || csr(g::power_law(n, d, alpha, 2000 + k as u64))),
        ));
    }
    // 30 few-dense-rows circuits.
    for k in 0..30 {
        let n = 1500 + k * 400;
        let bg = 2 + k % 3;
        let dr = 1 + k % 8;
        specs.push((
            format!("train-circuit-{n}-{dr}"),
            Category::FewDenseRows,
            Box::new(move || csr(g::few_dense_rows(n, bg, dr, 3000 + k as u64))),
        ));
    }
    // 30 uniform random.
    for k in 0..30 {
        let n = 800 + k * 200;
        let d = 4 + (k % 12) * 8;
        specs.push((
            format!("train-random-{n}-{d}"),
            Category::RandomUniform,
            Box::new(move || csr(g::random_uniform(n, d, 4000 + k as u64))),
        ));
    }
    // 10 short-row meshes and 10 dense endpoints.
    for k in 0..10 {
        let n = 3000 + k * 800;
        specs.push((
            format!("train-short-{n}"),
            Category::ShortRows,
            Box::new(move || csr(g::short_rows(n, 5000 + k as u64))),
        ));
    }
    for k in 0..10 {
        let n = 48 + k * 56;
        specs.push((
            format!("train-dense-{n}"),
            Category::Dense,
            Box::new(move || csr(g::dense(n))),
        ));
    }

    assert_eq!(
        specs.len(),
        210,
        "training suite must have exactly 210 matrices"
    );
    specs
        .into_par_iter()
        .enumerate()
        .map(|(i, (name, category, build))| SuiteMatrix {
            // Training names are owned strings; leak them once per process so
            // the SuiteMatrix type stays simple (&'static str). The suite is
            // generated a handful of times per run at most.
            name: Box::leak(name.into_boxed_str()),
            category,
            csr: Arc::new(build()),
            // Cycle size scales so the training set spans cache-resident
            // through far-exceeding working sets, like the UF corpus.
            scale: [1.0, 6.0, 30.0, 150.0][i % 4],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_matrices_in_order() {
        let names = suite_names();
        assert_eq!(names.len(), 32);
        assert_eq!(names[0], "small-dense");
        assert_eq!(names[names.len() - 1], "large-dense");
        assert!(names.contains(&"rajat30"));
        assert!(names.contains(&"webbase-1M"));
    }

    #[test]
    fn spd_suite_members_are_symmetric_with_positive_diagonal() {
        let suite = spd_suite();
        assert_eq!(suite.len(), 3);
        for m in &suite {
            assert!(
                sparseopt_core::sss::is_symmetric(&m.csr),
                "{} must be symmetric",
                m.name
            );
            let diag = m.csr.diagonal();
            assert!(
                diag.iter().all(|&d| d > 0.0),
                "{} must have a positive diagonal",
                m.name
            );
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        let m = by_name("poisson3Db").expect("exists");
        assert_eq!(m.category, Category::Stencil);
        assert!(m.csr.nnz() > 0);
        assert!(by_name("no-such-matrix").is_none());
    }

    #[test]
    fn categories_are_diverse() {
        let suite = paper_suite();
        let mut cats: Vec<Category> = suite.iter().map(|m| m.category).collect();
        cats.dedup();
        let unique: std::collections::HashSet<_> =
            suite.iter().map(|m| format!("{:?}", m.category)).collect();
        assert!(
            unique.len() >= 5,
            "suite must span at least 5 structural categories"
        );
    }

    #[test]
    fn training_suite_is_210() {
        // Generation is the expensive part; do it once and check invariants.
        let train = training_suite();
        assert_eq!(train.len(), 210);
        assert!(train.iter().all(|m| m.csr.nnz() > 0));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = by_name("web-Google").unwrap();
        let b = by_name("web-Google").unwrap();
        assert_eq!(a.csr.as_ref(), b.csr.as_ref());
    }
}
