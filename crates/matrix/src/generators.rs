//! Synthetic sparse matrix generators covering the structural categories of
//! the paper's evaluation suite (Section IV, University of Florida
//! collection).
//!
//! Each generator controls exactly the structural features (Table I) that
//! drive the bottleneck classes:
//!
//! | generator | structure | typical class |
//! |---|---|---|
//! | [`dense`] | fully dense rows | CMP (small) / MB (large) |
//! | [`banded`] | narrow diagonal band | MB |
//! | [`symmetric_banded`] | exactly symmetric SPD band | MB (SSS storage) |
//! | [`symmetric_power_law`] | symmetrized scale-free + dominant diagonal | ML/IMB, symmetric |
//! | [`poisson3d`] | 7-point FEM stencil | MB |
//! | [`blocked_fem`] | small dense blocks on a band | MB/CMP |
//! | [`random_uniform`] | uniformly scattered columns | ML |
//! | [`power_law`] | scale-free degree distribution | ML + IMB |
//! | [`power_law_hub`] | power-law background + one full hub row | IMB (residual) |
//! | [`few_dense_rows`] | sparse background + mega rows | IMB + CMP |
//! | [`rmat`] | recursively skewed web/social graph | ML + IMB |
//! | [`diagonal`] | single diagonal | — (short rows) |
//! | [`short_rows`] | 1–2 nnz per row | loop-overhead (CMP via short rows) |

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sparseopt_core::coo::CooMatrix;

/// Fully dense `n × n` matrix stored sparsely (paper's `small-dense` /
/// `large-dense` endpoints).
pub fn dense(n: usize) -> CooMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, n * n);
    for i in 0..n {
        for j in 0..n {
            coo.push(i, j, value_for(i, j));
        }
    }
    coo
}

/// Banded matrix with `band` super/sub-diagonals (regular, MB-friendly).
pub fn banded(n: usize, band: usize) -> CooMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            coo.push(
                i,
                j,
                if i == j {
                    2.0 * band as f64 + 1.0
                } else {
                    value_for(i, j)
                },
            );
        }
    }
    coo
}

/// Symmetric banded matrix: the [`banded`] structure with exactly mirrored
/// off-diagonal values and a dominant diagonal (SPD by Gershgorin) — the
/// canonical input of the symmetric-storage (SSS) MB optimization and of
/// CG/eigensolver consumers.
pub fn symmetric_banded(n: usize, band: usize) -> CooMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0 * band as f64 + 1.0);
        for j in i.saturating_sub(band)..i {
            // One value per unordered pair, pushed for both orientations, so
            // the matrix is *exactly* symmetric (bitwise-equal mirrors).
            let v = value_for(j, i);
            coo.push(i, j, v);
            coo.push(j, i, v);
        }
    }
    coo
}

/// Symmetric power-law matrix: the [`power_law`] background symmetrized
/// (`A + Aᵀ` with one accumulated value per unordered pair) plus a dominant
/// diagonal, yielding an SPD scale-free matrix — the "symmetric graph
/// Laplacian-like" shape eigensolvers and CG consume. Values are exactly
/// mirrored, so [`sparseopt_core::sss::SssCsr::try_from_csr`] accepts it.
pub fn symmetric_power_law(n: usize, avg_nnz_per_row: usize, seed: u64) -> CooMatrix {
    let base = power_law(n, avg_nnz_per_row, 0.9, seed);
    // The shared canonical projection sums duplicates per unordered pair
    // *before* mirroring, so the two orientations are bitwise equal; base
    // diagonal entries are dropped in favor of the dominant diagonal below.
    let offdiag: Vec<(usize, usize, f64)> = base.iter().filter(|&(r, c, _)| r != c).collect();
    let mut coo = CooMatrix::new(n, n);
    let mut row_abs = vec![0.0f64; n];
    for (r, c, v) in sparseopt_core::sss::symmetrize_triplets(&offdiag) {
        coo.push(r, c, v);
        row_abs[r] += v.abs();
    }
    for (i, &s) in row_abs.iter().enumerate() {
        coo.push(i, i, s + 1.0);
    }
    coo
}

/// Single-diagonal matrix (degenerate regular case).
pub fn diagonal(n: usize) -> CooMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + (i % 7) as f64);
    }
    coo
}

/// 7-point Poisson stencil on an `nx × ny × nz` grid — the classic FEM/PDE
/// structure (paper's `poisson3Db`, `FEM_3D_thermal2`, `G3_circuit`,
/// `thermal2`, `parabolic_fem` category). Symmetric positive definite.
pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> CooMatrix {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    coo
}

/// 5-point Poisson stencil on an `nx × ny` grid (2-D variant, SPD).
pub fn poisson2d(nx: usize, ny: usize) -> CooMatrix {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0);
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0);
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0);
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0);
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0);
            }
        }
    }
    coo
}

/// Block-structured FEM-like matrix: dense `block × block` tiles scattered
/// along a band (paper's `consph`, `pkustk08`, `nd24k`, `boneS10` category —
/// high nnz/row, clustered columns).
pub fn blocked_fem(nblocks: usize, block: usize, blocks_per_row: usize, seed: u64) -> CooMatrix {
    let n = nblocks * block;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for bi in 0..nblocks {
        // Diagonal block plus a few nearby blocks.
        let mut targets = vec![bi];
        for _ in 1..blocks_per_row {
            let span = (nblocks / 16).max(2);
            let off = rng.gen_range(0..=2 * span) as isize - span as isize;
            let bj = (bi as isize + off).clamp(0, nblocks as isize - 1) as usize;
            targets.push(bj);
        }
        targets.sort_unstable();
        targets.dedup();
        for bj in targets {
            for di in 0..block {
                for dj in 0..block {
                    let (i, j) = (bi * block + di, bj * block + dj);
                    let v = if i == j {
                        block as f64 * blocks_per_row as f64
                    } else {
                        value_for(i, j)
                    };
                    coo.push(i, j, v);
                }
            }
        }
    }
    coo
}

/// Uniform random matrix: each row has exactly `nnz_per_row` entries at
/// uniformly random columns — maximally irregular `x` access (ML class).
pub fn random_uniform(n: usize, nnz_per_row: usize, seed: u64) -> CooMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * nnz_per_row);
    for i in 0..n {
        for _ in 0..nnz_per_row {
            let j = rng.gen_range(0..n);
            coo.push(i, j, rng.gen_range(-1.0..1.0));
        }
    }
    coo
}

/// Scale-free matrix with power-law row lengths (paper's web/citation graphs:
/// `web-Google`, `citationCiteseer`, `flickr`, `eu-2005`,
/// `wikipedia-20051105`, `amazon-2008`). Row `i` receives
/// `⌈c · (i+1)^(−alpha) · n⌉` entries (clamped), columns preferentially
/// attached to low indices — yielding both irregularity (ML) and skew (IMB).
pub fn power_law(n: usize, avg_nnz_per_row: usize, alpha: f64, seed: u64) -> CooMatrix {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let target_nnz = n * avg_nnz_per_row;
    // Normalize the zeta-like weights so the expected total matches.
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut coo = CooMatrix::with_capacity(n, n, target_nnz + n);
    for (i, &w) in weights.iter().enumerate() {
        let len = ((w / wsum) * target_nnz as f64).round().max(1.0) as usize;
        let len = len.min(n);
        // Hubs are scattered through the index space, as in real web/social
        // graphs (crawl order does not sort by degree): a fixed coprime
        // multiplicative permutation relocates row `i`.
        let row = scatter_index(i, n);
        for _ in 0..len {
            // Preferential attachment: column sampled with the same skew,
            // scattered identically.
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let j = ((u.powf(2.0)) * n as f64) as usize % n;
            coo.push(row, scatter_index(j, n), rng.gen_range(-1.0..1.0));
        }
    }
    coo
}

/// Degree-*sorted* scale-free matrix: the [`power_law`] length distribution
/// in crawl order — row `i` receives `⌈c · (i+1)^(−alpha) · n⌉` entries with
/// **no** row scattering, so the hubs concentrate at the top of the index
/// space and row lengths decay monotonically toward a short-row tail.
///
/// This is the archetypal *out-of-core sharding* shape: consecutive
/// row-block shards of this matrix have genuinely different structure (a
/// hub-heavy head block vs. near-empty tail blocks), so a per-shard
/// classifier legitimately assigns them different bottleneck classes and
/// formats — unlike [`power_law`], whose scattered hubs make every row
/// block statistically alike. Columns keep the preferential-attachment skew
/// and scatter of [`power_law`], preserving the irregular `x` access.
pub fn power_law_sorted(n: usize, avg_nnz_per_row: usize, alpha: f64, seed: u64) -> CooMatrix {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let target_nnz = n * avg_nnz_per_row;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut coo = CooMatrix::with_capacity(n, n, target_nnz + n);
    for (i, &w) in weights.iter().enumerate() {
        let len = ((w / wsum) * target_nnz as f64).round().max(1.0) as usize;
        let len = len.min(n);
        for _ in 0..len {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let j = ((u.powf(2.0)) * n as f64) as usize % n;
            coo.push(i, scatter_index(j, n), rng.gen_range(-1.0..1.0));
        }
    }
    coo
}

/// Power-law matrix with a single dominant hub: the [`power_law`] background
/// plus one completely full row at a scattered position. With the default
/// background weight of `avg_nnz_per_row` entries per row, the hub holds at
/// least `1 / (1 + avg_nnz_per_row)` of all nonzeros (≥ 1/3 at
/// `avg_nnz_per_row = 2`) — the residual-IMB shape where *no* whole-row
/// partition can balance the hub and only a nonzero split (merge-path CSR)
/// restores balance.
pub fn power_law_hub(n: usize, avg_nnz_per_row: usize, seed: u64) -> CooMatrix {
    let mut coo = power_law(n, avg_nnz_per_row, 0.9, seed);
    let hub = scatter_index(n / 2, n);
    for j in 0..n {
        coo.push(hub, j, value_for(hub, j));
    }
    coo
}

/// Deterministic pseudo-random permutation of `[0, n)` via multiplication by
/// a fixed prime (coprime to any `n` it does not divide; fall back to
/// identity+offset otherwise). Spreads degree-sorted structures through the
/// index space.
#[inline]
fn scatter_index(i: usize, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    if n.is_multiple_of(7919) {
        (i * 7907 + 13) % n
    } else {
        (i * 7919 + 13) % n
    }
}

/// Sparse background plus `k` completely dense rows — the circuit-simulation
/// shape (`ASIC_680k`, `rajat30`, `FullChip`, `circuit5M`, `degme`) whose
/// nonzeros concentrate in a few rows (IMB + CMP classes).
pub fn few_dense_rows(n: usize, background_nnz: usize, k: usize, seed: u64) -> CooMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        for _ in 1..background_nnz.max(1) {
            let j = rng.gen_range(0..n);
            coo.push(i, j, rng.gen_range(-0.5..0.5));
        }
    }
    // k dense rows spread through the matrix.
    for d in 0..k {
        let row = d * n / k.max(1);
        for j in 0..n {
            coo.push(row, j, rng.gen_range(-0.1..0.1));
        }
    }
    coo
}

/// R-MAT recursive graph generator (Chakrabarti et al.) — skewed web-graph
/// adjacency structure. `scale` gives `n = 2^scale` vertices; `edges_factor`
/// edges per vertex; `(a, b, c)` the recursive quadrant probabilities
/// (`d = 1 − a − b − c`).
pub fn rmat(scale: u32, edges_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CooMatrix {
    assert!(
        a + b + c < 1.0 + 1e-9,
        "quadrant probabilities must sum below 1"
    );
    let n = 1usize << scale;
    let nedges = n * edges_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, nedges);
    for _ in 0..nedges {
        let (mut r0, mut r1, mut c0, mut c1) = (0usize, n, 0usize, n);
        while r1 - r0 > 1 {
            let u: f64 = rng.gen();
            let (rh, ch) = ((r0 + r1) / 2, (c0 + c1) / 2);
            if u < a {
                r1 = rh;
                c1 = ch;
            } else if u < a + b {
                r1 = rh;
                c0 = ch;
            } else if u < a + b + c {
                r0 = rh;
                c1 = ch;
            } else {
                r0 = rh;
                c0 = ch;
            }
        }
        // R-MAT's recursion biases mass toward low indices; scatter the
        // vertex ids so hub rows spread through the matrix like a real
        // crawl-ordered graph.
        coo.push(
            scatter_index(r0, n),
            scatter_index(c0, n),
            rng.gen_range(-1.0..1.0),
        );
    }
    coo
}

/// Matrix of very short rows (1–2 nonzeros each, like `webbase-1M`'s tail or
/// `delaunay_n19`) to exercise inner-loop/trip-count overheads.
pub fn short_rows(n: usize, seed: u64) -> CooMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, rng.gen_range(0..n), 1.0);
        if rng.gen_bool(0.5) {
            coo.push(i, rng.gen_range(0..n), -1.0);
        }
    }
    coo
}

/// Deterministic nonzero value so generated matrices are reproducible and
/// nontrivial (avoids the all-ones degenerate case).
#[inline]
fn value_for(i: usize, j: usize) -> f64 {
    let h = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503)) % 1000;
    (h as f64) / 500.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseopt_core::csr::CsrMatrix;

    #[test]
    fn dense_has_full_rows() {
        let m = CsrMatrix::from_coo(&dense(10));
        assert_eq!(m.nnz(), 100);
        for i in 0..10 {
            assert_eq!(m.row_nnz(i), 10);
        }
    }

    #[test]
    fn banded_width() {
        let m = CsrMatrix::from_coo(&banded(20, 2));
        assert_eq!(m.row_nnz(10), 5);
        assert_eq!(m.row_nnz(0), 3);
    }

    #[test]
    fn poisson3d_is_symmetric_spd_structure() {
        let coo = poisson3d(4, 4, 4);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nrows(), 64);
        // Interior points have 7 nonzeros, corners 4.
        let lens: Vec<usize> = (0..64).map(|i| m.row_nnz(i)).collect();
        assert_eq!(*lens.iter().max().unwrap(), 7);
        assert_eq!(*lens.iter().min().unwrap(), 4);
        // Structural symmetry.
        let t = CsrMatrix::from_coo(&coo.transpose());
        assert_eq!(m.colind(), t.colind());
        // Diagonally dominant.
        for i in 0..64 {
            let diag = m.diagonal()[i];
            let off: f64 = m.row_vals(i).iter().map(|v| v.abs()).sum::<f64>() - diag.abs();
            assert!(diag >= off);
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let m = CsrMatrix::from_coo(&power_law(1000, 8, 1.0, 42));
        let lens: Vec<usize> = (0..1000).map(|i| m.row_nnz(i)).collect();
        let max = *lens.iter().max().unwrap();
        let avg = m.nnz() as f64 / 1000.0;
        assert!(max as f64 > 10.0 * avg, "max {max} should dwarf avg {avg}");
    }

    #[test]
    fn power_law_hub_dominates_total_nnz() {
        let m = CsrMatrix::from_coo(&power_law_hub(2000, 2, 7));
        let max = (0..2000).map(|i| m.row_nnz(i)).max().unwrap();
        assert_eq!(max, 2000, "hub row must be full");
        assert!(
            max as f64 >= 0.3 * m.nnz() as f64,
            "hub must hold ≥ 30% of nonzeros: {max} of {}",
            m.nnz()
        );
    }

    #[test]
    fn few_dense_rows_concentrates_nnz() {
        let m = CsrMatrix::from_coo(&few_dense_rows(500, 2, 3, 7));
        let dense_nnz: usize = [0, 166, 333].iter().map(|&r| m.row_nnz(r)).sum();
        assert!(dense_nnz as f64 > 0.4 * m.nnz() as f64);
    }

    #[test]
    fn rmat_dimensions_and_skew() {
        let m = CsrMatrix::from_coo(&rmat(10, 8, 0.57, 0.19, 0.19, 123));
        assert_eq!(m.nrows(), 1024);
        assert!(m.nnz() > 0 && m.nnz() <= 1024 * 8);
        let lens: Vec<usize> = (0..1024).map(|i| m.row_nnz(i)).collect();
        let max = *lens.iter().max().unwrap() as f64;
        let avg = m.nnz() as f64 / 1024.0;
        assert!(
            max > 4.0 * avg,
            "rmat should be skewed (max {max}, avg {avg})"
        );
    }

    #[test]
    fn symmetric_generators_are_exactly_symmetric() {
        use sparseopt_core::sss::{is_symmetric, SssCsr};
        let band = CsrMatrix::from_coo(&symmetric_banded(300, 3));
        assert!(is_symmetric(&band));
        assert!(SssCsr::try_from_csr(&band).is_some());
        // Diagonally dominant (SPD by Gershgorin).
        for i in 0..300 {
            let diag = band.diagonal()[i];
            let off: f64 = band.row_vals(i).iter().map(|v| v.abs()).sum::<f64>() - diag.abs();
            assert!(diag > off, "row {i}: {diag} vs {off}");
        }

        let pl = CsrMatrix::from_coo(&symmetric_power_law(500, 4, 7));
        assert!(is_symmetric(&pl));
        assert!(SssCsr::try_from_csr(&pl).is_some());
        for i in 0..500 {
            let diag = pl.diagonal()[i];
            let off: f64 = pl.row_vals(i).iter().map(|v| v.abs()).sum::<f64>() - diag.abs();
            assert!(diag > off - 1e-12, "row {i}: {diag} vs {off}");
        }
        // Still scale-free: the skew of the background survives.
        let lens: Vec<usize> = (0..500).map(|i| pl.row_nnz(i)).collect();
        let max = *lens.iter().max().unwrap() as f64;
        let avg = pl.nnz() as f64 / 500.0;
        assert!(max > 4.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_uniform(64, 4, 99);
        let b = random_uniform(64, 4, 99);
        assert_eq!(a, b);
        assert_ne!(a, random_uniform(64, 4, 100));
    }

    #[test]
    fn short_rows_are_short() {
        let m = CsrMatrix::from_coo(&short_rows(200, 5));
        for i in 0..200 {
            assert!(m.row_nnz(i) <= 2);
        }
    }
}
