//! Matrix Market → shard container converter.
//!
//! ```text
//! mm2shards <in.mtx> <out.shards> [--rows-per-shard N | --shards N]
//! ```
//!
//! Reads a Matrix Market file, assembles it to CSR, and writes the
//! out-of-core shard container consumed by `ShardStore` / `ShardedOp`.
//! With `--shards N` the row-block size is chosen so the file holds
//! exactly `N` (or, for awkward divisions, at most `N`) shards; the
//! default is 8 shards.

use sparseopt_core::prelude::CsrMatrix;
use sparseopt_matrix::io::read_matrix_market_file;
use sparseopt_matrix::shard::write_shard_file;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: mm2shards <in.mtx> <out.shards> [--rows-per-shard N | --shards N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut rows_per_shard: Option<usize> = None;
    let mut shards: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rows-per-shard" | "--shards" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if v == 0 {
                    return usage();
                }
                if arg == "--rows-per-shard" {
                    rows_per_shard = Some(v);
                } else {
                    shards = Some(v);
                }
            }
            "--help" | "-h" => return usage(),
            other => positional.push(PathBuf::from(other)),
        }
    }
    let [input, output] = positional.as_slice() else {
        return usage();
    };
    if rows_per_shard.is_some() && shards.is_some() {
        return usage();
    }

    let coo = match read_matrix_market_file(input) {
        Ok(coo) => coo,
        Err(e) => {
            eprintln!("mm2shards: cannot read {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    };
    let csr = CsrMatrix::from_coo(&coo);
    let block = rows_per_shard.unwrap_or_else(|| {
        csr.nrows()
            .div_ceil(shards.unwrap_or(8).min(csr.nrows().max(1)))
    });

    match write_shard_file(output, &csr, block.max(1)) {
        Ok(n) => {
            println!(
                "{}: {} rows x {} cols, {} nnz -> {} shard(s) of <= {} rows at {}",
                input.display(),
                csr.nrows(),
                csr.ncols(),
                csr.nnz(),
                n,
                block.max(1),
                output.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mm2shards: cannot write {}: {e}", output.display());
            ExitCode::FAILURE
        }
    }
}
