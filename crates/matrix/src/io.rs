//! Matrix Market (`.mtx`) reader/writer — the interchange format of the
//! University of Florida Sparse Matrix Collection the paper draws its suite
//! from. Supports the `coordinate` format with `real`, `integer`, and
//! `pattern` fields and the `general` / `symmetric` / `skew-symmetric`
//! symmetry modes, which covers the collection's SpMV-relevant corpus.

use sparseopt_core::coo::CooMatrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Symmetry mode of a coordinate Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmSymmetry {
    /// Every stored entry stands for itself.
    General,
    /// Off-diagonal entries `(r, c)` imply `(c, r)` with the same value;
    /// only the lower triangle is stored.
    Symmetric,
    /// Off-diagonal entries `(r, c)` imply `(c, r)` with the *negated*
    /// value; the diagonal is implicitly zero and the format stores only
    /// the strictly lower triangle.
    SkewSymmetric,
}

impl MmSymmetry {
    /// The header token for this mode.
    pub fn token(self) -> &'static str {
        match self {
            MmSymmetry::General => "general",
            MmSymmetry::Symmetric => "symmetric",
            MmSymmetry::SkewSymmetric => "skew-symmetric",
        }
    }
}

/// Errors raised by the Matrix Market parser.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural/syntactic problem, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market coordinate matrix from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, MmError> {
    let mut lines = BufReader::new(reader).lines();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(parse_err("only `matrix coordinate` objects are supported"));
    }
    let field = tokens[3].clone();
    if !matches!(field.as_str(), "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = match tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };

    // Size line (first non-comment line).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| parse_err(format!("bad size token: {t}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be `nrows ncols nnz`"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad row index in: {t}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing col index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad col index in: {t}")))?;
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!("entry ({r},{c}) out of 1-based bounds")));
        }
        let v: f64 = match field.as_str() {
            "pattern" => 1.0,
            _ => it
                .next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err(format!("bad value in: {t}")))?,
        };
        match symmetry {
            MmSymmetry::General => coo.push(r - 1, c - 1, v),
            MmSymmetry::Symmetric => {
                coo.push(r - 1, c - 1, v);
                if r != c {
                    coo.push(c - 1, r - 1, v);
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r == c {
                    return Err(parse_err(format!(
                        "skew-symmetric entry on the diagonal at ({r},{c})"
                    )));
                }
                coo.push(r - 1, c - 1, v);
                coo.push(c - 1, r - 1, -v);
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo)
}

/// Writes a COO matrix in `general real` coordinate format.
pub fn write_matrix_market<W: Write>(coo: &CooMatrix, writer: W) -> Result<(), MmError> {
    write_matrix_market_with(coo, MmSymmetry::General, writer)
}

/// Writes a COO matrix in `real` coordinate format with an explicit
/// symmetry mode. `Symmetric` / `SkewSymmetric` store only the (strictly,
/// for skew) lower triangle after **verifying** the matrix actually has the
/// claimed structure — a mismatched pair or a nonzero diagonal under
/// `SkewSymmetric` is a `Parse` error, never silent data loss.
pub fn write_matrix_market_with<W: Write>(
    coo: &CooMatrix,
    symmetry: MmSymmetry,
    writer: W,
) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);

    // General mode streams the raw triplets (duplicates preserved), exactly
    // as the historical writer did — only the symmetric modes pay for a
    // normalized copy, which their structural verification needs anyway.
    if symmetry == MmSymmetry::General {
        writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
        writeln!(w, "% generated by sparseopt")?;
        writeln!(w, "{} {} {}", coo.nrows(), coo.ncols(), coo.nnz())?;
        for (r, c, v) in coo.iter() {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
        w.flush()?;
        return Ok(());
    }

    if coo.nrows() != coo.ncols() {
        return Err(parse_err(format!(
            "{} output needs a square matrix",
            symmetry.token()
        )));
    }
    // Deduplicate so structural verification sees one value per coordinate,
    // matching what a reader reconstructs.
    let entries: Vec<(usize, usize, f64)> = {
        let mut sorted = coo.clone();
        sorted.sort_and_dedup();
        sorted.iter().collect()
    };
    // `sort_and_dedup` leaves the triplets in (row, col) order — the
    // invariant the binary search below relies on.
    debug_assert!(entries
        .windows(2)
        .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    let value_at = |r: usize, c: usize| -> Option<f64> {
        entries
            .binary_search_by(|&(er, ec, _)| (er, ec).cmp(&(r, c)))
            .ok()
            .map(|i| entries[i].2)
    };
    for &(r, c, v) in &entries {
        if r == c {
            if symmetry == MmSymmetry::SkewSymmetric && v != 0.0 {
                return Err(parse_err(format!(
                    "skew-symmetric matrix has nonzero diagonal at ({r},{r})"
                )));
            }
            continue;
        }
        let want = match symmetry {
            MmSymmetry::Symmetric => v,
            _ => -v,
        };
        if value_at(c, r) != Some(want) {
            return Err(parse_err(format!(
                "matrix is not {}: entry ({r},{c}) has no matching ({c},{r})",
                symmetry.token()
            )));
        }
    }

    let stored: Vec<&(usize, usize, f64)> = match symmetry {
        MmSymmetry::Symmetric => entries.iter().filter(|&&(r, c, _)| r >= c).collect(),
        _ => entries.iter().filter(|&&(r, c, _)| r > c).collect(),
    };

    writeln!(
        w,
        "%%MatrixMarket matrix coordinate real {}",
        symmetry.token()
    )?;
    writeln!(w, "% generated by sparseopt")?;
    writeln!(w, "{} {} {}", coo.nrows(), coo.ncols(), stored.len())?;
    for &&(r, c, v) in &stored {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Convenience: reads a `.mtx` file from disk.
pub fn read_matrix_market_file(path: &std::path::Path) -> Result<CooMatrix, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Convenience: writes a `.mtx` file to disk.
pub fn write_matrix_market_file(coo: &CooMatrix, path: &std::path::Path) -> Result<(), MmError> {
    write_matrix_market(coo, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 3 2\n\
                   1 1 1.5\n\
                   3 2 -2.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 3, 2));
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, 1.5), (2, 1, -2.0)]);
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   2 2 2\n\
                   1 1 4.0\n\
                   2 1 1.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn pattern_field_gets_unit_values() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 1\n\
                   2 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.iter().next(), Some((1, 1, 1.0)));
    }

    #[test]
    fn round_trip_through_writer() {
        let mut coo = CooMatrix::new(4, 5);
        coo.push(0, 4, 3.25);
        coo.push(3, 0, -1.0e-7);
        let mut buf = Vec::new();
        write_matrix_market(&coo, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.nrows(), 4);
        assert_eq!(back.ncols(), 5);
        let a: Vec<_> = coo.iter().collect();
        let b: Vec<_> = back.iter().collect();
        for ((r1, c1, v1), (r2, c2, v2)) in a.iter().zip(&b) {
            assert_eq!((r1, c1), (r2, c2));
            assert!((v1 - v2).abs() < 1e-15 * v1.abs().max(1e-300));
        }
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   3 3 2\n\
                   2 1 4.0\n\
                   3 2 -1.5\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        let mut got: Vec<_> = m.iter().collect();
        got.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(
            got,
            vec![(0, 1, -4.0), (1, 0, 4.0), (1, 2, -(-1.5)), (2, 1, -1.5)]
        );
    }

    #[test]
    fn skew_symmetric_rejects_diagonal_entries() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 1\n\
                   2 2 3.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("diagonal"), "{err}");
    }

    #[test]
    fn skew_symmetric_round_trip_through_writer() {
        // Build A = -Aᵀ with a zero diagonal, write in skew-symmetric mode
        // (strictly lower triangle only), and read it back expanded.
        let mut coo = CooMatrix::new(4, 4);
        for (r, c, v) in [(1usize, 0usize, 2.5f64), (3, 1, -0.75), (2, 0, 1.0e-3)] {
            coo.push(r, c, v);
            coo.push(c, r, -v);
        }
        let mut buf = Vec::new();
        write_matrix_market_with(&coo, MmSymmetry::SkewSymmetric, &mut buf).unwrap();
        let header = String::from_utf8_lossy(&buf);
        assert!(header.starts_with("%%MatrixMarket matrix coordinate real skew-symmetric"));
        // Only the 3 strictly-lower entries are stored.
        assert!(header.contains("4 4 3"));

        let mut back = read_matrix_market(buf.as_slice()).unwrap();
        back.sort_and_dedup();
        let mut want = coo.clone();
        want.sort_and_dedup();
        assert_eq!(back.nnz(), want.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in back.iter().zip(want.iter()) {
            assert_eq!((r1, c1), (r2, c2));
            assert!((v1 - v2).abs() < 1e-15 * v2.abs().max(1e-300));
        }
    }

    #[test]
    fn writer_verifies_claimed_symmetry() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0); // missing the (1,0) partner
        let mut buf = Vec::new();
        let err = write_matrix_market_with(&coo, MmSymmetry::SkewSymmetric, &mut buf).unwrap_err();
        assert!(err.to_string().contains("not skew-symmetric"), "{err}");

        let mut diag = CooMatrix::new(2, 2);
        diag.push(0, 0, 1.0);
        let err = write_matrix_market_with(&diag, MmSymmetry::SkewSymmetric, &mut Vec::new())
            .unwrap_err();
        assert!(err.to_string().contains("diagonal"), "{err}");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_out_of_bounds_and_count_mismatch() {
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }
}
