//! # sparseopt-sim
//!
//! The hardware-substitution substrate: Table III platform descriptors, a
//! set-associative LRU cache simulator, analytic SpMV and SpMM (multi-RHS)
//! execution-time models, and host STREAM micro-benchmarks.
//!
//! The paper evaluates on Intel KNC, KNL, and Broadwell testbeds that are
//! not available here; `simulate` reproduces the *mechanisms* those results
//! come from (bandwidth saturation, latency-bound irregular gathers, thread
//! imbalance, loop/compute limits) so every figure's shape can be
//! regenerated. See `DESIGN.md` §2 for the substitution argument.

pub mod cache;
pub mod membench;
pub mod model;
pub mod platform;
pub mod roofline;
pub mod sharded;
pub mod trsv;

pub use cache::{CacheHierarchy, CacheSim};
pub use membench::{host_platform, stream_triad_gbs};
pub use model::{
    analytic_mb_bound, analytic_peak_bound, analytic_spmm_mb_bound, analytic_spmm_peak_bound,
    simulate, simulate_apply, simulate_cmp_bound, simulate_imb_bound, simulate_ml_bound,
    simulate_spmm, simulate_spmm_cmp_bound, simulate_spmm_imb_bound, simulate_spmm_ml_bound,
    SimFormat, SimKernelConfig, SimMatrixProfile, SimResult,
};
pub use platform::Platform;
pub use roofline::{
    spmm_intensity, spmv_intensity, spmv_intensity_values_only, Roofline, RooflinePoint,
};
pub use sharded::{OocApplyModel, OocApplyReport, ShardTraffic};
pub use trsv::{select_trsv_algo, simulate_trsv, TrsvProfile, LEVEL_SYNC_CYCLES};
